"""Benchmark package: one bench per paper table/figure plus micro-benches."""
