"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. Eq. 1's log score vs raw counts in tag extraction — the log keeps a
   single chatty client from hijacking a port's tag.
2. Clist size L — the resolver-efficiency knee (Sec. 6).
3. Last-written-wins labels — the confusion cost of the paper's design.
"""

import pytest

from repro.analytics.tags import ServiceTagExtractor
from repro.experiments.datasets import get_result, get_trace
from repro.experiments.dimensioning import confusion_rate, resolver_efficiency


@pytest.fixture(scope="module")
def ftth_db(warm_datasets):
    return get_result("EU1-FTTH").database


def test_bench_ablation_log_score(benchmark, ftth_db):
    extractor = ServiceTagExtractor(ftth_db, use_log_score=True)
    tags = benchmark(extractor.extract, 25, 9)
    assert tags


def test_bench_ablation_raw_score(benchmark, ftth_db):
    """Raw counts: same cost, different (worse) ranking robustness."""
    extractor = ServiceTagExtractor(ftth_db, use_log_score=False)
    tags = benchmark(extractor.extract, 25, 9)
    assert tags


def test_bench_ablation_clist_small(benchmark, warm_datasets):
    """An undersized Clist (L=500): cheap but leaky (Sec. 6)."""
    trace = get_trace("EU1-FTTH")
    efficiency = benchmark.pedantic(
        resolver_efficiency, args=(trace, 500), rounds=2, iterations=1
    )
    assert efficiency < 0.97


def test_bench_ablation_clist_large(benchmark, warm_datasets):
    """A well-sized Clist (L=50k): same pass, near-perfect efficiency."""
    trace = get_trace("EU1-FTTH")
    efficiency = benchmark.pedantic(
        resolver_efficiency, args=(trace, 50_000), rounds=2, iterations=1
    )
    assert efficiency > 0.85


def test_bench_dimensioning_confusion(benchmark, warm_datasets):
    """Last-written-wins labeling: measure the confusion rate cost."""
    trace = get_trace("EU1-FTTH")
    confusion = benchmark.pedantic(
        confusion_rate, args=(trace,), rounds=2, iterations=1
    )
    assert confusion < 0.15
