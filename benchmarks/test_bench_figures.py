"""Benchmarks regenerating every figure of the paper (Fig. 3-14)."""

from benchmarks.conftest import LIVE_DAYS, LIVE_SEED
from repro.experiments import (
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
)


def test_bench_fig3_tangle_cdfs(benchmark, warm_datasets):
    result = benchmark(fig3.run)
    assert result.data["single_fqdn"] > 0.5


def test_bench_fig4_servers_per_domain(benchmark, warm_datasets):
    result = benchmark(fig4.run)
    assert result.data["fbcdn.net"]


def test_bench_fig5_fqdns_per_cdn(benchmark, warm_datasets):
    result = benchmark(fig5.run)
    assert result.data["totals"]["amazon"] > 0


def test_bench_fig6_birth_processes(benchmark, warm_datasets):
    result = benchmark(fig6.run, days=LIVE_DAYS, seed=LIVE_SEED)
    assert result.data["fqdn"][-1][1] > result.data["sld"][-1][1]


def test_bench_fig7_linkedin_tree(benchmark, warm_datasets):
    result = benchmark(fig7.run)
    assert "edgecast" in result.data


def test_bench_fig8_zynga_tree(benchmark, warm_datasets):
    result = benchmark(fig8.run)
    assert "amazon" in result.data


def test_bench_fig9_geography_matrix(benchmark, warm_datasets):
    result = benchmark(fig9.run)
    assert "facebook.com" in result.data


def test_bench_fig10_word_cloud(benchmark, warm_datasets):
    result = benchmark(fig10.run, days=LIVE_DAYS, seed=LIVE_SEED)
    assert result.data


def test_bench_fig11_tracker_timeline(benchmark, warm_datasets):
    result = benchmark(fig11.run, days=LIVE_DAYS, seed=LIVE_SEED)
    assert len(result.data["timelines"]) > 20


def test_bench_fig12_first_flow_delay(benchmark, warm_datasets):
    result = benchmark(fig12.run)
    assert "EU1-FTTH" in result.data


def test_bench_fig13_any_flow_gap(benchmark, warm_datasets):
    result = benchmark(fig13.run)
    assert "EU1-ADSL1" in result.data


def test_bench_fig14_dns_rate(benchmark, warm_datasets):
    result = benchmark(fig14.run)
    assert result.data
