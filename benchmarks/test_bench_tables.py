"""Benchmarks regenerating every table of the paper (Tab. 1-9).

Each benchmark reruns the experiment's analysis over the cached labeled
flow databases — the cost of producing the table from DN-Hunter's
output, as the off-line analyzer would.
"""

from benchmarks.conftest import LIVE_DAYS, LIVE_SEED
from repro.experiments import (
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
    table9,
)


def test_bench_table1_dataset_description(benchmark, warm_datasets):
    result = benchmark(table1.run)
    assert len(result.data) == 5


def test_bench_table2_hit_ratio(benchmark, warm_datasets):
    result = benchmark(table2.run)
    assert result.data["EU1-FTTH"]["http"][0] > 0.7


def test_bench_table3_reverse_lookup(benchmark, warm_datasets):
    result = benchmark(table3.run)
    assert result.data["Same FQDN"] < 0.3


def test_bench_table4_certificate_inspection(benchmark, warm_datasets):
    result = benchmark(table4.run)
    assert result.data["No certificate"] > 0.1


def test_bench_table5_amazon_domains(benchmark, warm_datasets):
    result = benchmark(table5.run)
    assert any(d == "cloudfront.net" for d, _ in result.data["EU"])


def test_bench_table6_well_known_ports(benchmark, warm_datasets):
    result = benchmark(table6.run)
    assert "MISS" not in result.notes


def test_bench_table7_frequent_ports(benchmark, warm_datasets):
    result = benchmark(table7.run)
    assert "MISS" not in result.notes


def test_bench_table8_appspot_breakdown(benchmark, warm_datasets):
    result = benchmark(table8.run, days=LIVE_DAYS, seed=LIVE_SEED)
    assert result.data["trackers"]["flows"] > 0


def test_bench_table9_useless_dns(benchmark, warm_datasets):
    result = benchmark(table9.run)
    assert 0 < result.data["US-3G"] < 1
