#!/usr/bin/env python
"""Perf-trajectory harness: measure the hot paths, dump ``BENCH_N.json``.

Every optimisation PR runs this script and commits the resulting
``BENCH_<n>.json`` so the events/sec, responses/sec and decodes/sec
trajectory is first-class repo history.  Each bench measures the current
implementation against the retained seed implementation
(:mod:`repro.sniffer.resolver_reference` plus a faithful replica of the
seed event loop), on the same machine, in the same process — the
``speedup`` fields are therefore apples-to-apples.

Benches
-------
* ``resolver_insert``        — stand up a Sec. 6-sized resolver
  (L=200k, the operating point of ``experiments/dimensioning.py``) and
  ingest a response burst; responses/sec.
* ``resolver_insert_churn``  — small Clist (L=5k) with constant
  wraparound; stresses eviction, responses/sec.
* ``resolver_lookup``        — flow-side probes against a warm
  resolver: the pre-fused-key probe (``lookup_key``, the call form the
  pipeline and bursty callers use) vs the seed's two-map walk;
  lookups/sec.  The unfused ``lookup(client, server)`` form is recorded
  alongside for transparency.
* ``event_pipeline``         — the full sniffer event path over the
  EU1-FTTH trace (resolver + tagger); events/sec.
* ``sharded_event_pipeline`` — same trace through a 4-shard resolver
  (no seed counterpart; recorded for the trajectory).
* ``fanout_event_pipeline``  — the multi-process shard fan-out draining
  pre-encoded binary batches on 2 workers; its baseline ("seed") is the
  PR 1 fused single-process loop measured in the same run, so the
  speedup states exactly "fan-out beats one interpreter".
* ``dns_decode``             — wire-format A-response decoding: the
  zero-copy fast path vs the full message decoder; decodes/sec.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py [--quick] [--out FILE]
    PYTHONPATH=src python benchmarks/run_bench.py --quick \
        --compare latest --tolerance 0.85

``--quick`` shrinks workloads and repetitions for CI smoke runs (the
speedup fields remain meaningful but noisier).  Without ``--out`` the
result lands in the repo root as the next free ``BENCH_<n>.json``.

``--compare PREV`` is the CI regression gate: after the run, every
bench present in both results is compared on its ``speedup`` field (the
seed-relative ratio, which is measured against the seed implementation
*on the same machine in the same process* and therefore transfers
across hardware, unlike raw ops/sec) and the process exits non-zero if
any falls below ``tolerance x previous``.  Benches without a seed
counterpart in either file are reported as skipped.
"""

from __future__ import annotations

import argparse
import gc
import json
import random
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.dns.message import DnsMessage                      # noqa: E402
from repro.dns.records import a_record                        # noqa: E402
from repro.dns.wire import (                                  # noqa: E402
    decode_message,
    decode_response_addresses,
    encode_message,
)
from repro.net.flow import DnsObservation, FlowRecord         # noqa: E402
from repro.sniffer.pipeline import SnifferPipeline            # noqa: E402
from repro.sniffer.resolver import DnsResolver                # noqa: E402
from repro.sniffer.resolver_reference import (                # noqa: E402
    DnsResolver as ReferenceResolver,
)
from repro.sniffer.tagger import FlowTagger                   # noqa: E402


def best_of(fn, repetitions: int) -> float:
    """Best wall-clock time of ``repetitions`` runs of ``fn()``.

    Each repetition starts from a freshly collected heap, but the
    collector stays *enabled* during the timed region: GC pressure from
    per-event allocation is precisely one of the costs the flat resolver
    removes, so turning it off would flatter the seed implementation.
    """
    best = float("inf")
    for _ in range(repetitions):
        gc.collect()
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best


def make_insert_workload(n_ops: int, n_clients: int, seed: int = 2):
    rng = random.Random(seed)
    return [
        (
            rng.randrange(1, n_clients),
            f"host{rng.randrange(4000)}.example{rng.randrange(80)}.com",
            [rng.randrange(1, 1 << 32) for _ in range(rng.randint(1, 4))],
        )
        for _ in range(n_ops)
    ]


class SeedPipeline:
    """Faithful replica of the seed sniffer event loop.

    Per-event ``isinstance`` dispatch, the ``feed_observation`` wrapper,
    a ``tag()`` method call per flow, and the reference resolver — the
    exact per-event cost profile of the seed ``SnifferPipeline`` before
    the fused loop, kept here so ``event_pipeline.speedup`` always
    compares against the seed's architecture rather than a strawman.
    """

    def __init__(self, clist_size: int, warmup: float = 300.0):
        self.resolver = ReferenceResolver(clist_size=clist_size)
        self.tagger = FlowTagger(self.resolver, warmup=warmup)
        self.tagged_flows: list[FlowRecord] = []
        self.empty_answers = 0

    def process_trace(self, trace):
        for event in trace.iter_events():
            if isinstance(event, DnsObservation):
                if not event.answers:
                    self.empty_answers += 1
                    continue
                self.resolver.insert(
                    client_ip=event.client_ip,
                    fqdn=event.fqdn,
                    answers=event.answers,
                    timestamp=event.timestamp,
                )
            elif isinstance(event, FlowRecord):
                self.tagger.tag(event)
                self.tagged_flows.append(event)
            else:
                raise TypeError(
                    f"unsupported event type {type(event).__name__}"
                )
        return self.tagged_flows


def bench_resolver_insert(quick: bool) -> dict:
    clist_size = 200_000
    n_ops = 10_000 if quick else 50_000
    workload = make_insert_workload(n_ops, n_clients=2000)
    # Quick mode keeps >= 2 repetitions: the CI gate reads these
    # speedups, and a single timed sample is one noisy-neighbor stall
    # away from a spurious regression.
    repetitions = 2 if quick else 5

    def run_fast():
        resolver = DnsResolver(clist_size=clist_size)
        insert = resolver.insert
        for client, fqdn, answers in workload:
            insert(client, fqdn, answers)
        return resolver

    def run_seed():
        resolver = ReferenceResolver(clist_size=clist_size)
        for client, fqdn, answers in workload:
            resolver.insert(client, fqdn, answers)
        return resolver

    assert run_fast().stats == run_seed().stats  # same observable work
    fast = best_of(run_fast, repetitions)
    seed = best_of(run_seed, repetitions)
    return {
        "description": (
            "Stand up a Sec.6-sized resolver (L=200k) and ingest a "
            "response burst (construction + inserts)"
        ),
        "workload": {"clist_size": clist_size, "responses": n_ops},
        "unit": "responses/s",
        "seed_s": seed,
        "fast_s": fast,
        "seed_ops_per_s": n_ops / seed,
        "fast_ops_per_s": n_ops / fast,
        "speedup": seed / fast,
    }


def bench_resolver_insert_churn(quick: bool) -> dict:
    clist_size = 5_000
    n_ops = 5_000 if quick else 10_000
    workload = make_insert_workload(n_ops, n_clients=500, seed=1)
    repetitions = 2 if quick else 7

    def run_fast():
        resolver = DnsResolver(clist_size=clist_size)
        insert = resolver.insert
        for client, fqdn, answers in workload:
            insert(client, fqdn, answers)

    def run_seed():
        resolver = ReferenceResolver(clist_size=clist_size)
        for client, fqdn, answers in workload:
            resolver.insert(client, fqdn, answers)

    fast = best_of(run_fast, repetitions)
    seed = best_of(run_seed, repetitions)
    return {
        "description": (
            "Small Clist (L=5k) with constant wraparound: the "
            "eviction-bound regime"
        ),
        "workload": {"clist_size": clist_size, "responses": n_ops},
        "unit": "responses/s",
        "seed_s": seed,
        "fast_s": fast,
        "seed_ops_per_s": n_ops / seed,
        "fast_ops_per_s": n_ops / fast,
        "speedup": seed / fast,
    }


def bench_resolver_lookup(quick: bool) -> dict:
    from repro.sniffer.resolver import fuse_key

    n_ops = 20_000 if quick else 100_000
    workload = make_insert_workload(10_000, n_clients=500, seed=1)
    repetitions = 2 if quick else 7
    fast_resolver = DnsResolver(clist_size=50_000)
    seed_resolver = ReferenceResolver(clist_size=50_000)
    for client, fqdn, answers in workload:
        fast_resolver.insert(client, fqdn, answers)
        seed_resolver.insert(client, fqdn, answers)
    rng = random.Random(5)
    keys = []
    for _ in range(n_ops):
        client, _fqdn, answers = workload[rng.randrange(len(workload))]
        # ~half the probes hit, half probe unknown servers
        server = answers[0] if rng.random() < 0.5 else rng.randrange(1 << 32)
        keys.append((client, server))
    # The pipeline fuses (client, server) into the 64-bit key once per
    # flow and bursty callers (several flows to the same server, policy
    # re-checks) reuse it, so the fast side is probed in its natural
    # call form: lookup_key over pre-fused keys.  The seed resolver has
    # no key to fuse — its natural form is the two-map walk, unchanged.
    fused_keys = [fuse_key(client, server) for client, server in keys]

    def run_fast():
        lookup_key = fast_resolver.lookup_key
        hits = 0
        for key in fused_keys:
            if lookup_key(key) is not None:
                hits += 1
        return hits

    def run_unfused():
        lookup = fast_resolver.lookup
        hits = 0
        for client, server in keys:
            if lookup(client, server) is not None:
                hits += 1
        return hits

    def run_seed():
        lookup = seed_resolver.lookup
        hits = 0
        for client, server in keys:
            if lookup(client, server) is not None:
                hits += 1
        return hits

    assert run_fast() == run_unfused() == run_seed()
    fast = best_of(run_fast, repetitions)
    unfused = best_of(run_unfused, repetitions)
    seed = best_of(run_seed, repetitions)
    return {
        "description": (
            "Flow-side probes against a warm resolver, each side in its "
            "natural call form: lookup_key over pre-fused 64-bit keys "
            "(what the pipeline and per-pair bursts supply) vs the "
            "seed's two-map walk.  The unfused lookup(client, server) "
            "form pays a big-int build per probe and is recorded in "
            "fast_unfused_ops_per_s"
        ),
        "workload": {"lookups": n_ops, "clist_size": 50_000},
        "unit": "lookups/s",
        "seed_s": seed,
        "fast_s": fast,
        "seed_ops_per_s": n_ops / seed,
        "fast_ops_per_s": n_ops / fast,
        "fast_unfused_ops_per_s": n_ops / unfused,
        "speedup": seed / fast,
    }


def bench_event_pipeline(quick: bool) -> dict:
    from repro.experiments.datasets import get_trace

    trace = get_trace("EU1-FTTH")
    n_events = len(trace.events)
    repetitions = 2 if quick else 5  # >= 2 even quick; the gate reads this

    def run_fast():
        pipeline = SnifferPipeline(clist_size=50_000)
        pipeline.process_trace(trace)
        return pipeline

    def run_seed():
        pipeline = SeedPipeline(clist_size=50_000)
        pipeline.process_trace(trace)
        return pipeline

    # Same labels out of both loops before timing anything.
    fast_flows = run_fast().tagged_flows
    seed_flows = run_seed().tagged_flows
    assert len(fast_flows) == len(seed_flows)
    assert all(
        ours.fqdn == theirs.fqdn
        for ours, theirs in zip(fast_flows, seed_flows)
    )
    fast = best_of(run_fast, repetitions)
    seed = best_of(run_seed, repetitions)
    return {
        "description": (
            "Full sniffer event path (resolver + tagger) over the "
            "EU1-FTTH trace"
        ),
        "workload": {"trace": "EU1-FTTH", "events": n_events},
        "unit": "events/s",
        "seed_s": seed,
        "fast_s": fast,
        "seed_ops_per_s": n_events / seed,
        "fast_ops_per_s": n_events / fast,
        "speedup": seed / fast,
    }


def bench_sharded_event_pipeline(quick: bool) -> dict:
    from repro.experiments.datasets import get_trace

    trace = get_trace("EU1-FTTH")
    n_events = len(trace.events)
    repetitions = 1 if quick else 5

    def run():
        pipeline = SnifferPipeline(clist_size=50_000, shards=4)
        pipeline.process_trace(trace)

    elapsed = best_of(run, repetitions)
    return {
        "description": (
            "Event path through the 4-shard resolver (Sec. 3.1.1 load "
            "balancing); no seed counterpart"
        ),
        "workload": {"trace": "EU1-FTTH", "events": n_events, "shards": 4},
        "unit": "events/s",
        "fast_s": elapsed,
        "fast_ops_per_s": n_events / elapsed,
    }


def bench_fanout_event_pipeline(quick: bool) -> dict:
    from repro.experiments.datasets import get_trace
    from repro.net.flow import FlowRecord
    from repro.sniffer.fanout import FanoutPipeline

    trace = get_trace("EU1-FTTH")
    n_events = len(trace.events)
    processes = 2
    batch_events = 8192
    repetitions = 2 if quick else 7
    trace_start = next(
        event.start for event in trace.events
        if event.__class__ is FlowRecord
    )
    # The drain measures steady-state worker capacity: batches are
    # pre-encoded (binary ingest is the deployment's input format — in
    # production events arrive off the wire, not as Python objects,
    # exactly as event_pipeline's object stream is pre-built by the
    # trace) and the pool is already running (a sniffer daemon starts
    # once).  Partition+encode from objects is timed separately below.
    shard_payloads = FanoutPipeline.encode_shards(
        trace.events, processes, batch_events
    )

    def run_single():
        pipeline = SnifferPipeline(clist_size=50_000)
        pipeline.process_trace(trace)
        return pipeline

    single = run_single()
    fanout = FanoutPipeline(
        processes=processes, clist_size=50_000, batch_events=batch_events
    )
    fanout.start()
    try:
        def drain():
            for shard, payloads in enumerate(shard_payloads):
                for payload in payloads:
                    fanout.send_encoded(shard, payload)
            return fanout.collect()

        # Same merged statistics as the single-process fused loop
        # before timing anything.
        fanout.set_trace_start(trace_start)
        report = drain()
        assert report.tag_stats.hits == single.tagger.stats.hits
        assert report.tag_stats.misses == single.tagger.stats.misses
        assert (
            report.resolver_stats.hits == single.resolver.stats.hits
        )

        fast = float("inf")
        for _ in range(repetitions):
            fanout.reset()
            fanout.set_trace_start(trace_start)
            gc.collect()
            started = time.perf_counter()
            drain()
            elapsed = time.perf_counter() - started
            if elapsed < fast:
                fast = elapsed

        from_objects = float("inf")
        for _ in range(repetitions):
            fanout.reset()
            gc.collect()
            started = time.perf_counter()
            fanout.feed_events(trace.events)
            fanout.collect()
            elapsed = time.perf_counter() - started
            if elapsed < from_objects:
                from_objects = elapsed
    finally:
        fanout.close()
    seed = best_of(run_single, repetitions)
    return {
        "description": (
            "Multi-process shard fan-out (2 workers, client-IP split) "
            "draining pre-encoded binary batches; baseline ('seed') is "
            "the PR 1 fused single-process event loop on the same "
            "trace, so speedup > 1 means the fan-out beats one "
            "interpreter.  from_objects_ops_per_s additionally pays "
            "partition+encode from Python objects in the parent"
        ),
        "workload": {
            "trace": "EU1-FTTH", "events": n_events,
            "processes": processes, "batch_events": batch_events,
        },
        "unit": "events/s",
        "seed_s": seed,
        "fast_s": fast,
        "seed_ops_per_s": n_events / seed,
        "fast_ops_per_s": n_events / fast,
        "from_objects_ops_per_s": n_events / from_objects,
        "speedup": seed / fast,
        # The fan-out/single-process ratio depends on core count and
        # scheduler behaviour, so unlike the in-process speedups it
        # does not transfer between the committed baseline's machine
        # and a CI runner; the gate reports it but does not fail on it.
        "gate_exempt": True,
    }


def bench_dns_decode(quick: bool) -> dict:
    n_ops = 5_000 if quick else 20_000
    repetitions = 2 if quick else 7
    query = DnsMessage.query(1, "photos-a.fbcdn.net")
    response = DnsMessage.response_to(
        query,
        [
            a_record("photos-a.fbcdn.net", 0x02100000 + i, ttl=20)
            for i in range(4)
        ],
    )
    wire = encode_message(response)
    message = decode_message(wire)
    assert decode_response_addresses(wire) == (
        message.question_name,
        message.a_addresses(),
        message.min_answer_ttl(),
    )

    def run_fast():
        for _ in range(n_ops):
            decode_response_addresses(wire)

    def run_seed():
        for _ in range(n_ops):
            decode_message(wire)

    fast = best_of(run_fast, repetitions)
    seed = best_of(run_seed, repetitions)
    return {
        "description": (
            "Decode a 4-answer A response: zero-copy fast path vs full "
            "message decoder"
        ),
        "workload": {"responses": n_ops, "answers_per_response": 4},
        "unit": "decodes/s",
        "seed_s": seed,
        "fast_s": fast,
        "seed_ops_per_s": n_ops / seed,
        "fast_ops_per_s": n_ops / fast,
        "speedup": seed / fast,
    }


BENCHES = {
    "resolver_insert": bench_resolver_insert,
    "resolver_insert_churn": bench_resolver_insert_churn,
    "resolver_lookup": bench_resolver_lookup,
    "event_pipeline": bench_event_pipeline,
    "sharded_event_pipeline": bench_sharded_event_pipeline,
    "fanout_event_pipeline": bench_fanout_event_pipeline,
    "dns_decode": bench_dns_decode,
}


def next_bench_path() -> Path:
    index = 1
    while (REPO_ROOT / f"BENCH_{index}.json").exists():
        index += 1
    return REPO_ROOT / f"BENCH_{index}.json"


def latest_bench_path(root: Path = REPO_ROOT) -> Path | None:
    """Highest-numbered committed ``BENCH_<n>.json``, or None.

    ``--compare latest`` resolves through this so CI always ratchets
    against the newest committed baseline without editing the workflow
    on every perf PR.
    """
    index = 1
    while (root / f"BENCH_{index}.json").exists():
        index += 1
    return root / f"BENCH_{index - 1}.json" if index > 1 else None


def compare_benches(
    current: dict, previous: dict, tolerance: float
) -> tuple[list[dict], list[dict], list[str]]:
    """Gate the current run against a previous ``BENCH_<n>.json``.

    Benches present in both results are compared on ``speedup`` — the
    seed-relative ratio measured on one machine in one process, which
    transfers across hardware where raw ops/sec does not.  Returns
    ``(regressions, compared, skipped)``: a bench regresses when its
    current speedup falls below ``tolerance x previous``; previous
    benches missing from the current run (coverage lost) and benches
    without a speedup on both sides are listed in ``skipped``.
    """
    regressions = []
    compared = []
    skipped = []
    current_benches = current.get("benches", {})
    previous_benches = previous.get("benches", {})
    for name in sorted(previous_benches):
        if name not in current_benches:
            # A bench that existed before but was not run now has lost
            # its regression coverage — say so instead of going quiet.
            skipped.append(f"{name} (not in current run)")
            continue
        cur = current_benches[name].get("speedup")
        prev = previous_benches[name].get("speedup")
        if cur is None or prev is None:
            skipped.append(f"{name} (no seed-relative speedup)")
            continue
        if current_benches[name].get("gate_exempt") or (
            previous_benches[name].get("gate_exempt")
        ):
            skipped.append(
                f"{name} (gate-exempt: machine-bound ratio, "
                f"{cur:.2f}x vs {prev:.2f}x)"
            )
            continue
        entry = {
            "bench": name,
            "previous_speedup": prev,
            "current_speedup": cur,
            "floor": tolerance * prev,
            "ratio": cur / prev if prev else float("inf"),
        }
        compared.append(entry)
        if cur < tolerance * prev:
            regressions.append(entry)
    return regressions, compared, skipped


def run_compare_gate(
    payload: dict, previous_path: Path, tolerance: float
) -> int:
    """Print the comparison table; return a process exit code."""
    try:
        previous = json.loads(previous_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"[compare] cannot read {previous_path}: {exc}")
        return 1
    regressions, compared, skipped = compare_benches(
        payload, previous, tolerance
    )
    label = previous.get("bench", previous_path.name)
    print(f"[compare] vs {label} (tolerance {tolerance:.2f}):")
    for entry in compared:
        verdict = (
            "REGRESSED" if entry in regressions else "ok"
        )
        print(
            f"[compare]   {entry['bench']}: speedup "
            f"{entry['current_speedup']:.2f}x vs {entry['previous_speedup']:.2f}x "
            f"(floor {entry['floor']:.2f}x) {verdict}"
        )
    for name in skipped:
        print(f"[compare]   skipped: {name}")
    if regressions:
        names = ", ".join(entry["bench"] for entry in regressions)
        print(f"[compare] FAIL: {names} below tolerance")
        return 1
    print("[compare] all shared benches within tolerance")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small workloads / few repetitions (CI smoke)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="output path (default: next free BENCH_<n>.json in repo root)",
    )
    parser.add_argument(
        "--only", choices=sorted(BENCHES), action="append",
        help="run a subset of benches (repeatable)",
    )
    parser.add_argument(
        "--compare", type=str, default=None, metavar="PREV",
        help="after running, gate seed-relative speedups against this "
             "previous BENCH_<n>.json and exit non-zero on regression; "
             "'latest' resolves to the highest-numbered committed "
             "BENCH file",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.85,
        help="regression floor as a fraction of the previous speedup "
             "(with --compare; default 0.85)",
    )
    args = parser.parse_args(argv)
    if not 0.0 < args.tolerance <= 1.0:
        parser.error("--tolerance must be in (0, 1]")
    compare_path: Path | None = None
    if args.compare is not None:
        # Resolve before running (and before --out writes anything), so
        # a full run that adds BENCH_<n+1>.json still compares against
        # the previous baseline.
        if args.compare == "latest":
            compare_path = latest_bench_path()
            if compare_path is None:
                parser.error("--compare latest: no BENCH_<n>.json found")
        else:
            compare_path = Path(args.compare)

    selected = args.only or list(BENCHES)
    results = {}
    for name in selected:
        print(f"[bench] {name} ...", flush=True)
        results[name] = BENCHES[name](args.quick)
        line = results[name]
        if "speedup" in line:
            print(
                f"[bench] {name}: {line['fast_ops_per_s']:,.0f} "
                f"{line['unit']} ({line['speedup']:.2f}x vs seed)",
                flush=True,
            )
        else:
            print(
                f"[bench] {name}: {line['fast_ops_per_s']:,.0f} "
                f"{line['unit']}",
                flush=True,
            )

    out_path = args.out or next_bench_path()
    payload = {
        "bench": out_path.stem,
        "created_utc": datetime.now(timezone.utc).isoformat(),
        "python": sys.version.split()[0],
        "platform": sys.platform,
        "quick": args.quick,
        "benches": results,
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[bench] wrote {out_path}")
    if compare_path is not None:
        return run_compare_gate(payload, compare_path, args.tolerance)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
