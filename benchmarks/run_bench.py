#!/usr/bin/env python
"""Perf-trajectory harness: measure the hot paths, dump ``BENCH_N.json``.

Every optimisation PR runs this script and commits the resulting
``BENCH_<n>.json`` so the events/sec, responses/sec and decodes/sec
trajectory is first-class repo history.  Each bench measures the current
implementation against the retained seed implementation
(:mod:`repro.sniffer.resolver_reference` plus a faithful replica of the
seed event loop), on the same machine, in the same process — the
``speedup`` fields are therefore apples-to-apples.

Benches
-------
* ``resolver_insert``        — stand up a Sec. 6-sized resolver
  (L=200k, the operating point of ``experiments/dimensioning.py``) and
  ingest a response burst; responses/sec.
* ``resolver_insert_churn``  — small Clist (L=5k) with constant
  wraparound; stresses eviction, responses/sec.
* ``resolver_lookup``        — flow-side probes against a warm
  resolver: the pre-fused-key probe (``lookup_key``, the call form the
  pipeline and bursty callers use) vs the seed's two-map walk;
  lookups/sec.  The unfused ``lookup(client, server)`` form is recorded
  alongside for transparency.
* ``event_pipeline``         — the full sniffer event path over the
  EU1-FTTH trace (resolver + tagger); events/sec.
* ``sharded_event_pipeline`` — same trace through a 4-shard resolver
  (no seed counterpart; recorded for the trajectory).
* ``fanout_event_pipeline``  — the multi-process shard fan-out draining
  pre-encoded binary batches on 2 workers; its baseline ("seed") is the
  PR 1 fused single-process loop measured in the same run, so the
  speedup states exactly "fan-out beats one interpreter".
* ``dns_decode``             — wire-format A-response decoding: the
  zero-copy fast path vs the full message decoder; decodes/sec.
* ``flowdb_ingest``          — building the Flow Database from a day of
  labeled flows arriving as pre-encoded eventcodec batches (the
  deployment format): columnar block ingest vs the seed row store
  decoding objects out of the same batches; flows/sec.  Both stores'
  object-ingest paths are recorded alongside.
* ``flowdb_query``           — a mixed analytics query workload
  (domain/fqdn server sets, fqdns-for-servers, tagged counts, spans)
  against warm stores, same public API on both sides; queries/sec.
* ``flowdb_spill_ingest``    — durable ingest: the segmented on-disk
  columnar store (``FlowDatabase(spill_dir=...)``) absorbing batches
  while spilling CRC-checked segments, vs the seed persistence path
  (row store + JSON-lines dump) on the same filesystem; flows/sec.
  The store runs journal-less (``wal=False``) — the crash-safety tax
  is measured separately so this bench keeps tracking raw spill cost.
* ``flowdb_wal_ingest``      — the price of crash safety: the same
  durable ingest with the write-ahead tail journal on (every batch
  framed, CRC'd and fsynced to ``tail.wal`` before acknowledgement)
  vs the journal-less store measured in the same run; flows/sec.
  The ``speedup`` field is the WAL/no-WAL throughput ratio — below
  1.0 by construction; the acceptance floor is 0.5 (journaling may
  cost at most half the ingest rate).
* ``flowdb_reopen_query``    — cold-reopen the durable dataset and run
  the mixed query workload: segment-directory reopen vs JSON-lines
  reload into the row store; queries/sec.  ``--spill-dir`` points both
  benches' artifacts at a chosen filesystem (CI uses a tmpfs).
* ``flowdb_pruned_query``    — the time-windowed analytics workload
  over a cold-reopened, time-ordered store: segment pruning via the
  footer metadata vs the seed JSON-lines reload + per-flow filter
  loops; queries/sec.  The ``unpruned_*``/``prune_speedup`` fields
  additionally time the same store with ``prune=False`` (the PR4
  scan-everything pass), isolating what the metadata alone buys.
* ``flowdb_parallel_analytics`` — the whole-store grouped-aggregation
  sweep with per-segment kernels on a 2-thread pool
  (``FlowStore(parallel=2)``) vs the serial pass on the same store;
  sweeps/sec.  Like ``fanout_event_pipeline`` its baseline is the
  current serial implementation measured in the same run, and the
  ratio is machine-bound (gate-exempt): on the 1-core CI container
  threads time-slice; multi-core hardware is where the pool pays.
* ``analytics_experiments``  — a representative Fig. 3/4/5/11 +
  Tab. 5/8 + Alg. 2 sweep: the vectorized analytics on the columnar
  store vs faithful replicas of the seed per-flow loops on the seed
  row store; sweeps/sec.

Every in-process bench also records tracemalloc **peak memory** for one
untimed run of each side (``fast_peak_kb`` / ``seed_peak_kb``) so the
BENCH files track the columnar store's footprint alongside wall clock
(the multi-process fan-out bench is excluded — its working set lives in
the worker processes, invisible to the parent's tracemalloc).

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py [--quick] [--out FILE]
    PYTHONPATH=src python benchmarks/run_bench.py --quick \
        --compare latest --tolerance 0.85

``--quick`` shrinks workloads and repetitions for CI smoke runs (the
speedup fields remain meaningful but noisier).  The flow-database
benches keep their full workload size in quick mode — their speedups
grow with the flows-per-group dedupe factor, so a shrunken smoke run
would sit structurally below the committed full-run speedup and trip
the gate — and only cut repetitions.  Without ``--out`` the result
lands in the repo root as the next free ``BENCH_<n>.json``.

``--compare PREV`` is the CI regression gate: after the run, every
bench present in both results is compared on its ``speedup`` field (the
seed-relative ratio, which is measured against the seed implementation
*on the same machine in the same process* and therefore transfers
across hardware, unlike raw ops/sec) and the process exits non-zero if
any falls below ``tolerance x previous``.  Benches without a seed
counterpart in either file are reported as skipped.
"""

from __future__ import annotations

import argparse
import gc
import json
import random
import re
import shutil
import sys
import tempfile
import time
import tracemalloc
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analytics.database import FlowDatabase             # noqa: E402
from repro.analytics.database_reference import (              # noqa: E402
    FlowDatabase as ReferenceDatabase,
)
from repro.dns.message import DnsMessage                      # noqa: E402
from repro.dns.records import a_record                        # noqa: E402
from repro.dns.wire import (                                  # noqa: E402
    decode_message,
    decode_response_addresses,
    encode_message,
)
from repro.net.flow import (                                  # noqa: E402
    DnsObservation,
    FlowRecord,
    Protocol,
    TransportProto,
)
from repro.sniffer.pipeline import SnifferPipeline            # noqa: E402
from repro.sniffer.resolver import DnsResolver                # noqa: E402
from repro.sniffer.resolver_reference import (                # noqa: E402
    DnsResolver as ReferenceResolver,
)
from repro.sniffer.tagger import FlowTagger                   # noqa: E402


def best_of(fn, repetitions: int) -> float:
    """Best wall-clock time of ``repetitions`` runs of ``fn()``.

    Each repetition starts from a freshly collected heap, but the
    collector stays *enabled* during the timed region: GC pressure from
    per-event allocation is precisely one of the costs the flat resolver
    removes, so turning it off would flatter the seed implementation.
    """
    best = float("inf")
    for _ in range(repetitions):
        gc.collect()
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best


def peak_of(fn) -> int:
    """tracemalloc peak (bytes) of one untimed run of ``fn``.

    Measured outside the timed repetitions — tracemalloc's allocation
    hooks roughly double Python-level allocation cost, which would
    pollute the wall-clock numbers the CI gate reads.
    """
    gc.collect()
    tracemalloc.start()
    try:
        fn()
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def add_peaks(result: dict, run_fast, run_seed=None) -> dict:
    """Attach per-side tracemalloc peaks to a bench result."""
    result["fast_peak_kb"] = peak_of(run_fast) // 1024
    if run_seed is not None:
        result["seed_peak_kb"] = peak_of(run_seed) // 1024
    return result


def make_insert_workload(n_ops: int, n_clients: int, seed: int = 2):
    rng = random.Random(seed)
    return [
        (
            rng.randrange(1, n_clients),
            f"host{rng.randrange(4000)}.example{rng.randrange(80)}.com",
            [rng.randrange(1, 1 << 32) for _ in range(rng.randint(1, 4))],
        )
        for _ in range(n_ops)
    ]


class SeedPipeline:
    """Faithful replica of the seed sniffer event loop.

    Per-event ``isinstance`` dispatch, the ``feed_observation`` wrapper,
    a ``tag()`` method call per flow, and the reference resolver — the
    exact per-event cost profile of the seed ``SnifferPipeline`` before
    the fused loop, kept here so ``event_pipeline.speedup`` always
    compares against the seed's architecture rather than a strawman.
    """

    def __init__(self, clist_size: int, warmup: float = 300.0):
        self.resolver = ReferenceResolver(clist_size=clist_size)
        self.tagger = FlowTagger(self.resolver, warmup=warmup)
        self.tagged_flows: list[FlowRecord] = []
        self.empty_answers = 0

    def process_trace(self, trace):
        for event in trace.iter_events():
            if isinstance(event, DnsObservation):
                if not event.answers:
                    self.empty_answers += 1
                    continue
                self.resolver.insert(
                    client_ip=event.client_ip,
                    fqdn=event.fqdn,
                    answers=event.answers,
                    timestamp=event.timestamp,
                )
            elif isinstance(event, FlowRecord):
                self.tagger.tag(event)
                self.tagged_flows.append(event)
            else:
                raise TypeError(
                    f"unsupported event type {type(event).__name__}"
                )
        return self.tagged_flows


def bench_resolver_insert(quick: bool) -> dict:
    clist_size = 200_000
    n_ops = 10_000 if quick else 50_000
    workload = make_insert_workload(n_ops, n_clients=2000)
    # Quick mode keeps >= 2 repetitions: the CI gate reads these
    # speedups, and a single timed sample is one noisy-neighbor stall
    # away from a spurious regression.
    repetitions = 2 if quick else 5

    def run_fast():
        resolver = DnsResolver(clist_size=clist_size)
        insert = resolver.insert
        for client, fqdn, answers in workload:
            insert(client, fqdn, answers)
        return resolver

    def run_seed():
        resolver = ReferenceResolver(clist_size=clist_size)
        for client, fqdn, answers in workload:
            resolver.insert(client, fqdn, answers)
        return resolver

    assert run_fast().stats == run_seed().stats  # same observable work
    fast = best_of(run_fast, repetitions)
    seed = best_of(run_seed, repetitions)
    return add_peaks({
        "description": (
            "Stand up a Sec.6-sized resolver (L=200k) and ingest a "
            "response burst (construction + inserts)"
        ),
        "workload": {"clist_size": clist_size, "responses": n_ops},
        "unit": "responses/s",
        "seed_s": seed,
        "fast_s": fast,
        "seed_ops_per_s": n_ops / seed,
        "fast_ops_per_s": n_ops / fast,
        "speedup": seed / fast,
    }, run_fast, run_seed)


def bench_resolver_insert_churn(quick: bool) -> dict:
    clist_size = 5_000
    # Workload size is fixed across quick/full (a rep costs
    # milliseconds): a shrunken probe set shifts the seed/fast ratio
    # systematically, which is exactly what the gate must not see.
    # Quick keeps >= 4 repetitions: best-of-N rises monotonically with
    # N, so extra reps only tighten the gate's noise floor on the
    # dict-probe microbenches (the flappiest on shared runners).
    n_ops = 10_000
    workload = make_insert_workload(n_ops, n_clients=500, seed=1)
    repetitions = 4 if quick else 7

    def run_fast():
        resolver = DnsResolver(clist_size=clist_size)
        insert = resolver.insert
        for client, fqdn, answers in workload:
            insert(client, fqdn, answers)

    def run_seed():
        resolver = ReferenceResolver(clist_size=clist_size)
        for client, fqdn, answers in workload:
            resolver.insert(client, fqdn, answers)

    fast = best_of(run_fast, repetitions)
    seed = best_of(run_seed, repetitions)
    return add_peaks({
        "description": (
            "Small Clist (L=5k) with constant wraparound: the "
            "eviction-bound regime"
        ),
        "workload": {"clist_size": clist_size, "responses": n_ops},
        "unit": "responses/s",
        "seed_s": seed,
        "fast_s": fast,
        "seed_ops_per_s": n_ops / seed,
        "fast_ops_per_s": n_ops / fast,
        "speedup": seed / fast,
    }, run_fast, run_seed)


def bench_resolver_lookup(quick: bool) -> dict:
    from repro.sniffer.resolver import fuse_key

    n_ops = 100_000  # fixed across quick/full; see resolver_insert_churn
    workload = make_insert_workload(10_000, n_clients=500, seed=1)
    repetitions = 4 if quick else 7
    fast_resolver = DnsResolver(clist_size=50_000)
    seed_resolver = ReferenceResolver(clist_size=50_000)
    for client, fqdn, answers in workload:
        fast_resolver.insert(client, fqdn, answers)
        seed_resolver.insert(client, fqdn, answers)
    rng = random.Random(5)
    keys = []
    for _ in range(n_ops):
        client, _fqdn, answers = workload[rng.randrange(len(workload))]
        # ~half the probes hit, half probe unknown servers
        server = answers[0] if rng.random() < 0.5 else rng.randrange(1 << 32)
        keys.append((client, server))
    # The pipeline fuses (client, server) into the 64-bit key once per
    # flow and bursty callers (several flows to the same server, policy
    # re-checks) reuse it, so the fast side is probed in its natural
    # call form: lookup_key over pre-fused keys.  The seed resolver has
    # no key to fuse — its natural form is the two-map walk, unchanged.
    fused_keys = [fuse_key(client, server) for client, server in keys]

    def run_fast():
        lookup_key = fast_resolver.lookup_key
        hits = 0
        for key in fused_keys:
            if lookup_key(key) is not None:
                hits += 1
        return hits

    def run_unfused():
        lookup = fast_resolver.lookup
        hits = 0
        for client, server in keys:
            if lookup(client, server) is not None:
                hits += 1
        return hits

    def run_seed():
        lookup = seed_resolver.lookup
        hits = 0
        for client, server in keys:
            if lookup(client, server) is not None:
                hits += 1
        return hits

    assert run_fast() == run_unfused() == run_seed()
    fast = best_of(run_fast, repetitions)
    unfused = best_of(run_unfused, repetitions)
    seed = best_of(run_seed, repetitions)
    return add_peaks({
        "description": (
            "Flow-side probes against a warm resolver, each side in its "
            "natural call form: lookup_key over pre-fused 64-bit keys "
            "(what the pipeline and per-pair bursts supply) vs the "
            "seed's two-map walk.  The unfused lookup(client, server) "
            "form pays a big-int build per probe and is recorded in "
            "fast_unfused_ops_per_s"
        ),
        "workload": {"lookups": n_ops, "clist_size": 50_000},
        "unit": "lookups/s",
        "seed_s": seed,
        "fast_s": fast,
        "seed_ops_per_s": n_ops / seed,
        "fast_ops_per_s": n_ops / fast,
        "fast_unfused_ops_per_s": n_ops / unfused,
        "speedup": seed / fast,
    }, run_fast, run_seed)


def bench_event_pipeline(quick: bool) -> dict:
    from repro.experiments.datasets import get_trace

    trace = get_trace("EU1-FTTH")
    n_events = len(trace.events)
    repetitions = 3 if quick else 5  # >= 3 even quick; the gate reads this

    def run_fast():
        pipeline = SnifferPipeline(clist_size=50_000)
        pipeline.process_trace(trace)
        return pipeline

    def run_seed():
        pipeline = SeedPipeline(clist_size=50_000)
        pipeline.process_trace(trace)
        return pipeline

    # Same labels out of both loops before timing anything.
    fast_flows = run_fast().tagged_flows
    seed_flows = run_seed().tagged_flows
    assert len(fast_flows) == len(seed_flows)
    assert all(
        ours.fqdn == theirs.fqdn
        for ours, theirs in zip(fast_flows, seed_flows)
    )
    fast = best_of(run_fast, repetitions)
    seed = best_of(run_seed, repetitions)
    return add_peaks({
        "description": (
            "Full sniffer event path (resolver + tagger) over the "
            "EU1-FTTH trace"
        ),
        "workload": {"trace": "EU1-FTTH", "events": n_events},
        "unit": "events/s",
        "seed_s": seed,
        "fast_s": fast,
        "seed_ops_per_s": n_events / seed,
        "fast_ops_per_s": n_events / fast,
        "speedup": seed / fast,
    }, run_fast, run_seed)


def bench_sharded_event_pipeline(quick: bool) -> dict:
    from repro.experiments.datasets import get_trace

    trace = get_trace("EU1-FTTH")
    n_events = len(trace.events)
    repetitions = 1 if quick else 5

    def run():
        pipeline = SnifferPipeline(clist_size=50_000, shards=4)
        pipeline.process_trace(trace)

    elapsed = best_of(run, repetitions)
    return add_peaks({
        "description": (
            "Event path through the 4-shard resolver (Sec. 3.1.1 load "
            "balancing); no seed counterpart"
        ),
        "workload": {"trace": "EU1-FTTH", "events": n_events, "shards": 4},
        "unit": "events/s",
        "fast_s": elapsed,
        "fast_ops_per_s": n_events / elapsed,
    }, run)


def bench_fanout_event_pipeline(quick: bool) -> dict:
    from repro.experiments.datasets import get_trace
    from repro.net.flow import FlowRecord
    from repro.sniffer.fanout import FanoutPipeline

    trace = get_trace("EU1-FTTH")
    n_events = len(trace.events)
    processes = 2
    batch_events = 8192
    repetitions = 2 if quick else 7
    trace_start = next(
        event.start for event in trace.events
        if event.__class__ is FlowRecord
    )
    # The drain measures steady-state worker capacity: batches are
    # pre-encoded (binary ingest is the deployment's input format — in
    # production events arrive off the wire, not as Python objects,
    # exactly as event_pipeline's object stream is pre-built by the
    # trace) and the pool is already running (a sniffer daemon starts
    # once).  Partition+encode from objects is timed separately below.
    shard_payloads = FanoutPipeline.encode_shards(
        trace.events, processes, batch_events
    )

    def run_single():
        pipeline = SnifferPipeline(clist_size=50_000)
        pipeline.process_trace(trace)
        return pipeline

    single = run_single()
    fanout = FanoutPipeline(
        processes=processes, clist_size=50_000, batch_events=batch_events
    )
    fanout.start()
    try:
        def drain():
            for shard, payloads in enumerate(shard_payloads):
                for payload in payloads:
                    fanout.send_encoded(shard, payload)
            return fanout.collect()

        # Same merged statistics as the single-process fused loop
        # before timing anything.
        fanout.set_trace_start(trace_start)
        report = drain()
        assert report.tag_stats.hits == single.tagger.stats.hits
        assert report.tag_stats.misses == single.tagger.stats.misses
        assert (
            report.resolver_stats.hits == single.resolver.stats.hits
        )

        fast = float("inf")
        for _ in range(repetitions):
            fanout.reset()
            fanout.set_trace_start(trace_start)
            gc.collect()
            started = time.perf_counter()
            drain()
            elapsed = time.perf_counter() - started
            if elapsed < fast:
                fast = elapsed

        from_objects = float("inf")
        for _ in range(repetitions):
            fanout.reset()
            gc.collect()
            started = time.perf_counter()
            fanout.feed_events(trace.events)
            fanout.collect()
            elapsed = time.perf_counter() - started
            if elapsed < from_objects:
                from_objects = elapsed
    finally:
        fanout.close()
    seed = best_of(run_single, repetitions)
    return {
        "description": (
            "Multi-process shard fan-out (2 workers, client-IP split) "
            "draining pre-encoded binary batches; baseline ('seed') is "
            "the PR 1 fused single-process event loop on the same "
            "trace, so speedup > 1 means the fan-out beats one "
            "interpreter.  from_objects_ops_per_s additionally pays "
            "partition+encode from Python objects in the parent"
        ),
        "workload": {
            "trace": "EU1-FTTH", "events": n_events,
            "processes": processes, "batch_events": batch_events,
        },
        "unit": "events/s",
        "seed_s": seed,
        "fast_s": fast,
        "seed_ops_per_s": n_events / seed,
        "fast_ops_per_s": n_events / fast,
        "from_objects_ops_per_s": n_events / from_objects,
        "speedup": seed / fast,
        # The fan-out/single-process ratio depends on core count and
        # scheduler behaviour, so unlike the in-process speedups it
        # does not transfer between the committed baseline's machine
        # and a CI runner; the gate reports it but does not fail on it.
        "gate_exempt": True,
    }


def bench_dns_decode(quick: bool) -> dict:
    n_ops = 5_000 if quick else 20_000
    repetitions = 2 if quick else 7
    query = DnsMessage.query(1, "photos-a.fbcdn.net")
    response = DnsMessage.response_to(
        query,
        [
            a_record("photos-a.fbcdn.net", 0x02100000 + i, ttl=20)
            for i in range(4)
        ],
    )
    wire = encode_message(response)
    message = decode_message(wire)
    assert decode_response_addresses(wire) == (
        message.question_name,
        message.a_addresses(),
        message.min_answer_ttl(),
    )

    def run_fast():
        for _ in range(n_ops):
            decode_response_addresses(wire)

    def run_seed():
        for _ in range(n_ops):
            decode_message(wire)

    fast = best_of(run_fast, repetitions)
    seed = best_of(run_seed, repetitions)
    return add_peaks({
        "description": (
            "Decode a 4-answer A response: zero-copy fast path vs full "
            "message decoder"
        ),
        "workload": {"responses": n_ops, "answers_per_response": 4},
        "unit": "decodes/s",
        "seed_s": seed,
        "fast_s": fast,
        "seed_ops_per_s": n_ops / seed,
        "fast_ops_per_s": n_ops / fast,
        "speedup": seed / fast,
    }, run_fast, run_seed)


# ---------------------------------------------------------------------------
# Flow-database / analytics benches (PR 3)
# ---------------------------------------------------------------------------

FLOW_ORGS = (
    # (organization, /16 base) — the synthetic MaxMind substitute.
    ("akamai", 0x02100000),
    ("amazon", 0x36000000),
    ("google", 0x4A7D0000),
    ("leaseweb", 0x5CEA0000),
    ("edgecast", 0x5DB80000),
    ("self", 0x40000000),
)

FLOW_DOMAINS = (
    # (2LD, subdomain patterns, orgs hosting it)
    ("zynga.com", ("farm{}", "city{}", "mafiawars"), ("amazon", "self")),
    ("fbcdn.net", ("photos-{}", "external{}", "video{}"),
     ("akamai", "leaseweb")),
    ("facebook.com", ("www", "api{}", "chat{}"), ("self", "akamai")),
    ("youtube.com", ("r{}---sn-cache", "i{}"), ("google",)),
    ("blogspot.com", ("blog{}",), ("google",)),
    ("appspot.com", ("tracker{}", "announce{}", "app{}", "game{}"),
     ("google", "amazon")),
    ("dropbox.com", ("client{}", "www"), ("amazon",)),
    ("cloudfront.net", ("d{}",), ("amazon",)),
    ("twitter.com", ("api{}", "www"), ("edgecast", "self")),
    ("bbc.co.uk", ("static{}", "news"), ("leaseweb", "edgecast")),
)

_PORT_PROTOCOL = {
    80: Protocol.HTTP, 443: Protocol.TLS, 51413: Protocol.P2P,
}


def make_flow_workload(n_flows: int, seed: int = 9):
    """A day of labeled flows shaped like the EU1 traces, plus the
    IP→org database covering its address plan.

    Returns ``(flows, ipdb, domains, cdns)``; ~8% of flows are untagged
    (cache misses), labels repeat heavily (the interning regime), and
    appspot carries tracker-named services so the Fig. 11 / Tab. 8
    analytics have something to find.
    """
    from repro.net.flow import FiveTuple, FlowRecord
    from repro.orgdb.ipdb import IpOrganizationDb

    rng = random.Random(seed)
    ipdb = IpOrganizationDb()
    org_servers: dict[str, list[int]] = {}
    for organization, base in FLOW_ORGS:
        ipdb.add_range(base, base + 0xFFFF, organization)
        org_servers[organization] = [
            base + rng.randrange(0x10000) for _ in range(40)
        ]
    fqdn_pool: list[tuple[str, list[int]]] = []
    for sld, patterns, orgs in FLOW_DOMAINS:
        hosts = [srv for org in orgs for srv in org_servers[org]]
        for pattern in patterns:
            for index in range(12):
                fqdn = f"{pattern.format(index)}.{sld}"
                fqdn_pool.append(
                    (fqdn, rng.sample(hosts, rng.randint(1, 6)))
                )
    clients = [0x0A000000 + i for i in range(2000)]
    ports = (80, 443, 443, 80, 51413)
    flows = []
    for _ in range(n_flows):
        port = ports[rng.randrange(len(ports))]
        if rng.random() < 0.08:
            fqdn, servers = None, [rng.randrange(1, 1 << 32)]
        else:
            # Zipf-ish popularity: squaring skews toward the pool head.
            fqdn, servers = fqdn_pool[
                int(rng.random() ** 2 * len(fqdn_pool))
            ]
        start = rng.random() * 86400.0
        flows.append(FlowRecord(
            fid=FiveTuple(
                clients[rng.randrange(len(clients))],
                servers[rng.randrange(len(servers))],
                rng.randrange(1024, 65535), port, TransportProto.TCP,
            ),
            start=start,
            end=start + rng.random() * 30.0,
            protocol=_PORT_PROTOCOL[port],
            bytes_up=rng.randrange(200, 20_000),
            bytes_down=rng.randrange(1_000, 2_000_000),
            packets=rng.randrange(4, 2_000),
            fqdn=fqdn,
        ))
    domains = tuple(sld for sld, _patterns, _orgs in FLOW_DOMAINS)
    cdns = tuple(org for org, _base in FLOW_ORGS if org != "self")
    return flows, ipdb, domains, cdns


def _encode_flow_batches(flows, batch_events: int = 8192) -> list[bytes]:
    from repro.sniffer.eventcodec import encode_events

    return [
        encode_events(flows[pos:pos + batch_events])
        for pos in range(0, len(flows), batch_events)
    ]


def bench_flowdb_ingest(quick: bool) -> dict:
    from repro.sniffer.eventcodec import iter_decoded_events

    # Workload size is fixed across quick/full: the seed-relative
    # speedup grows with the dedupe factor (flows per distinct label/
    # server/bin), so a shrunken CI smoke run would sit far below the
    # committed full-run speedup and trip the gate spuriously.  Quick
    # mode only cuts repetitions.
    n_flows = 120_000
    flows, _ipdb, domains, _cdns = make_flow_workload(n_flows)
    payloads = _encode_flow_batches(flows)
    repetitions = 2 if quick else 5

    # Both sides absorb the same pre-encoded tagged-flow batches — the
    # sniffer→database deployment format (exactly as the fan-out bench
    # treats binary batches as the ingest format).  The columnar store
    # lifts the blocks into its columns; the seed row store must first
    # materialise FlowRecord objects from each batch, then index them.
    def run_fast():
        return FlowDatabase.from_batches(payloads)

    def run_seed():
        database = ReferenceDatabase()
        for payload in payloads:
            database.add_all(iter_decoded_events(payload))
        return database

    def run_fast_objects():
        return FlowDatabase.from_flows(flows)

    def run_seed_objects():
        return ReferenceDatabase.from_flows(flows)

    # Same observable store out of every path before timing anything.
    seed_db = run_seed()
    for db in (run_fast(), run_fast_objects()):
        assert len(db) == len(seed_db)
        assert db.tagged_count == seed_db.tagged_count
        assert db.fqdns() == seed_db.fqdns()
        for sld in domains:
            assert db.servers_for_domain(sld) == (
                seed_db.servers_for_domain(sld)
            )
    fast = best_of(run_fast, repetitions)
    seed = best_of(run_seed, repetitions)
    fast_objects = best_of(run_fast_objects, repetitions)
    seed_objects = best_of(run_seed_objects, repetitions)
    return add_peaks({
        "description": (
            "Build the Flow Database from a day of labeled flows "
            "arriving as pre-encoded eventcodec batches (the "
            "sniffer→database deployment format): columnar block "
            "ingest vs the seed row store, which must materialise "
            "per-flow objects from each batch before indexing.  The "
            "*_from_objects_ops_per_s fields record both stores fed "
            "pre-built FlowRecord objects instead"
        ),
        "workload": {"flows": n_flows, "batch_events": 8192},
        "unit": "flows/s",
        "seed_s": seed,
        "fast_s": fast,
        "seed_ops_per_s": n_flows / seed,
        "fast_ops_per_s": n_flows / fast,
        "fast_from_objects_ops_per_s": n_flows / fast_objects,
        "seed_from_objects_ops_per_s": n_flows / seed_objects,
        "speedup": seed / fast,
    }, run_fast, run_seed)


def _mixed_query_workload(domains, fqdn_sample, server_chunks):
    """The shared mixed analytics query workload of ``flowdb_query``
    and ``flowdb_reopen_query``: a checksum-returning closure plus its
    query count."""
    n_ops = (
        3 * len(domains) + 2 * len(fqdn_sample) + len(server_chunks) + 3
    )

    def run_queries(db):
        acc = 0
        for sld in domains:
            acc += len(db.servers_for_domain(sld))
            acc += len(db.fqdns_for_domain(sld))
            acc += len(db.query_by_domain(sld))
        for fqdn in fqdn_sample:
            acc += len(db.servers_for_fqdn(fqdn))
            acc += len(db.query_by_fqdn(fqdn))
        for chunk in server_chunks:
            acc += len(db.fqdns_for_servers(chunk))
        acc += db.tagged_count
        acc += len(db.count_by_protocol())
        acc += int(db.time_span()[1])
        return acc

    return run_queries, n_ops


def bench_flowdb_query(quick: bool) -> dict:
    n_flows = 120_000  # fixed across quick/full; see bench_flowdb_ingest
    flows, _ipdb, domains, _cdns = make_flow_workload(n_flows)
    fast_db = FlowDatabase.from_flows(flows)
    seed_db = ReferenceDatabase.from_flows(flows)
    repetitions = 2 if quick else 5
    fqdn_sample = seed_db.fqdns()[::3]
    server_chunks = [
        seed_db.servers()[pos::7] for pos in range(7)
    ]
    run_queries, n_ops = _mixed_query_workload(
        domains, fqdn_sample, server_chunks
    )

    def run_fast():
        return run_queries(fast_db)

    def run_seed():
        return run_queries(seed_db)

    assert run_fast() == run_seed()  # identical answers before timing
    fast = best_of(run_fast, repetitions)
    seed = best_of(run_seed, repetitions)
    return add_peaks({
        "description": (
            "Mixed analytics query workload against warm stores, same "
            "public API both sides: per-domain/per-FQDN server sets, "
            "labels-for-servers, record fetches, tagged counts, "
            "protocol histogram, time span"
        ),
        "workload": {"flows": n_flows, "queries": n_ops},
        "unit": "queries/s",
        "seed_s": seed,
        "fast_s": fast,
        "seed_ops_per_s": n_ops / seed,
        "fast_ops_per_s": n_ops / fast,
        "speedup": seed / fast,
    }, run_fast, run_seed)


# -- on-disk flow store benches (PR 4) -------------------------------------

_SPILL_ROOT: Path | None = None  # --spill-dir; tempdir when unset


def _spill_root() -> Path:
    global _SPILL_ROOT
    if _SPILL_ROOT is None:
        _SPILL_ROOT = Path(tempfile.mkdtemp(prefix="flowstore-bench-"))
    _SPILL_ROOT.mkdir(parents=True, exist_ok=True)
    return _SPILL_ROOT


def bench_flowdb_spill_ingest(quick: bool) -> dict:
    """Durable ingest: segment spill vs the seed JSON-lines persistence.

    Both sides absorb the same pre-encoded tagged-flow batches *and*
    leave a reloadable on-disk artifact on the same filesystem — the
    fast side a spilled segment directory
    (``FlowDatabase(spill_dir=...)``), the seed side the row store plus
    the JSON-lines dump that was the repo's only durable format before
    the segmented store (``repro.analytics.persistence``).
    """
    from repro.analytics.persistence import dump_flows
    from repro.analytics.storage import FlowStore
    from repro.sniffer.eventcodec import iter_decoded_events

    n_flows = 120_000  # fixed across quick/full; see bench_flowdb_ingest
    spill_rows = 16_384
    flows, _ipdb, domains, _cdns = make_flow_workload(n_flows)
    payloads = _encode_flow_batches(flows)
    repetitions = 2 if quick else 5
    root = _spill_root() / "spill_ingest"
    fast_dir = root / "fast"
    seed_dir = root / "seed"
    seed_dir.mkdir(parents=True, exist_ok=True)

    def run_fast():
        shutil.rmtree(fast_dir, ignore_errors=True)
        # Journal-less on purpose: flowdb_wal_ingest prices the WAL.
        store = FlowStore(fast_dir, spill_rows=spill_rows, wal=False)
        ingest = store.ingest_batch
        for payload in payloads:
            ingest(payload)
        store.close()
        return store

    def run_seed():
        database = ReferenceDatabase()
        with open(seed_dir / "flows.jsonl", "w", encoding="utf-8") as out:
            for payload in payloads:
                batch = list(iter_decoded_events(payload))
                database.add_all(batch)
                dump_flows(batch, out)
        return database

    # Same durable dataset out of both paths before timing anything:
    # the spilled directory must reopen to the seed store's answers.
    seed_db = run_seed()
    reopened = FlowStore(run_fast().directory)
    assert len(reopened) == len(seed_db)
    assert reopened.tagged_count == seed_db.tagged_count
    assert reopened.fqdns() == seed_db.fqdns()
    for sld in domains:
        assert reopened.servers_for_domain(sld) == (
            seed_db.servers_for_domain(sld)
        )
    fast = best_of(run_fast, repetitions)
    seed = best_of(run_seed, repetitions)
    return add_peaks({
        "description": (
            "Durable ingest of a day of labeled flows arriving as "
            "pre-encoded eventcodec batches: columnar segment spill "
            "(FlowStore, sealed every 16k rows, CRC-checked files) vs "
            "the seed persistence path (row store + JSON-lines dump), "
            "both writing reloadable artifacts to the same filesystem"
        ),
        "workload": {
            "flows": n_flows, "batch_events": 8192,
            "spill_rows": spill_rows,
        },
        "unit": "flows/s",
        "seed_s": seed,
        "fast_s": fast,
        "seed_ops_per_s": n_flows / seed,
        "fast_ops_per_s": n_flows / fast,
        "speedup": seed / fast,
    }, run_fast, run_seed)


def bench_flowdb_wal_ingest(quick: bool) -> dict:
    """The price of crash safety: WAL-journaled vs journal-less ingest.

    Both arms run in the same process on the same filesystem and
    absorb the same pre-encoded batches into the same segmented store;
    the only difference is the write-ahead tail journal (every batch
    framed, CRC'd and fsynced to ``tail.wal`` before the ingest call
    returns).  ``speedup`` is therefore the WAL/no-WAL throughput
    ratio — below 1.0 by construction.  The acceptance floor is 0.5:
    acknowledged-durability may cost at most half the ingest rate.
    """
    from repro.analytics.storage import FlowStore

    n_flows = 120_000  # fixed across quick/full; see bench_flowdb_ingest
    spill_rows = 16_384
    flows, _ipdb, _domains, _cdns = make_flow_workload(n_flows)
    payloads = _encode_flow_batches(flows)
    repetitions = 2 if quick else 5
    root = _spill_root() / "wal_ingest"
    root.mkdir(parents=True, exist_ok=True)

    def _ingest(directory, wal: bool):
        shutil.rmtree(directory, ignore_errors=True)
        store = FlowStore(directory, spill_rows=spill_rows, wal=wal)
        ingest = store.ingest_batch
        for payload in payloads:
            ingest(payload)
        store.close()
        return store

    def run_fast():
        return _ingest(root / "wal", True)

    def run_seed():
        return _ingest(root / "nowal", False)

    # Identical durable artifacts out of both arms before timing, and
    # the journaled store must close clean (sealed tail, empty WAL).
    journaled = FlowStore(run_fast().directory)
    plain = FlowStore(run_seed().directory)
    assert len(journaled) == len(plain) == n_flows
    assert journaled.fqdns() == plain.fqdns()
    health = journaled.health()
    assert health["status"] == "ok"
    assert health["wal"]["recovered_rows"] == 0
    fast = best_of(run_fast, repetitions)
    seed = best_of(run_seed, repetitions)
    return add_peaks({
        "description": (
            "Durable ingest of the flowdb_spill_ingest workload with "
            "the write-ahead tail journal on (frame + CRC + fsync per "
            "batch before acknowledgement) vs the journal-less store "
            "measured in the same run.  speedup = WAL/no-WAL "
            "throughput ratio; the crash-safety tax passes while it "
            "stays above 0.5"
        ),
        "workload": {
            "flows": n_flows, "batch_events": 8192,
            "spill_rows": spill_rows,
        },
        "unit": "flows/s",
        "seed_s": seed,
        "fast_s": fast,
        "seed_ops_per_s": n_flows / seed,
        "fast_ops_per_s": n_flows / fast,
        "speedup": seed / fast,
    }, run_fast, run_seed)


def bench_flowdb_reopen_query(quick: bool) -> dict:
    """Reopen a durable dataset cold and answer the mixed query
    workload: segment-directory reopen vs JSON-lines reload."""
    from repro.analytics.persistence import dump_flows, load_flows
    from repro.analytics.storage import FlowStore

    n_flows = 120_000  # fixed across quick/full; see bench_flowdb_ingest
    flows, _ipdb, domains, _cdns = make_flow_workload(n_flows)
    repetitions = 2 if quick else 5
    root = _spill_root() / "reopen_query"
    store_dir = root / "store"
    shutil.rmtree(store_dir, ignore_errors=True)
    root.mkdir(parents=True, exist_ok=True)
    store = FlowStore(store_dir, spill_rows=16_384, wal=False)
    store.add_all(flows)
    store.close()
    jsonl = root / "flows.jsonl"
    with open(jsonl, "w", encoding="utf-8") as out:
        dump_flows(flows, out)
    probe = ReferenceDatabase.from_flows(flows)
    fqdn_sample = probe.fqdns()[::3]
    server_chunks = [probe.servers()[pos::7] for pos in range(7)]
    run_queries, n_ops = _mixed_query_workload(
        domains, fqdn_sample, server_chunks
    )

    def run_fast():
        return run_queries(FlowStore(store_dir))

    def run_seed():
        database = ReferenceDatabase()
        with open(jsonl, "r", encoding="utf-8") as handle:
            database.add_all(load_flows(handle))
        return run_queries(database)

    assert run_fast() == run_seed()  # identical answers before timing
    fast = best_of(run_fast, repetitions)
    seed = best_of(run_seed, repetitions)
    return add_peaks({
        "description": (
            "Cold reopen of the durable dataset plus the mixed "
            "analytics query workload: segment-directory reopen "
            "(validate CRCs, rebuild columns/indexes on demand) vs "
            "reloading the seed JSON-lines dump into the row store"
        ),
        "workload": {"flows": n_flows, "queries": n_ops},
        "unit": "queries/s",
        "seed_s": seed,
        "fast_s": fast,
        "seed_ops_per_s": n_ops / seed,
        "fast_ops_per_s": n_ops / fast,
        "speedup": seed / fast,
    }, run_fast, run_seed)


# Three consecutive half-hour windows drilling into one busy span of
# the day — the Fig. 3/4 drill-down shape.  Narrow relative to the
# segment size (8192 rows ≈ 1.6 h of a uniform day), so the metadata
# can prove ~80-90% of the segments irrelevant; windows spread across
# the whole day would touch every segment and measure nothing.
_PRUNE_WINDOWS = tuple(
    (3600.0 * 8 + 1800.0 * i, 3600.0 * 8 + 1800.0 * (i + 1))
    for i in range(3)
)


def bench_flowdb_pruned_query(quick: bool) -> dict:
    """Time-windowed analytics over a cold-reopened durable store.

    A day of flows lands in start-time order (how a live capture
    spills), so each sealed segment covers a narrow slice of the day
    and the footer metadata can prove most segments irrelevant to any
    given window.  Fast side: reopen + pruned window queries.  Seed
    side: reload the JSON-lines dump into the row store and answer the
    same windows with per-flow filter loops (the only pre-segment-store
    expression of this workload).  A third, untimed-gate arm runs the
    identical workload on the same store with ``prune=False`` — the
    PR4 scan-everything behaviour — and is reported as
    ``unpruned_ops_per_s`` / ``prune_speedup`` so the metadata's own
    contribution is first-class in the BENCH file.
    """
    from repro.analytics.persistence import dump_flows, load_flows
    from repro.analytics.storage import FlowStore

    n_flows = 120_000  # fixed across quick/full; see bench_flowdb_ingest
    flows, _ipdb, _domains, _cdns = make_flow_workload(n_flows)
    flows.sort(key=lambda flow: flow.start)  # arrival order = time order
    repetitions = 2 if quick else 5
    root = _spill_root() / "pruned_query"
    store_dir = root / "store"
    shutil.rmtree(store_dir, ignore_errors=True)
    root.mkdir(parents=True, exist_ok=True)
    store = FlowStore(store_dir, spill_rows=8192, wal=False)
    store.add_all(flows)
    store.close()
    jsonl = root / "flows.jsonl"
    with open(jsonl, "w", encoding="utf-8") as out:
        dump_flows(flows, out)

    def run_windows(db) -> int:
        acc = 0
        for t0, t1 in _PRUNE_WINDOWS:
            rows = db.rows_in_window(t0, t1)
            acc += len(rows)
            acc += len(db.fqdn_server_counts(rows))
            acc += len(db.server_flow_counts(rows))
            acc += len(db.fqdns_for_rows(rows))
        return acc

    def run_fast():
        return run_windows(FlowStore(store_dir))

    def run_unpruned():
        return run_windows(FlowStore(store_dir, prune=False))

    def run_seed():
        database = ReferenceDatabase()
        with open(jsonl, "r", encoding="utf-8") as handle:
            database.add_all(load_flows(handle))
        acc = 0
        for t0, t1 in _PRUNE_WINDOWS:
            window = [f for f in database if t0 <= f.start < t1]
            acc += len(window)
            acc += len({
                (f.fqdn.lower(), f.fid.server_ip)
                for f in window if f.fqdn
            })
            acc += len({f.fid.server_ip for f in window})
            acc += len({f.fqdn.lower() for f in window if f.fqdn})
        return acc

    # Identical answers out of all three arms before timing anything.
    assert run_fast() == run_unpruned() == run_seed()
    n_ops = 4 * len(_PRUNE_WINDOWS)
    fast = best_of(run_fast, repetitions)
    unpruned = best_of(run_unpruned, repetitions)
    seed = best_of(run_seed, repetitions)
    return add_peaks({
        "description": (
            "Cold reopen + time-windowed analytics (window row "
            "selection, per-window fqdn/server groupings) over a "
            "time-ordered segment store: footer-metadata pruning vs "
            "the seed JSON-lines reload with per-flow filter loops; "
            "unpruned_* times the same store with prune=False (the "
            "pre-metadata scan-everything pass)"
        ),
        "workload": {
            "flows": n_flows, "queries": n_ops,
            "windows": len(_PRUNE_WINDOWS), "spill_rows": 8192,
        },
        "unit": "queries/s",
        "seed_s": seed,
        "fast_s": fast,
        "unpruned_s": unpruned,
        "seed_ops_per_s": n_ops / seed,
        "fast_ops_per_s": n_ops / fast,
        "unpruned_ops_per_s": n_ops / unpruned,
        "speedup": seed / fast,
        "prune_speedup": unpruned / fast,
    }, run_fast, run_seed)


def bench_flowdb_parallel_analytics(quick: bool) -> dict:
    """Whole-store grouped-aggregation sweep: parallel=2 vs serial.

    Both arms cold-reopen the same time-ordered segment store with
    ``cache_segments=False`` (every repetition re-materializes each
    segment inside its kernel — the work the pool overlaps) and run
    the full grouped-aggregation surface.  The baseline is the serial
    pass measured in the same run, so the ratio states "the pool beats
    one thread"; it is machine-bound and gate-exempt on the 1-core CI
    container, exactly like ``fanout_event_pipeline``.
    """
    from repro.analytics.storage import FlowStore

    n_flows = 120_000  # fixed across quick/full; see bench_flowdb_ingest
    flows, _ipdb, _domains, _cdns = make_flow_workload(n_flows)
    flows.sort(key=lambda flow: flow.start)
    repetitions = 2 if quick else 5
    root = _spill_root() / "parallel_analytics"
    store_dir = root / "store"
    shutil.rmtree(store_dir, ignore_errors=True)
    root.mkdir(parents=True, exist_ok=True)
    store = FlowStore(store_dir, spill_rows=8192, wal=False)
    store.add_all(flows)
    store.close()

    def run_sweep(db) -> int:
        acc = len(db.fqdn_server_counts())
        acc += len(db.fqdn_client_counts())
        acc += len(db.fqdn_flow_byte_totals())
        acc += len(db.server_flow_counts())
        acc += len(db.fqdn_bin_pairs(600.0))
        acc += len(db.server_fqdn_bin_triples(600.0))
        acc += len(db.fqdn_first_seen())
        acc += len(db.sld_flow_stats(db.tagged_rows()))
        return acc

    def run_fast():
        parallel_store = FlowStore(
            store_dir, parallel=2, cache_segments=False
        )
        try:
            return run_sweep(parallel_store)
        finally:
            parallel_store.close()

    def run_serial():
        serial_store = FlowStore(store_dir, cache_segments=False)
        return run_sweep(serial_store)

    assert run_fast() == run_serial()  # bit-identical before timing
    n_ops = 8
    fast = best_of(run_fast, repetitions)
    serial = best_of(run_serial, repetitions)
    return add_peaks({
        "description": (
            "Whole-store grouped-aggregation sweep on a cold store "
            "(cache_segments=False, every kernel re-materializes its "
            "segment): per-segment kernels on a 2-thread pool vs the "
            "serial pass measured in the same run.  Machine-bound "
            "ratio — 1-core CI runners time-slice the pool — so the "
            "regression gate skips it"
        ),
        "workload": {
            "flows": n_flows, "aggregations": n_ops,
            "parallel": 2, "spill_rows": 8192,
        },
        "unit": "sweeps/s",
        "seed_s": serial,
        "fast_s": fast,
        "seed_ops_per_s": n_ops / serial,
        "fast_ops_per_s": n_ops / fast,
        "speedup": serial / fast,
        "gate_exempt": True,
    }, run_fast, run_serial)


def bench_flowdb_sharded_query(quick: bool) -> dict:
    """Scatter-gather overhead: a 2-shard coordinator vs one flat store.

    Both arms hold the same 120k flows — the flat store in shard-major
    order, so every answer is bit-identical (asserted before timing) —
    and run the whole grouped-aggregation sweep warm and in-process.
    The ratio prices the coordinator's fan/merge/remap layer on one
    core, where it can only lose; like the other topology benches it
    is machine-bound (shards pay off on real cores / per-shard
    processes) and gate-exempt.
    """
    from repro.analytics.shard import ShardCoordinator
    from repro.analytics.storage import FlowStore

    n_flows = 120_000  # fixed across quick/full; see bench_flowdb_ingest
    flows, _ipdb, _domains, _cdns = make_flow_workload(n_flows)
    flows.sort(key=lambda flow: flow.start)
    repetitions = 2 if quick else 5
    root = _spill_root() / "sharded_query"
    shutil.rmtree(root, ignore_errors=True)
    root.mkdir(parents=True, exist_ok=True)

    sharded = ShardCoordinator(root / "sharded", shards=2,
                               spill_rows=8192, wal=False)
    sharded.add_all(flows)
    sharded.flush()
    flat = FlowStore(root / "flat", spill_rows=8192, wal=False)
    flat.add_all(
        [flow for part in sharded.router.split_flows(flows)
         for flow in part]
    )
    flat.flush()

    def run_sweep(db) -> int:
        acc = len(db.fqdn_server_counts())
        acc += len(db.fqdn_client_counts())
        acc += len(db.fqdn_flow_byte_totals())
        acc += len(db.server_flow_counts())
        acc += len(db.fqdn_bin_pairs(600.0))
        acc += len(db.server_fqdn_bin_triples(600.0))
        acc += len(db.fqdn_first_seen())
        acc += len(db.sld_flow_stats(db.tagged_rows()))
        return acc

    def run_fast():
        return run_sweep(sharded)

    def run_seed():
        return run_sweep(flat)

    assert run_fast() == run_seed()  # bit-identical before timing
    assert sharded.fqdn_server_counts() == flat.fqdn_server_counts()
    n_ops = 8
    fast = best_of(run_fast, repetitions)
    seed = best_of(run_seed, repetitions)
    result = add_peaks({
        "description": (
            "Whole-store grouped-aggregation sweep, warm and "
            "in-process: a 2-shard scatter-gather coordinator vs one "
            "flat FlowStore over the same rows (shard-major order; "
            "bit-identical answers asserted before timing).  On one "
            "core the coordinator can only add fan/merge overhead, so "
            "the ratio is machine-bound and the regression gate skips "
            "it"
        ),
        "workload": {
            "flows": n_flows, "aggregations": n_ops,
            "shards": 2, "backend": "inprocess", "spill_rows": 8192,
        },
        "unit": "sweeps/s",
        "seed_s": seed,
        "fast_s": fast,
        "seed_ops_per_s": n_ops / seed,
        "fast_ops_per_s": n_ops / fast,
        "speedup": seed / fast,
        "gate_exempt": True,
    }, run_fast, run_seed)
    sharded.close()
    flat.close()
    return result


# -- faithful replicas of the seed per-flow analytics loops ----------------
# (the pre-PR 3 bodies of temporal/spatial/content/trackers/tangle,
# operating on the retained seed row store — the apples-to-apples
# baseline for bench_analytics_experiments)


def _seed_servers_per_domain_series(database, domains, bin_seconds):
    from collections import defaultdict

    sets = {domain.lower(): defaultdict(set) for domain in domains}
    for domain in sets:
        for flow in database.query_by_domain(domain):
            sets[domain][int(flow.start // bin_seconds)].add(
                flow.fid.server_ip
            )
    out = {}
    for domain, bins in sets.items():
        if not bins:
            out[domain] = []
            continue
        lo, hi = min(bins), max(bins)
        out[domain] = [
            (i * bin_seconds, len(bins.get(i, set())))
            for i in range(lo, hi + 1)
        ]
    return out


def _seed_fqdns_per_cdn_series(database, ipdb, cdns, bin_seconds):
    from collections import defaultdict

    wanted = {cdn.lower() for cdn in cdns}
    sets = {cdn.lower(): defaultdict(set) for cdn in cdns}
    for flow in database:
        if not flow.fqdn:
            continue
        owner = ipdb.lookup(flow.fid.server_ip)
        if owner is None:
            continue
        owner = owner.lower()
        if owner in wanted:
            sets[owner][int(flow.start // bin_seconds)].add(
                flow.fqdn.lower()
            )
    out = {}
    for cdn, bins in sets.items():
        if not bins:
            out[cdn] = []
            continue
        lo, hi = min(bins), max(bins)
        out[cdn] = [
            (i * bin_seconds, len(bins.get(i, set())))
            for i in range(lo, hi + 1)
        ]
    return out


def _seed_spatial_discover(database, ipdb, target):
    from collections import defaultdict

    from repro.dns.name import second_level_domain

    organization = second_level_domain(target)
    org_short = organization.split(".")[0]
    per_fqdn = defaultdict(set)
    per_cdn_flows = defaultdict(int)
    per_cdn_servers = defaultdict(set)
    server_set = set()
    total = 0
    for flow in database.query_by_domain(organization):
        server = flow.fid.server_ip
        server_set.add(server)
        per_fqdn[flow.fqdn.lower()].add(server)
        owner = ipdb.lookup(server)
        if owner is None:
            owner = "unknown"
        elif owner.lower() == org_short.lower():
            owner = "SELF"
        per_cdn_flows[owner] += 1
        per_cdn_servers[owner].add(server)
        total += 1
    return (
        server_set, dict(per_fqdn), dict(per_cdn_flows),
        dict(per_cdn_servers), total,
    )


def _seed_hosted_domains(database, servers, k):
    from collections import defaultdict

    from repro.dns.name import second_level_domain

    flow_counts = defaultdict(int)
    fqdn_sets = defaultdict(set)
    total = 0
    for flow in database.query_by_servers(servers):
        if not flow.fqdn:
            continue
        domain = second_level_domain(flow.fqdn)
        flow_counts[domain] += 1
        fqdn_sets[domain].add(flow.fqdn.lower())
        total += 1
    ranked = sorted(
        flow_counts.items(), key=lambda item: (-item[1], item[0])
    )
    return [
        (domain, count, count / total if total else 0.0,
         len(fqdn_sets[domain]))
        for domain, count in ranked[:k]
    ]


def _seed_service_breakdown(database, domain, classify):
    tracker_fqdns, general_fqdns = set(), set()
    totals = {True: [0, 0, 0], False: [0, 0, 0]}
    for flow in database.query_by_domain(domain):
        fqdn = flow.fqdn.lower()
        is_tracker = classify(fqdn)
        (tracker_fqdns if is_tracker else general_fqdns).add(fqdn)
        bucket = totals[is_tracker]
        bucket[0] += 1
        bucket[1] += flow.bytes_up
        bucket[2] += flow.bytes_down
    return (
        len(tracker_fqdns), tuple(totals[True]),
        len(general_fqdns), tuple(totals[False]),
    )


def _seed_tangle(database):
    from collections import defaultdict

    fanout = sorted(
        len(database.servers_for_fqdn(fqdn)) for fqdn in database.fqdns()
    )
    per_server = defaultdict(set)
    for flow in database:
        if flow.fqdn:
            per_server[flow.fid.server_ip].add(flow.fqdn.lower())
    fanin = sorted(len(v) for v in per_server.values())
    return fanout, fanin


def bench_analytics_experiments(quick: bool) -> dict:
    """A representative Fig. 3/4/5/11 + Tab. 5/8 + Alg. 2 sweep."""
    from repro.analytics.spatial import SpatialDiscovery
    from repro.analytics.tangle import (
        fanin_distribution,
        fanout_distribution,
    )
    from repro.analytics.temporal import (
        fqdns_per_cdn_series,
        servers_per_domain_series,
    )
    from repro.analytics.trackers import (
        TrackerActivityAnalysis,
        service_breakdown,
    )
    from repro.analytics.content import ContentDiscovery

    n_flows = 80_000  # fixed across quick/full; see bench_flowdb_ingest
    flows, ipdb, domains, cdns = make_flow_workload(n_flows)
    fast_db = FlowDatabase.from_flows(flows)
    seed_db = ReferenceDatabase.from_flows(flows)
    repetitions = 2 if quick else 5
    bin_seconds = 600.0
    spatial_targets = ("zynga.com", "fbcdn.net", "appspot.com")
    amazon_servers = [
        server for server in seed_db.servers()
        if (owner := ipdb.lookup(server)) and owner == "amazon"
    ]

    def run_fast():
        out = []
        out.append(servers_per_domain_series(fast_db, domains, bin_seconds))
        out.append(fqdns_per_cdn_series(fast_db, ipdb, cdns, bin_seconds))
        spatial = SpatialDiscovery(fast_db, ipdb)
        for target in spatial_targets:
            out.append(spatial.discover(target))
        content = ContentDiscovery(fast_db, ipdb)
        out.append(content.hosted_domains(amazon_servers, k=10))
        out.append(service_breakdown(fast_db, "appspot.com"))
        tracker = TrackerActivityAnalysis(bin_seconds=4 * 3600.0)
        tracker.observe_database(fast_db)
        out.append(tracker.timelines())
        out.append(fanout_distribution(fast_db))
        out.append(fanin_distribution(fast_db))
        return out

    def run_seed():
        out = []
        out.append(
            _seed_servers_per_domain_series(seed_db, domains, bin_seconds)
        )
        out.append(
            _seed_fqdns_per_cdn_series(seed_db, ipdb, cdns, bin_seconds)
        )
        for target in spatial_targets:
            out.append(_seed_spatial_discover(seed_db, ipdb, target))
        out.append(_seed_hosted_domains(seed_db, amazon_servers, 10))
        out.append(_seed_service_breakdown(
            seed_db, "appspot.com",
            TrackerActivityAnalysis._default_classifier,
        ))
        tracker = TrackerActivityAnalysis(bin_seconds=4 * 3600.0)
        tracker.observe_all(seed_db)
        out.append(tracker.timelines())
        out.append(_seed_tangle(seed_db))
        return out

    # Same analytics answers out of both stores before timing anything.
    fast_out, seed_out = run_fast(), run_seed()
    assert fast_out[0] == seed_out[0]                        # Fig. 4
    assert fast_out[1] == seed_out[1]                        # Fig. 5
    for fast_report, seed_report in zip(fast_out[2:5], seed_out[2:5]):
        servers, per_fqdn, cdn_flows, cdn_servers, total = seed_report
        assert fast_report.server_set == servers             # Alg. 2
        assert fast_report.per_fqdn == per_fqdn
        assert fast_report.total_flows == total
        assert {
            name: share.flows
            for name, share in fast_report.per_cdn.items()
        } == cdn_flows
    assert [
        (s.domain, s.flows, s.share, s.fqdn_count) for s in fast_out[5]
    ] == seed_out[5]                                         # Tab. 5
    trackers_fast, general_fast = fast_out[6]
    n_tracker, t_totals, n_general, g_totals = seed_out[6]   # Tab. 8
    assert trackers_fast.services == n_tracker
    assert (trackers_fast.flows, trackers_fast.bytes_up,
            trackers_fast.bytes_down) == t_totals
    assert general_fast.services == n_general
    assert {
        t.service: sorted(t.active_bins) for t in fast_out[7]
    } == {
        t.service: sorted(t.active_bins) for t in seed_out[7]
    }                                                        # Fig. 11
    seed_fanout, seed_fanin = seed_out[8]
    assert list(fast_out[8].values) == seed_fanout           # Fig. 3
    assert list(fast_out[9].values) == seed_fanin

    fast = best_of(run_fast, repetitions)
    seed = best_of(run_seed, repetitions)
    n_ops = len(seed_out)
    return add_peaks({
        "description": (
            "Representative experiment sweep (Fig. 3 tangle CDFs, "
            "Fig. 4/5 temporal series, Fig. 11 tracker timelines, "
            "Tab. 5 hosted domains, Tab. 8 service split, Alg. 2 "
            "spatial discovery x3): vectorized analytics on the "
            "columnar store vs the seed per-flow loops on the seed "
            "row store"
        ),
        "workload": {"flows": n_flows, "kernels": n_ops},
        "unit": "kernels/s",
        "seed_s": seed,
        "fast_s": fast,
        "seed_ops_per_s": n_ops / seed,
        "fast_ops_per_s": n_ops / fast,
        "speedup": seed / fast,
    }, run_fast, run_seed)


def bench_flowdb_serve_query(quick: bool) -> dict:
    """The HTTP serving tax: the same query mix through a live
    ``repro-serve`` daemon vs straight ``ServeApp.handle`` calls.

    Both sides run the full serving stack — route dispatch, snapshot
    pin, single-flight, JSON encoding — against the same warm durable
    store; the delta is purely the HTTP transport (socket, request
    parse, response write).  ``speedup`` is in-process/HTTP and sits
    below 1 by construction; the bench is machine-bound (loopback
    latency, thread scheduling on 1-core CI runners), so the
    regression gate skips it.
    """
    import threading
    import urllib.request
    from urllib.parse import parse_qs, urlsplit

    from repro.analytics.storage import FlowStore
    from repro.serve.server import ServeApp

    n_flows = 60_000
    spill_rows = 16_384
    repetitions = 2 if quick else 5
    flows, _ipdb, domains, _cdns = make_flow_workload(n_flows)
    directory = _spill_root() / "serve-query"
    store = FlowStore(directory, spill_rows=spill_rows, wal=False)
    try:
        store.add_all(flows)
        store.flush()
        fqdn_sample = store.fqdns()[::40]
        requests = (
            ["/query/len", "/query/tagged-count", "/query/time-span",
             "/query/count-by-protocol", "/query/fqdn-server-counts",
             "/query/server-flow-counts"]
            + [f"/query/rows-in-window?t0={t0}&t1={t0 + 3600}"
               for t0 in range(0, 86400, 14400)]
            + [f"/query/servers-for-fqdn?fqdn={fqdn}"
               for fqdn in fqdn_sample]
            + [f"/query/rows-for-domain?sld={sld}" for sld in domains]
        )
        n_ops = len(requests)
        app = ServeApp(store)
        httpd = app.make_server("127.0.0.1", 0)
        host, port = httpd.server_address[:2]
        listener = threading.Thread(
            target=httpd.serve_forever, daemon=True
        )
        listener.start()
        base = f"http://{host}:{port}"

        def run_http():
            acc = 0
            for path in requests:
                with urllib.request.urlopen(base + path) as rsp:
                    acc += len(rsp.read())
            return acc

        def run_in_process():
            acc = 0
            for path in requests:
                split = urlsplit(path)
                status, _ctype, payload, _headers = app.handle(
                    "GET", split.path,
                    parse_qs(split.query, keep_blank_values=True),
                )
                assert status == 200, payload
                acc += len(payload)
            return acc

        # Identical bytes both ways before timing.
        assert run_http() == run_in_process()
        http_s = best_of(run_http, repetitions)
        in_process_s = best_of(run_in_process, repetitions)
        httpd.shutdown()
        httpd.server_close()
        coalesced = sum(
            int(value)
            for _suffix, _labels, value in app.m_coalesced.samples()
        )
        return {
            "description": (
                "Mixed query workload through a live repro-serve "
                "daemon over loopback HTTP vs the same ServeApp "
                "handled in-process (identical dispatch, snapshot "
                "pinning, JSON encoding) on a warm durable store; "
                "speedup = in-process/HTTP, i.e. the transport tax. "
                "Loopback- and scheduler-bound, so the regression "
                "gate skips it"
            ),
            "workload": {
                "flows": n_flows,
                "spill_rows": spill_rows,
                "queries": n_ops,
                "coalesced_during_bench": coalesced,
            },
            "unit": "queries/s",
            "seed_s": in_process_s,
            "fast_s": http_s,
            "seed_ops_per_s": n_ops / in_process_s,
            "fast_ops_per_s": n_ops / http_s,
            "speedup": in_process_s / http_s,
            "gate_exempt": True,
        }
    finally:
        store.close()


def bench_flowdb_serve_overload(quick: bool) -> dict:
    """Goodput and shed latency under 4x admission oversubscription.

    A ServeApp with a deliberately tight query gate (2 in flight, 2
    queued) is hammered in-process by 4x as many workers as it has
    slots, each issuing non-coalescable window queries.  Measured:

    * **goodput** — 200-answered queries per second under overload,
      vs the same request stream issued by a single unloaded worker
      (``speedup`` = overloaded goodput / unloaded goodput);
    * **shed latency** — how quickly an overloaded daemon says no:
      the per-request wall time of every 503, reported as p50/max in
      the workload block.  Shedding exists to keep this number small;
      a shed that costs as much as an answer defeats admission
      control.

    Scheduler- and core-count-bound (worker threads outnumber CPUs on
    CI runners), so the regression gate skips it; the numbers are for
    the trajectory table, not the ratchet.
    """
    import threading

    from repro.analytics.storage import FlowStore
    from repro.serve.admission import (
        AdmissionController, RouteClassLimits,
    )
    from repro.serve.server import ServeApp

    n_flows = 30_000
    spill_rows = 16_384
    per_worker = 50 if quick else 150
    max_inflight, max_queue = 2, 2
    workers = 4 * max_inflight  # the 4x oversubscription
    repetitions = 2 if quick else 3
    flows, _ipdb, _domains, _cdns = make_flow_workload(n_flows)
    directory = _spill_root() / "serve-overload"
    store = FlowStore(directory, spill_rows=spill_rows, wal=False)
    try:
        store.add_all(flows)
        store.flush()
        app = ServeApp(store, admission=AdmissionController({
            "query": RouteClassLimits(max_inflight, max_queue, 0.05),
            "ingest": RouteClassLimits(1, 0, 0.0),
        }))

        def params_for(index: int) -> dict:
            # Unique window per request: no two concurrent requests
            # share a single-flight key, so every admitted query does
            # real kernel work instead of piggybacking.
            t0 = (index * 37) % 86_400
            return {"t0": [str(t0)], "t1": [str(t0 + 1800)]}

        def run_unloaded() -> int:
            answered = 0
            for index in range(per_worker):
                status, _ctype, payload, _headers = app.handle(
                    "GET", "/query/rows-in-window", params_for(index)
                )
                assert status == 200, payload
                answered += 1
            return answered

        def run_overloaded() -> tuple[float, int, int, list[float]]:
            answered = [0] * workers
            shed_latency: list[list[float]] = [
                [] for _ in range(workers)
            ]
            errors: list[str] = []

            def worker(rank: int) -> None:
                for i in range(per_worker):
                    begin = time.perf_counter()
                    status, _ctype, payload, _headers = app.handle(
                        "GET", "/query/rows-in-window",
                        params_for(rank * per_worker + i),
                    )
                    if status == 200:
                        answered[rank] += 1
                    elif status == 503:
                        shed_latency[rank].append(
                            time.perf_counter() - begin
                        )
                    else:
                        errors.append(f"{status}: {payload!r}")

            threads = [
                threading.Thread(target=worker, args=(rank,))
                for rank in range(workers)
            ]
            begin = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            wall = time.perf_counter() - begin
            assert not errors, errors[:5]
            return (wall, sum(answered),
                    sum(len(lat) for lat in shed_latency),
                    sorted(lat for per in shed_latency
                           for lat in per))

        run_unloaded()  # warm the store's caches before timing
        unloaded_s = best_of(run_unloaded, repetitions)
        best = min(
            (run_overloaded() for _ in range(repetitions)),
            key=lambda result: result[0] / max(result[1], 1),
        )
        overloaded_s, answered, shed, latencies = best
        unloaded_rate = per_worker / unloaded_s
        overloaded_rate = answered / overloaded_s
        return {
            "description": (
                "Non-coalescable window queries from 4x more worker "
                "threads than the admission gate has slots (2 in "
                "flight + 2 queued); goodput = 200-answered queries/s "
                "under overload vs one unloaded worker, with the "
                "latency of every 503 shed recorded. Scheduler-bound, "
                "so the regression gate skips it"
            ),
            "workload": {
                "flows": n_flows,
                "spill_rows": spill_rows,
                "workers": workers,
                "requests_per_worker": per_worker,
                "max_inflight": max_inflight,
                "max_queue": max_queue,
                "answered": answered,
                "shed": shed,
                "shed_latency_p50_ms": (
                    latencies[len(latencies) // 2] * 1e3
                    if latencies else 0.0
                ),
                "shed_latency_max_ms": (
                    latencies[-1] * 1e3 if latencies else 0.0
                ),
            },
            "unit": "queries/s",
            "seed_s": unloaded_s,
            "fast_s": overloaded_s,
            "seed_ops_per_s": unloaded_rate,
            "fast_ops_per_s": overloaded_rate,
            "speedup": overloaded_rate / unloaded_rate,
            "gate_exempt": True,
        }
    finally:
        store.close()


BENCHES = {
    "resolver_insert": bench_resolver_insert,
    "resolver_insert_churn": bench_resolver_insert_churn,
    "resolver_lookup": bench_resolver_lookup,
    "event_pipeline": bench_event_pipeline,
    "sharded_event_pipeline": bench_sharded_event_pipeline,
    "fanout_event_pipeline": bench_fanout_event_pipeline,
    "dns_decode": bench_dns_decode,
    "flowdb_ingest": bench_flowdb_ingest,
    "flowdb_query": bench_flowdb_query,
    "flowdb_spill_ingest": bench_flowdb_spill_ingest,
    "flowdb_wal_ingest": bench_flowdb_wal_ingest,
    "flowdb_reopen_query": bench_flowdb_reopen_query,
    "flowdb_pruned_query": bench_flowdb_pruned_query,
    "flowdb_parallel_analytics": bench_flowdb_parallel_analytics,
    "flowdb_sharded_query": bench_flowdb_sharded_query,
    "flowdb_serve_query": bench_flowdb_serve_query,
    "flowdb_serve_overload": bench_flowdb_serve_overload,
    "analytics_experiments": bench_analytics_experiments,
}


def next_bench_path() -> Path:
    index = 1
    while (REPO_ROOT / f"BENCH_{index}.json").exists():
        index += 1
    return REPO_ROOT / f"BENCH_{index}.json"


def latest_bench_path(root: Path = REPO_ROOT) -> Path | None:
    """Highest-numbered committed ``BENCH_<n>.json``, or None.

    ``--compare latest`` resolves through this so CI always ratchets
    against the newest committed baseline without editing the workflow
    on every perf PR.  The directory is globbed rather than counted up
    from 1, so a numbering gap (e.g. only ``BENCH_5.json`` present)
    still resolves instead of silently reporting no baseline.
    """
    best: Path | None = None
    best_index = 0
    for path in root.glob("BENCH_*.json"):
        match = re.fullmatch(r"BENCH_(\d+)\.json", path.name)
        if match and int(match.group(1)) > best_index:
            best_index = int(match.group(1))
            best = path
    return best


def compare_benches(
    current: dict, previous: dict, tolerance: float
) -> tuple[list[dict], list[dict], list[str]]:
    """Gate the current run against a previous ``BENCH_<n>.json``.

    Benches present in both results are compared on ``speedup`` — the
    seed-relative ratio measured on one machine in one process, which
    transfers across hardware where raw ops/sec does not.  Returns
    ``(regressions, compared, skipped)``: a bench regresses when its
    current speedup falls below ``tolerance x previous``; previous
    benches missing from the current run (coverage lost), current
    benches absent from the baseline (no coverage yet) and benches
    without a speedup on both sides are listed in ``skipped``.
    """
    regressions = []
    compared = []
    skipped = []
    current_benches = current.get("benches", {})
    previous_benches = previous.get("benches", {})
    for name in sorted(set(previous_benches) | set(current_benches)):
        if name not in current_benches:
            # A bench that existed before but was not run now has lost
            # its regression coverage — say so instead of going quiet.
            skipped.append(f"{name} (not in current run)")
            continue
        if name not in previous_benches:
            # A bench the baseline has never seen cannot regress — but
            # a silent pass would look like coverage it does not have.
            skipped.append(f"{name} (new bench, no baseline)")
            continue
        cur = current_benches[name].get("speedup")
        prev = previous_benches[name].get("speedup")
        if cur is None or prev is None:
            skipped.append(f"{name} (no seed-relative speedup)")
            continue
        if current_benches[name].get("gate_exempt") or (
            previous_benches[name].get("gate_exempt")
        ):
            skipped.append(
                f"{name} (gate-exempt: machine-bound ratio, "
                f"{cur:.2f}x vs {prev:.2f}x)"
            )
            continue
        entry = {
            "bench": name,
            "previous_speedup": prev,
            "current_speedup": cur,
            "floor": tolerance * prev,
            "ratio": cur / prev if prev else float("inf"),
        }
        compared.append(entry)
        if cur < tolerance * prev:
            regressions.append(entry)
    return regressions, compared, skipped


def run_compare_gate(
    payload: dict, previous_path: Path, tolerance: float
) -> int:
    """Print the comparison table; return a process exit code."""
    try:
        previous = json.loads(previous_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"[compare] cannot read {previous_path}: {exc}")
        return 1
    regressions, compared, skipped = compare_benches(
        payload, previous, tolerance
    )
    label = previous.get("bench", previous_path.name)
    print(f"[compare] vs {label} (tolerance {tolerance:.2f}):")
    # A failing gate must read as a diff table, not a bare exit 1: one
    # aligned row per bench with both seed-relative speedups, the
    # floor, and the relative move.
    width = max(
        [len(entry["bench"]) for entry in compared] + [len("bench")]
    )
    print(
        f"[compare]   {'bench':<{width}}  {'previous':>9} {'current':>9} "
        f"{'floor':>9} {'delta':>8}  verdict"
    )
    for entry in compared:
        verdict = "REGRESSED" if entry in regressions else "ok"
        delta = (entry["ratio"] - 1.0) * 100.0
        print(
            f"[compare]   {entry['bench']:<{width}}  "
            f"{entry['previous_speedup']:>8.2f}x {entry['current_speedup']:>8.2f}x "
            f"{entry['floor']:>8.2f}x {delta:>+7.1f}%  {verdict}"
        )
    for name in skipped:
        print(f"[compare]   skipped: {name}")
    if regressions:
        names = ", ".join(entry["bench"] for entry in regressions)
        print(f"[compare] FAIL: {names} below tolerance")
        return 1
    print("[compare] all shared benches within tolerance")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small workloads / few repetitions (CI smoke)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="output path (default: next free BENCH_<n>.json in repo root)",
    )
    parser.add_argument(
        "--only", choices=sorted(BENCHES), action="append",
        help="run a subset of benches (repeatable)",
    )
    parser.add_argument(
        "--compare", type=str, default=None, metavar="PREV",
        help="after running, gate seed-relative speedups against this "
             "previous BENCH_<n>.json and exit non-zero on regression; "
             "'latest' resolves to the highest-numbered committed "
             "BENCH file",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.85,
        help="regression floor as a fraction of the previous speedup "
             "(with --compare; default 0.85)",
    )
    parser.add_argument(
        "--spill-dir", type=Path, default=None, metavar="DIR",
        help="directory for the flow-store persistence benches' "
             "segment spills and JSON-lines dumps (point it at a "
             "tmpfs, e.g. /dev/shm, so CI measures the format rather "
             "than the runner's disk; default: a fresh temp dir). "
             "The last run's artifacts are left in place for "
             "inspection",
    )
    args = parser.parse_args(argv)
    if args.spill_dir is not None:
        global _SPILL_ROOT
        _SPILL_ROOT = args.spill_dir
    if not 0.0 < args.tolerance <= 1.0:
        parser.error("--tolerance must be in (0, 1]")
    compare_path: Path | None = None
    if args.compare is not None:
        # Resolve before running (and before --out writes anything), so
        # a full run that adds BENCH_<n+1>.json still compares against
        # the previous baseline.
        if args.compare == "latest":
            compare_path = latest_bench_path()
            if compare_path is None:
                parser.error("--compare latest: no BENCH_<n>.json found")
        else:
            compare_path = Path(args.compare)

    selected = args.only or list(BENCHES)
    results = {}
    for name in selected:
        print(f"[bench] {name} ...", flush=True)
        results[name] = BENCHES[name](args.quick)
        line = results[name]
        if "speedup" in line:
            print(
                f"[bench] {name}: {line['fast_ops_per_s']:,.0f} "
                f"{line['unit']} ({line['speedup']:.2f}x vs seed)",
                flush=True,
            )
        else:
            print(
                f"[bench] {name}: {line['fast_ops_per_s']:,.0f} "
                f"{line['unit']}",
                flush=True,
            )

    out_path = args.out or next_bench_path()
    payload = {
        "bench": out_path.stem,
        "created_utc": datetime.now(timezone.utc).isoformat(),
        "python": sys.version.split()[0],
        "platform": sys.platform,
        "quick": args.quick,
        "benches": results,
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[bench] wrote {out_path}")
    if compare_path is not None:
        return run_compare_gate(payload, compare_path, args.tolerance)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
