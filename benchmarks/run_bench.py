#!/usr/bin/env python
"""Perf-trajectory harness: measure the hot paths, dump ``BENCH_N.json``.

Every optimisation PR runs this script and commits the resulting
``BENCH_<n>.json`` so the events/sec, responses/sec and decodes/sec
trajectory is first-class repo history.  Each bench measures the current
implementation against the retained seed implementation
(:mod:`repro.sniffer.resolver_reference` plus a faithful replica of the
seed event loop), on the same machine, in the same process — the
``speedup`` fields are therefore apples-to-apples.

Benches
-------
* ``resolver_insert``        — stand up a Sec. 6-sized resolver
  (L=200k, the operating point of ``experiments/dimensioning.py``) and
  ingest a response burst; responses/sec.
* ``resolver_insert_churn``  — small Clist (L=5k) with constant
  wraparound; stresses eviction, responses/sec.
* ``resolver_lookup``        — flow-side lookups against a warm
  resolver; lookups/sec.
* ``event_pipeline``         — the full sniffer event path over the
  EU1-FTTH trace (resolver + tagger); events/sec.
* ``sharded_event_pipeline`` — same trace through a 4-shard resolver
  (no seed counterpart; recorded for the trajectory).
* ``dns_decode``             — wire-format A-response decoding: the
  zero-copy fast path vs the full message decoder; decodes/sec.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py [--quick] [--out FILE]

``--quick`` shrinks workloads and repetitions for CI smoke runs (the
speedup fields remain meaningful but noisier).  Without ``--out`` the
result lands in the repo root as the next free ``BENCH_<n>.json``.
"""

from __future__ import annotations

import argparse
import gc
import json
import random
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.dns.message import DnsMessage                      # noqa: E402
from repro.dns.records import a_record                        # noqa: E402
from repro.dns.wire import (                                  # noqa: E402
    decode_message,
    decode_response_addresses,
    encode_message,
)
from repro.net.flow import DnsObservation, FlowRecord         # noqa: E402
from repro.sniffer.pipeline import SnifferPipeline            # noqa: E402
from repro.sniffer.resolver import DnsResolver                # noqa: E402
from repro.sniffer.resolver_reference import (                # noqa: E402
    DnsResolver as ReferenceResolver,
)
from repro.sniffer.tagger import FlowTagger                   # noqa: E402


def best_of(fn, repetitions: int) -> float:
    """Best wall-clock time of ``repetitions`` runs of ``fn()``.

    Each repetition starts from a freshly collected heap, but the
    collector stays *enabled* during the timed region: GC pressure from
    per-event allocation is precisely one of the costs the flat resolver
    removes, so turning it off would flatter the seed implementation.
    """
    best = float("inf")
    for _ in range(repetitions):
        gc.collect()
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best


def make_insert_workload(n_ops: int, n_clients: int, seed: int = 2):
    rng = random.Random(seed)
    return [
        (
            rng.randrange(1, n_clients),
            f"host{rng.randrange(4000)}.example{rng.randrange(80)}.com",
            [rng.randrange(1, 1 << 32) for _ in range(rng.randint(1, 4))],
        )
        for _ in range(n_ops)
    ]


class SeedPipeline:
    """Faithful replica of the seed sniffer event loop.

    Per-event ``isinstance`` dispatch, the ``feed_observation`` wrapper,
    a ``tag()`` method call per flow, and the reference resolver — the
    exact per-event cost profile of the seed ``SnifferPipeline`` before
    the fused loop, kept here so ``event_pipeline.speedup`` always
    compares against the seed's architecture rather than a strawman.
    """

    def __init__(self, clist_size: int, warmup: float = 300.0):
        self.resolver = ReferenceResolver(clist_size=clist_size)
        self.tagger = FlowTagger(self.resolver, warmup=warmup)
        self.tagged_flows: list[FlowRecord] = []
        self.empty_answers = 0

    def process_trace(self, trace):
        for event in trace.iter_events():
            if isinstance(event, DnsObservation):
                if not event.answers:
                    self.empty_answers += 1
                    continue
                self.resolver.insert(
                    client_ip=event.client_ip,
                    fqdn=event.fqdn,
                    answers=event.answers,
                    timestamp=event.timestamp,
                )
            elif isinstance(event, FlowRecord):
                self.tagger.tag(event)
                self.tagged_flows.append(event)
            else:
                raise TypeError(
                    f"unsupported event type {type(event).__name__}"
                )
        return self.tagged_flows


def bench_resolver_insert(quick: bool) -> dict:
    clist_size = 200_000
    n_ops = 10_000 if quick else 50_000
    workload = make_insert_workload(n_ops, n_clients=2000)
    repetitions = 1 if quick else 5

    def run_fast():
        resolver = DnsResolver(clist_size=clist_size)
        insert = resolver.insert
        for client, fqdn, answers in workload:
            insert(client, fqdn, answers)
        return resolver

    def run_seed():
        resolver = ReferenceResolver(clist_size=clist_size)
        for client, fqdn, answers in workload:
            resolver.insert(client, fqdn, answers)
        return resolver

    assert run_fast().stats == run_seed().stats  # same observable work
    fast = best_of(run_fast, repetitions)
    seed = best_of(run_seed, repetitions)
    return {
        "description": (
            "Stand up a Sec.6-sized resolver (L=200k) and ingest a "
            "response burst (construction + inserts)"
        ),
        "workload": {"clist_size": clist_size, "responses": n_ops},
        "unit": "responses/s",
        "seed_s": seed,
        "fast_s": fast,
        "seed_ops_per_s": n_ops / seed,
        "fast_ops_per_s": n_ops / fast,
        "speedup": seed / fast,
    }


def bench_resolver_insert_churn(quick: bool) -> dict:
    clist_size = 5_000
    n_ops = 5_000 if quick else 10_000
    workload = make_insert_workload(n_ops, n_clients=500, seed=1)
    repetitions = 2 if quick else 7

    def run_fast():
        resolver = DnsResolver(clist_size=clist_size)
        insert = resolver.insert
        for client, fqdn, answers in workload:
            insert(client, fqdn, answers)

    def run_seed():
        resolver = ReferenceResolver(clist_size=clist_size)
        for client, fqdn, answers in workload:
            resolver.insert(client, fqdn, answers)

    fast = best_of(run_fast, repetitions)
    seed = best_of(run_seed, repetitions)
    return {
        "description": (
            "Small Clist (L=5k) with constant wraparound: the "
            "eviction-bound regime"
        ),
        "workload": {"clist_size": clist_size, "responses": n_ops},
        "unit": "responses/s",
        "seed_s": seed,
        "fast_s": fast,
        "seed_ops_per_s": n_ops / seed,
        "fast_ops_per_s": n_ops / fast,
        "speedup": seed / fast,
    }


def bench_resolver_lookup(quick: bool) -> dict:
    n_ops = 20_000 if quick else 100_000
    workload = make_insert_workload(10_000, n_clients=500, seed=1)
    repetitions = 2 if quick else 7
    fast_resolver = DnsResolver(clist_size=50_000)
    seed_resolver = ReferenceResolver(clist_size=50_000)
    for client, fqdn, answers in workload:
        fast_resolver.insert(client, fqdn, answers)
        seed_resolver.insert(client, fqdn, answers)
    rng = random.Random(5)
    keys = []
    for _ in range(n_ops):
        client, _fqdn, answers = workload[rng.randrange(len(workload))]
        # ~half the probes hit, half probe unknown servers
        server = answers[0] if rng.random() < 0.5 else rng.randrange(1 << 32)
        keys.append((client, server))

    def run(resolver):
        lookup = resolver.lookup
        def body():
            hits = 0
            for client, server in keys:
                if lookup(client, server) is not None:
                    hits += 1
            return hits
        return body

    fast = best_of(run(fast_resolver), repetitions)
    seed = best_of(run(seed_resolver), repetitions)
    return {
        "description": (
            "Standalone lookup calls against a warm resolver.  The flat "
            "64-bit key costs a big-int build per probe where the seed "
            "walked two small dicts, so call-for-call this sits near "
            "parity; the pipeline inlines the probe and wins overall "
            "(see event_pipeline)"
        ),
        "workload": {"lookups": n_ops, "clist_size": 50_000},
        "unit": "lookups/s",
        "seed_s": seed,
        "fast_s": fast,
        "seed_ops_per_s": n_ops / seed,
        "fast_ops_per_s": n_ops / fast,
        "speedup": seed / fast,
    }


def bench_event_pipeline(quick: bool) -> dict:
    from repro.experiments.datasets import get_trace

    trace = get_trace("EU1-FTTH")
    n_events = len(trace.events)
    repetitions = 1 if quick else 5

    def run_fast():
        pipeline = SnifferPipeline(clist_size=50_000)
        pipeline.process_trace(trace)
        return pipeline

    def run_seed():
        pipeline = SeedPipeline(clist_size=50_000)
        pipeline.process_trace(trace)
        return pipeline

    # Same labels out of both loops before timing anything.
    fast_flows = run_fast().tagged_flows
    seed_flows = run_seed().tagged_flows
    assert len(fast_flows) == len(seed_flows)
    assert all(
        ours.fqdn == theirs.fqdn
        for ours, theirs in zip(fast_flows, seed_flows)
    )
    fast = best_of(run_fast, repetitions)
    seed = best_of(run_seed, repetitions)
    return {
        "description": (
            "Full sniffer event path (resolver + tagger) over the "
            "EU1-FTTH trace"
        ),
        "workload": {"trace": "EU1-FTTH", "events": n_events},
        "unit": "events/s",
        "seed_s": seed,
        "fast_s": fast,
        "seed_ops_per_s": n_events / seed,
        "fast_ops_per_s": n_events / fast,
        "speedup": seed / fast,
    }


def bench_sharded_event_pipeline(quick: bool) -> dict:
    from repro.experiments.datasets import get_trace

    trace = get_trace("EU1-FTTH")
    n_events = len(trace.events)
    repetitions = 1 if quick else 5

    def run():
        pipeline = SnifferPipeline(clist_size=50_000, shards=4)
        pipeline.process_trace(trace)

    elapsed = best_of(run, repetitions)
    return {
        "description": (
            "Event path through the 4-shard resolver (Sec. 3.1.1 load "
            "balancing); no seed counterpart"
        ),
        "workload": {"trace": "EU1-FTTH", "events": n_events, "shards": 4},
        "unit": "events/s",
        "fast_s": elapsed,
        "fast_ops_per_s": n_events / elapsed,
    }


def bench_dns_decode(quick: bool) -> dict:
    n_ops = 5_000 if quick else 20_000
    repetitions = 2 if quick else 7
    query = DnsMessage.query(1, "photos-a.fbcdn.net")
    response = DnsMessage.response_to(
        query,
        [
            a_record("photos-a.fbcdn.net", 0x02100000 + i, ttl=20)
            for i in range(4)
        ],
    )
    wire = encode_message(response)
    message = decode_message(wire)
    assert decode_response_addresses(wire) == (
        message.question_name,
        message.a_addresses(),
        message.min_answer_ttl(),
    )

    def run_fast():
        for _ in range(n_ops):
            decode_response_addresses(wire)

    def run_seed():
        for _ in range(n_ops):
            decode_message(wire)

    fast = best_of(run_fast, repetitions)
    seed = best_of(run_seed, repetitions)
    return {
        "description": (
            "Decode a 4-answer A response: zero-copy fast path vs full "
            "message decoder"
        ),
        "workload": {"responses": n_ops, "answers_per_response": 4},
        "unit": "decodes/s",
        "seed_s": seed,
        "fast_s": fast,
        "seed_ops_per_s": n_ops / seed,
        "fast_ops_per_s": n_ops / fast,
        "speedup": seed / fast,
    }


BENCHES = {
    "resolver_insert": bench_resolver_insert,
    "resolver_insert_churn": bench_resolver_insert_churn,
    "resolver_lookup": bench_resolver_lookup,
    "event_pipeline": bench_event_pipeline,
    "sharded_event_pipeline": bench_sharded_event_pipeline,
    "dns_decode": bench_dns_decode,
}


def next_bench_path() -> Path:
    index = 1
    while (REPO_ROOT / f"BENCH_{index}.json").exists():
        index += 1
    return REPO_ROOT / f"BENCH_{index}.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small workloads / few repetitions (CI smoke)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="output path (default: next free BENCH_<n>.json in repo root)",
    )
    parser.add_argument(
        "--only", choices=sorted(BENCHES), action="append",
        help="run a subset of benches (repeatable)",
    )
    args = parser.parse_args(argv)

    selected = args.only or list(BENCHES)
    results = {}
    for name in selected:
        print(f"[bench] {name} ...", flush=True)
        results[name] = BENCHES[name](args.quick)
        line = results[name]
        if "speedup" in line:
            print(
                f"[bench] {name}: {line['fast_ops_per_s']:,.0f} "
                f"{line['unit']} ({line['speedup']:.2f}x vs seed)",
                flush=True,
            )
        else:
            print(
                f"[bench] {name}: {line['fast_ops_per_s']:,.0f} "
                f"{line['unit']}",
                flush=True,
            )

    out_path = args.out or next_bench_path()
    payload = {
        "bench": out_path.stem,
        "created_utc": datetime.now(timezone.utc).isoformat(),
        "python": sys.version.split()[0],
        "platform": sys.platform,
        "quick": args.quick,
        "benches": results,
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[bench] wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
