"""Micro-benchmarks of DN-Hunter's real-time path.

The paper's engineering constraint (Sec. 3.1.1) is that the resolver
must keep up with the wire: inserts per DNS response, lookups per flow.
These benches measure raw structure throughput plus the end-to-end
event-path and wire-codec costs.
"""

import random

import pytest

from repro.dns.message import DnsMessage
from repro.dns.records import a_record
from repro.dns.wire import (
    decode_message,
    decode_response_addresses,
    encode_message,
)
from repro.experiments.datasets import get_trace
from repro.sniffer.pipeline import SnifferPipeline
from repro.sniffer.resolver import DnsResolver
from repro.sniffer.resolver_reference import DnsResolver as ReferenceResolver

N_OPS = 10_000
# The Sec. 6 operating point used by experiments/dimensioning.py: the
# resolver is sized to cover ~1h of responses, so the steady state is
# allocation-bound, not eviction-bound.
DIM_CLIST = 200_000
DIM_OPS = 50_000


@pytest.fixture(scope="module")
def insert_workload():
    rng = random.Random(1)
    return [
        (
            rng.randrange(1, 500),                      # client
            f"host{rng.randrange(2000)}.example{rng.randrange(50)}.com",
            [rng.randrange(1, 1 << 32) for _ in range(rng.randint(1, 4))],
        )
        for _ in range(N_OPS)
    ]


@pytest.fixture(scope="module")
def dimensioning_workload():
    rng = random.Random(2)
    return [
        (
            rng.randrange(1, 2000),
            f"host{rng.randrange(4000)}.example{rng.randrange(80)}.com",
            [rng.randrange(1, 1 << 32) for _ in range(rng.randint(1, 4))],
        )
        for _ in range(DIM_OPS)
    ]


def test_bench_resolver_insert(benchmark, insert_workload):
    def insert_all():
        resolver = DnsResolver(clist_size=5000)
        for client, fqdn, answers in insert_workload:
            resolver.insert(client, fqdn, answers)
        return resolver

    resolver = benchmark(insert_all)
    assert resolver.stats.responses == N_OPS


def test_bench_resolver_insert_dimensioning(benchmark, dimensioning_workload):
    """Insert throughput at the Sec. 6 sizing (stand up L=200k, ingest a
    burst) — the regime where per-slot object allocation used to
    dominate."""

    def insert_all():
        resolver = DnsResolver(clist_size=DIM_CLIST)
        for client, fqdn, answers in dimensioning_workload:
            resolver.insert(client, fqdn, answers)
        return resolver

    resolver = benchmark(insert_all)
    assert resolver.stats.responses == DIM_OPS


def test_bench_reference_resolver_insert(benchmark, insert_workload):
    """The seed implementation, kept measurable so the BENCH_*.json
    trajectory always has a same-machine baseline."""

    def insert_all():
        resolver = ReferenceResolver(clist_size=5000)
        for client, fqdn, answers in insert_workload:
            resolver.insert(client, fqdn, answers)
        return resolver

    resolver = benchmark(insert_all)
    assert resolver.stats.responses == N_OPS


def test_bench_resolver_lookup(benchmark, insert_workload):
    resolver = DnsResolver(clist_size=50_000)
    for client, fqdn, answers in insert_workload:
        resolver.insert(client, fqdn, answers)
    keys = [
        (client, answers[0]) for client, _fqdn, answers in insert_workload
    ]

    def lookup_all():
        hits = 0
        for client, server in keys:
            if resolver.peek(client, server) is not None:
                hits += 1
        return hits

    hits = benchmark(lookup_all)
    assert hits > 0


def test_bench_event_pipeline(benchmark, warm_datasets):
    """Full sniffer event path over the FTTH trace (resolver+tagger)."""
    trace = get_trace("EU1-FTTH")

    def process():
        pipeline = SnifferPipeline(clist_size=50_000)
        pipeline.process_trace(trace)
        return len(pipeline.tagged_flows)

    count = benchmark(process)
    assert count > 1000


def test_bench_sharded_resolver_insert(benchmark, insert_workload):
    """Sec. 3.1.1 load balancing: the odd/even split adds negligible
    routing cost per insert."""
    from repro.sniffer.sharding import ShardedResolver

    def insert_all():
        resolver = ShardedResolver(shards=2, clist_size=10_000)
        for client, fqdn, answers in insert_workload:
            resolver.insert(client, fqdn, answers)
        return resolver

    resolver = benchmark(insert_all)
    assert resolver.stats.responses == N_OPS


def test_bench_dns_wire_encode(benchmark):
    query = DnsMessage.query(1, "photos-a.fbcdn.net")
    response = DnsMessage.response_to(
        query,
        [a_record("photos-a.fbcdn.net", 0x02100000 + i, ttl=20)
         for i in range(4)],
    )
    wire = benchmark(encode_message, response)
    assert len(wire) > 12


def test_bench_dns_wire_decode(benchmark):
    query = DnsMessage.query(1, "photos-a.fbcdn.net")
    response = DnsMessage.response_to(
        query,
        [a_record("photos-a.fbcdn.net", 0x02100000 + i, ttl=20)
         for i in range(4)],
    )
    wire = encode_message(response)
    message = benchmark(decode_message, wire)
    assert len(message.answers) == 4


def test_bench_dns_fast_decode(benchmark):
    """The zero-copy response fast path on the same message shape the
    full-decoder bench uses."""
    query = DnsMessage.query(1, "photos-a.fbcdn.net")
    response = DnsMessage.response_to(
        query,
        [a_record("photos-a.fbcdn.net", 0x02100000 + i, ttl=20)
         for i in range(4)],
    )
    wire = encode_message(response)
    fqdn, addresses, ttl = benchmark(decode_response_addresses, wire)
    assert fqdn == "photos-a.fbcdn.net"
    assert len(addresses) == 4
    assert ttl == 20


def test_bench_sharded_event_pipeline(benchmark, warm_datasets):
    """The multi-shard event path (Sec. 3.1.1 load balancing) over the
    same trace as the single-resolver pipeline bench."""
    trace = get_trace("EU1-FTTH")

    def process():
        pipeline = SnifferPipeline(clist_size=50_000, shards=4)
        pipeline.process_trace(trace)
        return len(pipeline.tagged_flows)

    count = benchmark(process)
    assert count > 1000
