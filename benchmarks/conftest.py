"""Shared benchmark fixtures.

Dataset generation is expensive (seconds per trace), so a session-scoped
fixture warms the per-process cache once; the benchmarks then measure
the analytics work itself — which is what "regenerate the table" costs
once the labeled flow database exists.
"""

import pytest

from repro.experiments.datasets import (
    STANDARD_TRACES,
    get_delays,
    get_live,
    get_result,
)

LIVE_DAYS = 6
LIVE_SEED = 11


@pytest.fixture(scope="session")
def warm_datasets():
    """Build every standard trace + the live stream once per session."""
    for name in STANDARD_TRACES:
        get_result(name)
        get_delays(name)
    get_result("EU1-ADSL2-24H")
    get_live(days=LIVE_DAYS, seed=LIVE_SEED)
    return True
