"""Authoritative zones and a recursive resolver simulation.

The synthetic internet publishes its FQDN→address plan through these
zones.  Forward zones serve A records (with CDN-style answer lists and
TTL policy); reverse zones serve the PTR records that the Tab. 3
reverse-lookup baseline queries.  A tiny recursive server model fronts
the zones so client queries produce the response messages the sniffer
observes on the wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.dns.message import DnsMessage, ResponseCode
from repro.dns.name import DomainName, reverse_pointer_name
from repro.dns.records import (
    ResourceRecord,
    RRType,
    a_record,
    ptr_record,
)

AnswerHook = Callable[[str, float], Optional[list[int]]]


@dataclass
class Zone:
    """An authoritative forward zone.

    Static records live in ``records``; a zone may also carry a dynamic
    ``answer_hook`` so CDN-operated names can vary their answer list with
    time of day (server pools growing at peak hours, Fig. 4).
    """

    origin: str
    records: dict[tuple[str, RRType], list[ResourceRecord]] = field(
        default_factory=dict
    )
    answer_hook: Optional[AnswerHook] = None
    default_ttl: int = 300

    def add(self, record: ResourceRecord) -> None:
        """Insert a record, validating it belongs to this zone."""
        name = DomainName(record.name)
        if not name.is_subdomain_of(self.origin):
            raise ValueError(
                f"{record.name} does not belong to zone {self.origin}"
            )
        key = (name.fqdn, record.rtype)
        self.records.setdefault(key, []).append(record)

    def add_a(self, name: str, addresses: list[int], ttl: int | None = None) -> None:
        """Add one A record per address for ``name``."""
        for address in addresses:
            self.add(a_record(name, address, ttl=ttl or self.default_ttl))

    def contains_name(self, fqdn: str) -> bool:
        """True if any record exists for ``fqdn``."""
        normalized = DomainName(fqdn).fqdn
        return any(key[0] == normalized for key in self.records)

    def lookup(
        self, fqdn: str, rtype: RRType, now: float = 0.0
    ) -> list[ResourceRecord]:
        """Resolve ``fqdn`` within this zone (dynamic hook wins for A)."""
        normalized = DomainName(fqdn).fqdn
        if rtype is RRType.A and self.answer_hook is not None:
            addresses = self.answer_hook(normalized, now)
            if addresses is not None:
                return [
                    a_record(normalized, address, ttl=self.default_ttl)
                    for address in addresses
                ]
        return list(self.records.get((normalized, rtype), ()))


class ReverseZone:
    """The ``in-addr.arpa`` tree for the simulated address space.

    CDN infrastructure addresses typically answer with machine names such
    as ``a184-25-56-10.deploy.akamaitechnologies.com`` that bear no
    relation to the customer FQDN — the effect Tab. 3 measures.  Addresses
    may also simply have no PTR record.
    """

    def __init__(self) -> None:
        self._ptr: dict[int, str] = {}

    def set_pointer(self, address: int, target: str) -> None:
        """Register the PTR target for ``address``."""
        self._ptr[address] = DomainName(target).fqdn

    def remove_pointer(self, address: int) -> None:
        """Delete the PTR record (simulates unregistered infrastructure)."""
        self._ptr.pop(address, None)

    def lookup(self, address: int) -> Optional[str]:
        """Return the PTR target or None (NXDOMAIN)."""
        return self._ptr.get(address)

    def lookup_record(self, address: int) -> list[ResourceRecord]:
        """PTR lookup returning proper resource records."""
        target = self._ptr.get(address)
        if target is None:
            return []
        return [ptr_record(reverse_pointer_name(address), target)]

    def __len__(self) -> int:
        return len(self._ptr)


class RecursiveResolver:
    """A recursive server fronting a set of authoritative zones.

    Matches queries to the longest zone origin that suffixes the queried
    name, follows CNAMEs across zones, and builds well-formed response
    messages (NXDOMAIN when nothing matches).  This is the server the
    simulated clients query; the monitoring point sees its responses.
    """

    MAX_CNAME_DEPTH = 8

    def __init__(self) -> None:
        self._zones: dict[str, Zone] = {}
        self.reverse = ReverseZone()
        self.stats = {"queries": 0, "nxdomain": 0}

    def add_zone(self, zone: Zone) -> None:
        """Register an authoritative zone."""
        origin = DomainName(zone.origin).fqdn
        if origin in self._zones:
            raise ValueError(f"duplicate zone {origin}")
        self._zones[origin] = zone

    def zone_for(self, fqdn: str) -> Optional[Zone]:
        """Longest-suffix zone match for ``fqdn``."""
        name = DomainName(fqdn)
        labels = name.labels
        for start in range(len(labels)):
            candidate = ".".join(labels[start:])
            zone = self._zones.get(candidate)
            if zone is not None:
                return zone
        return None

    def resolve_a(self, fqdn: str, now: float = 0.0) -> list[ResourceRecord]:
        """Resolve A records for ``fqdn``, following CNAME chains."""
        answers: list[ResourceRecord] = []
        current = DomainName(fqdn).fqdn
        for _ in range(self.MAX_CNAME_DEPTH):
            zone = self.zone_for(current)
            if zone is None:
                break
            direct = zone.lookup(current, RRType.A, now=now)
            if direct:
                answers.extend(direct)
                break
            aliases = zone.lookup(current, RRType.CNAME, now=now)
            if not aliases:
                break
            answers.extend(aliases)
            current = aliases[0].target
        return answers

    def handle_query(self, query: DnsMessage, now: float = 0.0) -> DnsMessage:
        """Produce the full response message for ``query``."""
        self.stats["queries"] += 1
        question = query.questions[0] if query.questions else None
        if question is None:
            return DnsMessage.response_to(
                query, [], rcode=ResponseCode.FORMERR
            )
        if question.qtype is RRType.PTR:
            # question.name is the in-addr.arpa form; recover the address.
            address = _address_from_arpa(question.name)
            answers = (
                self.reverse.lookup_record(address)
                if address is not None
                else []
            )
        elif question.qtype is RRType.A:
            answers = self.resolve_a(question.name, now=now)
        else:
            zone = self.zone_for(question.name)
            answers = (
                zone.lookup(question.name, question.qtype, now=now)
                if zone
                else []
            )
        rcode = ResponseCode.NOERROR
        if not answers:
            rcode = ResponseCode.NXDOMAIN
            self.stats["nxdomain"] += 1
        return DnsMessage.response_to(query, answers, rcode=rcode)


def _address_from_arpa(name: str) -> Optional[int]:
    """Parse ``d.c.b.a.in-addr.arpa`` back to an integer address."""
    normalized = name.lower().rstrip(".")
    suffix = ".in-addr.arpa"
    if not normalized.endswith(suffix):
        return None
    parts = normalized[: -len(suffix)].split(".")
    if len(parts) != 4:
        return None
    try:
        octets = [int(part) for part in parts]
    except ValueError:
        return None
    if any(not 0 <= octet <= 255 for octet in octets):
        return None
    # arpa order is reversed: first label is the last octet.
    return (
        (octets[3] << 24) | (octets[2] << 16) | (octets[1] << 8) | octets[0]
    )
