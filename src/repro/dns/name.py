"""Domain names and the label hierarchy the paper's analytics rely on.

Sec. 2.2 defines the terminology this library uses everywhere:

* *label* — one dot-separated component;
* *TLD* — the last label (possibly an effective multi-label suffix such as
  ``co.uk``);
* *second-level domain* (2LD) — the first sub-domain under the TLD, which
  "generally refers to the organization that owns the domain name";
* *FQDN* — the complete name.

The tag-extraction algorithm (Alg. 4) tokenizes every label **except** the
TLD and 2LD, so getting this split right matters for Tables 6/7.
"""

from __future__ import annotations

from functools import lru_cache

MAX_NAME_LENGTH = 253
MAX_LABEL_LENGTH = 63

# A compact effective-TLD list: enough public suffixes to make the
# second-level-domain split correct for the domains the evaluation uses.
# A full public-suffix list would be overkill for the reproduction but the
# mechanism (longest-suffix match) is the real one.
EFFECTIVE_TLDS = frozenset(
    {
        "com", "net", "org", "edu", "gov", "mil", "int", "info", "biz",
        "name", "mobi", "tv", "io", "me", "cc", "us", "uk", "it", "fr",
        "de", "es", "nl", "eu", "ch", "at", "be", "se", "no", "fi", "pl",
        "ru", "cn", "jp", "kr", "in", "au", "ca", "br", "mx", "arpa",
        "co.uk", "org.uk", "ac.uk", "gov.uk", "co.jp", "ne.jp", "or.jp",
        "com.au", "net.au", "org.au", "com.br", "com.cn", "com.mx",
        "co.in", "co.kr", "in-addr.arpa",
    }
)


class DomainNameError(ValueError):
    """Raised for syntactically invalid domain names."""


def _validate_label(label: str) -> None:
    if not label:
        raise DomainNameError("empty label")
    if len(label) > MAX_LABEL_LENGTH:
        raise DomainNameError(f"label too long: {label[:20]}...")
    # Printable ASCII only — hostile captures carry control bytes in
    # "names"; rejecting them here keeps every downstream consumer safe.
    if any(not (33 <= ord(ch) <= 126) for ch in label):
        raise DomainNameError(f"non-printable character in label {label!r}")


@lru_cache(maxsize=65536)
def effective_tld(fqdn: str) -> str:
    """Return the effective TLD of ``fqdn`` (longest known public suffix).

    Falls back to the last label when no suffix matches, so unknown
    country arrangements degrade gracefully.
    """
    labels = fqdn.lower().rstrip(".").split(".")
    for take in (2, 1):
        if len(labels) > take:
            candidate = ".".join(labels[-take:])
            if candidate in EFFECTIVE_TLDS:
                return candidate
    return labels[-1]


@lru_cache(maxsize=65536)
def second_level_domain(fqdn: str) -> str:
    """Return the organization-level domain, e.g. ``mail.google.com`` →
    ``google.com`` and ``static.bbc.co.uk`` → ``bbc.co.uk``.

    A bare TLD (or a name equal to its effective TLD) is returned as-is.
    """
    name = fqdn.lower().rstrip(".")
    tld = effective_tld(name)
    tld_labels = tld.count(".") + 1
    labels = name.split(".")
    if len(labels) <= tld_labels:
        return name
    return ".".join(labels[-(tld_labels + 1):])


class DomainName:
    """An immutable, normalized domain name.

    Instances compare case-insensitively and expose the hierarchy splits
    used throughout the analytics.  Construction validates RFC 1035 length
    limits so the wire codec can assume well-formed names.
    """

    __slots__ = ("_name", "_labels")

    def __init__(self, name: str):
        normalized = name.strip().rstrip(".").lower()
        if not normalized:
            raise DomainNameError("empty domain name")
        if len(normalized) > MAX_NAME_LENGTH:
            raise DomainNameError("domain name too long")
        labels = tuple(normalized.split("."))
        for label in labels:
            _validate_label(label)
        self._name = normalized
        self._labels = labels

    @property
    def fqdn(self) -> str:
        """The normalized textual name (no trailing dot)."""
        return self._name

    @property
    def labels(self) -> tuple[str, ...]:
        """Labels from most-specific to TLD, e.g. ``('www','example','com')``."""
        return self._labels

    @property
    def tld(self) -> str:
        """Effective top-level domain."""
        return effective_tld(self._name)

    @property
    def sld(self) -> str:
        """Second-level (organization) domain."""
        return second_level_domain(self._name)

    @property
    def subdomain_labels(self) -> tuple[str, ...]:
        """Labels before the 2LD — the part Alg. 4 tokenizes.

        ``smtp2.mail.google.com`` → ``('smtp2', 'mail')``.
        """
        sld_count = self.sld.count(".") + 1
        if len(self._labels) <= sld_count:
            return ()
        return self._labels[: len(self._labels) - sld_count]

    def is_subdomain_of(self, other: "DomainName | str") -> bool:
        """True if self equals or is under ``other``."""
        other_name = other.fqdn if isinstance(other, DomainName) else (
            other.strip().rstrip(".").lower()
        )
        return self._name == other_name or self._name.endswith(
            "." + other_name
        )

    def parent(self) -> "DomainName":
        """The name with the leftmost label removed."""
        if len(self._labels) <= 1:
            raise DomainNameError("root-adjacent name has no parent")
        return DomainName(".".join(self._labels[1:]))

    def __str__(self) -> str:
        return self._name

    def __repr__(self) -> str:
        return f"DomainName({self._name!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DomainName):
            return self._name == other._name
        if isinstance(other, str):
            return self._name == other.strip().rstrip(".").lower()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._name)

    def __lt__(self, other: "DomainName") -> bool:
        return self._name < other._name


def reverse_pointer_name(address: int) -> str:
    """The ``in-addr.arpa`` name for integer IPv4 ``address``."""
    octets = [(address >> shift) & 0xFF for shift in (0, 8, 16, 24)]
    return ".".join(str(o) for o in octets) + ".in-addr.arpa"
