"""Client-side stub resolver cache.

Sec. 2.2/6 of the paper: end hosts cache DNS responses locally, bounded by
TTL *and* by memory/timeout deletion policies — "in practice, clients cache
responses for typically less than 1 hour".  The simulated clients use this
cache, which is what makes the trace's DNS-to-flow gap distribution
(Fig. 13) and the resolver dimensioning analysis (Sec. 6) meaningful.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass(slots=True)
class CacheEntry:
    """One cached resolution."""

    fqdn: str
    addresses: tuple[int, ...]
    inserted_at: float
    expires_at: float

    def fresh(self, now: float) -> bool:
        """True while the entry is still usable."""
        return now < self.expires_at


class StubResolverCache:
    """TTL + LRU-capacity cache, as an OS stub resolver behaves.

    Args:
        capacity: maximum number of names held; exceeding it evicts the
            least-recently-used entry (the OS "memory limit" policy).
        max_lifetime: hard cap on residency seconds regardless of TTL
            (the OS "timeout deletion" policy; ~1h per the paper).
    """

    def __init__(self, capacity: int = 512, max_lifetime: float = 3600.0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if max_lifetime <= 0:
            raise ValueError("max_lifetime must be positive")
        self.capacity = capacity
        self.max_lifetime = max_lifetime
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self.stats = {"hits": 0, "misses": 0, "expired": 0, "evicted": 0}

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, fqdn: str, now: float) -> CacheEntry | None:
        """Return a fresh entry for ``fqdn`` or None (and record stats)."""
        key = fqdn.lower()
        entry = self._entries.get(key)
        if entry is None:
            self.stats["misses"] += 1
            return None
        if not entry.fresh(now):
            del self._entries[key]
            self.stats["expired"] += 1
            self.stats["misses"] += 1
            return None
        self._entries.move_to_end(key)
        self.stats["hits"] += 1
        return entry

    def insert(
        self, fqdn: str, addresses: tuple[int, ...], ttl: float, now: float
    ) -> CacheEntry:
        """Cache a resolution, honouring TTL capped by ``max_lifetime``."""
        key = fqdn.lower()
        lifetime = min(float(ttl), self.max_lifetime)
        entry = CacheEntry(
            fqdn=key,
            addresses=tuple(addresses),
            inserted_at=now,
            expires_at=now + lifetime,
        )
        if key in self._entries:
            del self._entries[key]
        elif len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.stats["evicted"] += 1
        self._entries[key] = entry
        return entry

    def purge_expired(self, now: float) -> int:
        """Drop every stale entry; return how many were removed."""
        stale = [
            key for key, entry in self._entries.items() if not entry.fresh(now)
        ]
        for key in stale:
            del self._entries[key]
        self.stats["expired"] += len(stale)
        return len(stale)

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups served from cache so far."""
        total = self.stats["hits"] + self.stats["misses"]
        return self.stats["hits"] / total if total else 0.0
