"""DNS message model: header, question, full query/response messages."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.dns.records import ResourceRecord, RRClass, RRType


class ResponseCode(enum.IntEnum):
    """RCODEs the simulation produces."""

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5


@dataclass(frozen=True, slots=True)
class DnsHeader:
    """The 12-byte DNS header, flag bits broken out."""

    ident: int
    is_response: bool = False
    opcode: int = 0
    authoritative: bool = False
    truncated: bool = False
    recursion_desired: bool = True
    recursion_available: bool = False
    rcode: ResponseCode = ResponseCode.NOERROR

    def flags_word(self) -> int:
        """Pack the flag fields into the 16-bit flags word."""
        word = 0
        if self.is_response:
            word |= 0x8000
        word |= (self.opcode & 0xF) << 11
        if self.authoritative:
            word |= 0x0400
        if self.truncated:
            word |= 0x0200
        if self.recursion_desired:
            word |= 0x0100
        if self.recursion_available:
            word |= 0x0080
        word |= int(self.rcode) & 0xF
        return word

    @classmethod
    def from_flags_word(cls, ident: int, word: int) -> "DnsHeader":
        """Unpack the 16-bit flags word."""
        return cls(
            ident=ident,
            is_response=bool(word & 0x8000),
            opcode=(word >> 11) & 0xF,
            authoritative=bool(word & 0x0400),
            truncated=bool(word & 0x0200),
            recursion_desired=bool(word & 0x0100),
            recursion_available=bool(word & 0x0080),
            rcode=ResponseCode(word & 0xF),
        )


@dataclass(frozen=True, slots=True)
class Question:
    """One entry of the question section."""

    name: str
    qtype: RRType = RRType.A
    qclass: RRClass = RRClass.IN


@dataclass(slots=True)
class DnsMessage:
    """A complete DNS message (query or response)."""

    header: DnsHeader
    questions: list[Question] = field(default_factory=list)
    answers: list[ResourceRecord] = field(default_factory=list)
    authority: list[ResourceRecord] = field(default_factory=list)
    additional: list[ResourceRecord] = field(default_factory=list)

    @classmethod
    def query(
        cls, ident: int, name: str, qtype: RRType = RRType.A
    ) -> "DnsMessage":
        """Build a standard recursive query for ``name``."""
        return cls(
            header=DnsHeader(ident=ident, is_response=False),
            questions=[Question(name=name, qtype=qtype)],
        )

    @classmethod
    def response_to(
        cls,
        query: "DnsMessage",
        answers: list[ResourceRecord],
        rcode: ResponseCode = ResponseCode.NOERROR,
        authoritative: bool = False,
    ) -> "DnsMessage":
        """Build the response matching ``query`` (same id and question)."""
        return cls(
            header=DnsHeader(
                ident=query.header.ident,
                is_response=True,
                authoritative=authoritative,
                recursion_desired=query.header.recursion_desired,
                recursion_available=True,
                rcode=rcode,
            ),
            questions=list(query.questions),
            answers=answers,
        )

    @property
    def question_name(self) -> str:
        """The (single) queried name; raises if the question section is empty."""
        if not self.questions:
            raise ValueError("message has no question")
        return self.questions[0].name

    def a_addresses(self) -> list[int]:
        """All IPv4 addresses in the answer section, following CNAMEs.

        The answer list order is preserved — the paper's resolver stores
        every address of the answer list (Sec. 6).
        """
        return [
            rr.address for rr in self.answers if rr.rtype is RRType.A
        ]

    def min_answer_ttl(self) -> int:
        """The smallest TTL among answers (client cache lifetime)."""
        if not self.answers:
            return 0
        return min(rr.ttl for rr in self.answers)

    def cname_chain(self) -> list[str]:
        """CNAME targets in answer order (may be empty)."""
        return [
            rr.target for rr in self.answers if rr.rtype is RRType.CNAME
        ]
