"""DNS substrate: names, records, RFC 1035 wire format, caches, servers.

Everything DN-Hunter consumes from the DNS side is built here from
scratch: a domain-name type with TLD / second-level-domain semantics
(Sec. 2.2 of the paper), resource records, a binary message codec with
name compression, the client-side stub cache whose TTL behaviour drives
the paper's dimensioning analysis (Sec. 6), and an authoritative +
recursive server simulation including PTR zones for the reverse-lookup
baseline (Tab. 3).
"""

from repro.dns.name import DomainName, effective_tld, second_level_domain
from repro.dns.records import (
    RRClass,
    RRType,
    ResourceRecord,
    a_record,
    cname_record,
    ptr_record,
)
from repro.dns.message import DnsHeader, DnsMessage, Question, ResponseCode
from repro.dns.wire import decode_message, encode_message
from repro.dns.cache import CacheEntry, StubResolverCache

__all__ = [
    "DomainName",
    "effective_tld",
    "second_level_domain",
    "RRType",
    "RRClass",
    "ResourceRecord",
    "a_record",
    "cname_record",
    "ptr_record",
    "DnsHeader",
    "DnsMessage",
    "Question",
    "ResponseCode",
    "encode_message",
    "decode_message",
    "CacheEntry",
    "StubResolverCache",
]
