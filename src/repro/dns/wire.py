"""RFC 1035 wire-format encoder/decoder with name compression.

The DNS response sniffer decodes raw UDP payloads with this codec, so the
packet-level pipeline parses exactly what a real capture would contain.
Compression pointers are emitted on encode (first occurrence wins) and
followed on decode with loop protection.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.dns.message import DnsHeader, DnsMessage, Question
from repro.dns.name import MAX_LABEL_LENGTH
from repro.dns.records import (
    MxData,
    ResourceRecord,
    RRClass,
    RRType,
    SoaData,
)

_HEADER_FMT = struct.Struct("!HHHHHH")
_RR_FIXED_FMT = struct.Struct("!HHIH")
_POINTER_MASK = 0xC000
MAX_POINTER_HOPS = 64


class DnsWireError(ValueError):
    """Raised when a buffer is not a well-formed DNS message."""


class _NameEncoder:
    """Encode names with compression against a shared offset table."""

    def __init__(self) -> None:
        self._offsets: dict[str, int] = {}

    def encode(self, name: str, at_offset: int) -> bytes:
        labels = name.rstrip(".").lower().split(".") if name else []
        out = bytearray()
        for index in range(len(labels)):
            suffix = ".".join(labels[index:])
            known = self._offsets.get(suffix)
            if known is not None:
                out += struct.pack("!H", _POINTER_MASK | known)
                return bytes(out)
            current = at_offset + len(out)
            if current < _POINTER_MASK:  # pointers only address 14 bits
                self._offsets[suffix] = current
            label = labels[index].encode("ascii")
            if len(label) > MAX_LABEL_LENGTH:
                raise DnsWireError(f"label too long: {labels[index]!r}")
            out.append(len(label))
            out += label
        out.append(0)
        return bytes(out)


def _decode_name(data: bytes, offset: int) -> tuple[str, int]:
    """Decode a possibly-compressed name; return (name, next offset)."""
    labels: list[str] = []
    jumped = False
    next_offset = offset
    hops = 0
    while True:
        if offset >= len(data):
            raise DnsWireError("name runs past end of message")
        length = data[offset]
        if length & 0xC0 == 0xC0:
            if offset + 1 >= len(data):
                raise DnsWireError("truncated compression pointer")
            pointer = ((length & 0x3F) << 8) | data[offset + 1]
            if not jumped:
                next_offset = offset + 2
                jumped = True
            hops += 1
            if hops > MAX_POINTER_HOPS:
                raise DnsWireError("compression pointer loop")
            # RFC 1035 pointers must reference a *prior* occurrence: any
            # forward (or self) pointer is invalid, and since the current
            # offset is inside the buffer this also rejects any target
            # past the end of the message.
            if pointer >= offset:
                raise DnsWireError("forward compression pointer")
            offset = pointer
            continue
        if length & 0xC0:
            raise DnsWireError(f"reserved label type {length:#x}")
        offset += 1
        if length == 0:
            break
        if offset + length > len(data):
            raise DnsWireError("label runs past end of message")
        labels.append(data[offset:offset + length].decode("ascii", "replace"))
        offset += length
    if not jumped:
        next_offset = offset
    return ".".join(labels), next_offset


def _encode_rdata(
    rr: ResourceRecord, encoder: _NameEncoder, at_offset: int
) -> bytes:
    if rr.rtype is RRType.A:
        assert isinstance(rr.rdata, int)
        return rr.rdata.to_bytes(4, "big")
    if rr.rtype in (RRType.CNAME, RRType.NS, RRType.PTR):
        assert isinstance(rr.rdata, str)
        return encoder.encode(rr.rdata, at_offset)
    if rr.rtype is RRType.MX:
        assert isinstance(rr.rdata, MxData)
        pref = struct.pack("!H", rr.rdata.preference)
        return pref + encoder.encode(rr.rdata.exchange, at_offset + 2)
    if rr.rtype is RRType.SOA:
        assert isinstance(rr.rdata, SoaData)
        soa = rr.rdata
        mname = encoder.encode(soa.mname, at_offset)
        rname = encoder.encode(soa.rname, at_offset + len(mname))
        tail = struct.pack(
            "!IIIII", soa.serial, soa.refresh, soa.retry, soa.expire,
            soa.minimum,
        )
        return mname + rname + tail
    if rr.rtype is RRType.TXT:
        assert isinstance(rr.rdata, bytes)
        if len(rr.rdata) > 255:
            raise DnsWireError("TXT string too long")
        return bytes([len(rr.rdata)]) + rr.rdata
    if rr.rtype is RRType.AAAA:
        assert isinstance(rr.rdata, bytes)
        if len(rr.rdata) != 16:
            raise DnsWireError("AAAA rdata must be 16 bytes")
        return rr.rdata
    raise DnsWireError(f"cannot encode rdata for {rr.rtype!r}")


def _decode_rdata(
    data: bytes, rtype: int, rdata_start: int, rdata_len: int
) -> object:
    end = rdata_start + rdata_len
    blob = data[rdata_start:end]
    if rtype == RRType.A:
        if rdata_len != 4:
            raise DnsWireError("A rdata must be 4 bytes")
        return int.from_bytes(blob, "big")
    if rtype in (RRType.CNAME, RRType.NS, RRType.PTR):
        name, _ = _decode_name(data, rdata_start)
        return name
    if rtype == RRType.MX:
        if rdata_len < 3:
            raise DnsWireError("truncated MX rdata")
        preference = struct.unpack_from("!H", data, rdata_start)[0]
        exchange, _ = _decode_name(data, rdata_start + 2)
        return MxData(preference, exchange)
    if rtype == RRType.SOA:
        mname, offset = _decode_name(data, rdata_start)
        rname, offset = _decode_name(data, offset)
        if offset + 20 > len(data):
            raise DnsWireError("truncated SOA rdata")
        serial, refresh, retry, expire, minimum = struct.unpack_from(
            "!IIIII", data, offset
        )
        return SoaData(mname, rname, serial, refresh, retry, expire, minimum)
    if rtype == RRType.TXT:
        if not blob:
            return b""
        length = blob[0]
        return blob[1:1 + length]
    if rtype == RRType.AAAA:
        if rdata_len != 16:
            raise DnsWireError("AAAA rdata must be 16 bytes")
        return blob
    return blob  # unknown types carried opaquely


def encode_message(message: DnsMessage) -> bytes:
    """Serialize ``message`` to wire format with name compression."""
    out = bytearray()
    out += _HEADER_FMT.pack(
        message.header.ident,
        message.header.flags_word(),
        len(message.questions),
        len(message.answers),
        len(message.authority),
        len(message.additional),
    )
    encoder = _NameEncoder()
    for question in message.questions:
        out += encoder.encode(question.name, len(out))
        out += struct.pack("!HH", int(question.qtype), int(question.qclass))
    for rr in (*message.answers, *message.authority, *message.additional):
        out += encoder.encode(rr.name, len(out))
        fixed_at = len(out)
        out += _RR_FIXED_FMT.pack(int(rr.rtype), int(rr.rclass), rr.ttl, 0)
        rdata = _encode_rdata(rr, encoder, len(out))
        if len(rdata) > 0xFFFF:
            raise DnsWireError("rdata too long")
        struct.pack_into("!H", out, fixed_at + 8, len(rdata))
        out += rdata
    return bytes(out)


def _decode_rr(data: bytes, offset: int) -> tuple[ResourceRecord, int]:
    name, offset = _decode_name(data, offset)
    if offset + _RR_FIXED_FMT.size > len(data):
        raise DnsWireError("truncated resource record")
    rtype_raw, rclass_raw, ttl, rdata_len = _RR_FIXED_FMT.unpack_from(
        data, offset
    )
    offset += _RR_FIXED_FMT.size
    if offset + rdata_len > len(data):
        raise DnsWireError("rdata runs past end of message")
    try:
        rtype = RRType(rtype_raw)
    except ValueError as exc:
        raise DnsWireError(f"unsupported record type {rtype_raw}") from exc
    try:
        rclass = RRClass(rclass_raw)
    except ValueError as exc:
        raise DnsWireError(f"unsupported record class {rclass_raw}") from exc
    rdata = _decode_rdata(data, rtype, offset, rdata_len)
    record = ResourceRecord(
        name=name, rtype=rtype, ttl=ttl, rdata=rdata, rclass=rclass
    )
    return record, offset + rdata_len


def decode_message(data: bytes) -> DnsMessage:
    """Parse a wire-format DNS message."""
    if len(data) < _HEADER_FMT.size:
        raise DnsWireError("truncated DNS header")
    ident, flags, qd, an, ns, ar = _HEADER_FMT.unpack_from(data)
    try:
        header = DnsHeader.from_flags_word(ident, flags)
    except ValueError as exc:  # reserved RCODE values
        raise DnsWireError(str(exc)) from exc
    message = DnsMessage(header=header)
    offset = _HEADER_FMT.size
    for _ in range(qd):
        name, offset = _decode_name(data, offset)
        if offset + 4 > len(data):
            raise DnsWireError("truncated question")
        qtype_raw, qclass_raw = struct.unpack_from("!HH", data, offset)
        offset += 4
        try:
            qtype = RRType(qtype_raw)
            qclass = RRClass(qclass_raw)
        except ValueError as exc:
            raise DnsWireError(
                f"unsupported question type/class {qtype_raw}/{qclass_raw}"
            ) from exc
        message.questions.append(
            Question(name=name, qtype=qtype, qclass=qclass)
        )
    for section, count in (
        (message.answers, an),
        (message.authority, ns),
        (message.additional, ar),
    ):
        for _ in range(count):
            record, offset = _decode_rr(data, offset)
            section.append(record)
    return message


# ---------------------------------------------------------------------------
# Zero-copy response fast path
# ---------------------------------------------------------------------------
#
# The DNS response sniffer only needs three facts per response: the
# queried name, the A-record address list, and the minimum answer TTL.
# ``decode_response_addresses`` extracts exactly those straight from the
# wire buffer with ``unpack_from`` — no ``DnsMessage``/``ResourceRecord``
# objects, no enum construction, no rdata decoding.  Anything outside the
# narrow shape it handles (queries, multi-question messages, non-A
# answers, authority/additional sections, compressed question names,
# unknown types/classes, reserved RCODEs) returns ``None`` so the caller
# falls back to :func:`decode_message`, preserving the full decoder's
# behaviour — including the error it would raise — for those shapes.
# The one deliberate leniency: answer owner names are skipped, not
# re-decoded, so a backward pointer into malformed bytes is not chased
# the way the full decoder would.

_A_RECORD_TAIL = struct.Struct("!HHIHI")  # type, class, ttl, rdlen, address
_KNOWN_QTYPES = frozenset(int(rrtype) for rrtype in RRType)


def decode_response_addresses(
    data: bytes,
) -> Optional[tuple[str, list[int], int]]:
    """Fast-path decode of an A-record DNS response.

    Returns ``(query_name, a_addresses, min_answer_ttl)`` for a plain
    single-question all-A response, or ``None`` when the message needs
    the general decoder (the caller must then use
    :func:`decode_message`).  Raises :class:`DnsWireError` only for a
    buffer too short to hold a DNS header, mirroring the full decoder.
    """
    size = len(data)
    if size < 12:
        raise DnsWireError("truncated DNS header")
    if not data[2] & 0x80:
        return None  # a query — the general path classifies it
    if data[3] & 0x0F > 5:
        return None  # reserved RCODE — the general path rejects it
    if data[4] or data[5] != 1:
        return None  # zero or multiple questions
    if data[8] or data[9] or data[10] or data[11]:
        return None  # authority/additional sections present
    an_count = (data[6] << 8) | data[7]
    # Question name: plain labels only (a compressed question name is
    # possible in theory and handled by the general decoder).
    offset = 12
    labels = []
    while True:
        if offset >= size:
            return None
        length = data[offset]
        if length == 0:
            offset += 1
            break
        if length & 0xC0:
            return None
        end = offset + 1 + length
        if end > size:
            return None
        labels.append(data[offset + 1:end].decode("ascii", "replace"))
        offset = end
    if offset + 4 > size:
        return None
    qtype = (data[offset] << 8) | data[offset + 1]
    qclass = (data[offset + 2] << 8) | data[offset + 3]
    if qtype not in _KNOWN_QTYPES or qclass != 1:
        return None
    offset += 4
    fqdn = ".".join(labels)
    addresses: list[int] = []
    append = addresses.append
    min_ttl = -1
    unpack_tail = _A_RECORD_TAIL.unpack_from
    for _ in range(an_count):
        # Skip the owner name without materialising it.
        while True:
            if offset >= size:
                return None
            length = data[offset]
            if length & 0xC0 == 0xC0:
                if offset + 1 >= size:
                    return None
                pointer = ((length & 0x3F) << 8) | data[offset + 1]
                if pointer >= offset:
                    return None  # forward pointer — general path rejects
                offset += 2
                break
            if length & 0xC0:
                return None
            offset += 1
            if length == 0:
                break
            offset += length
        if offset + 14 > size:
            return None
        rtype, rclass, ttl, rdata_len, address = unpack_tail(data, offset)
        if rtype != 1 or rclass != 1 or rdata_len != 4:
            return None  # CNAME chains, AAAA, etc. take the general path
        offset += 14
        append(address)
        if ttl < min_ttl or min_ttl < 0:
            min_ttl = ttl
    return fqdn, addresses, 0 if min_ttl < 0 else min_ttl
