"""RFC 1035 wire-format encoder/decoder with name compression.

The DNS response sniffer decodes raw UDP payloads with this codec, so the
packet-level pipeline parses exactly what a real capture would contain.
Compression pointers are emitted on encode (first occurrence wins) and
followed on decode with loop protection.
"""

from __future__ import annotations

import struct

from repro.dns.message import DnsHeader, DnsMessage, Question
from repro.dns.name import MAX_LABEL_LENGTH
from repro.dns.records import (
    MxData,
    ResourceRecord,
    RRClass,
    RRType,
    SoaData,
)

_HEADER_FMT = struct.Struct("!HHHHHH")
_RR_FIXED_FMT = struct.Struct("!HHIH")
_POINTER_MASK = 0xC000
MAX_POINTER_HOPS = 64


class DnsWireError(ValueError):
    """Raised when a buffer is not a well-formed DNS message."""


class _NameEncoder:
    """Encode names with compression against a shared offset table."""

    def __init__(self) -> None:
        self._offsets: dict[str, int] = {}

    def encode(self, name: str, at_offset: int) -> bytes:
        labels = name.rstrip(".").lower().split(".") if name else []
        out = bytearray()
        for index in range(len(labels)):
            suffix = ".".join(labels[index:])
            known = self._offsets.get(suffix)
            if known is not None:
                out += struct.pack("!H", _POINTER_MASK | known)
                return bytes(out)
            current = at_offset + len(out)
            if current < _POINTER_MASK:  # pointers only address 14 bits
                self._offsets[suffix] = current
            label = labels[index].encode("ascii")
            if len(label) > MAX_LABEL_LENGTH:
                raise DnsWireError(f"label too long: {labels[index]!r}")
            out.append(len(label))
            out += label
        out.append(0)
        return bytes(out)


def _decode_name(data: bytes, offset: int) -> tuple[str, int]:
    """Decode a possibly-compressed name; return (name, next offset)."""
    labels: list[str] = []
    jumped = False
    next_offset = offset
    hops = 0
    while True:
        if offset >= len(data):
            raise DnsWireError("name runs past end of message")
        length = data[offset]
        if length & 0xC0 == 0xC0:
            if offset + 1 >= len(data):
                raise DnsWireError("truncated compression pointer")
            pointer = ((length & 0x3F) << 8) | data[offset + 1]
            if not jumped:
                next_offset = offset + 2
                jumped = True
            hops += 1
            if hops > MAX_POINTER_HOPS:
                raise DnsWireError("compression pointer loop")
            if pointer >= offset and not labels and hops == 1 and pointer >= len(data):
                raise DnsWireError("pointer outside message")
            offset = pointer
            continue
        if length & 0xC0:
            raise DnsWireError(f"reserved label type {length:#x}")
        offset += 1
        if length == 0:
            break
        if offset + length > len(data):
            raise DnsWireError("label runs past end of message")
        labels.append(data[offset:offset + length].decode("ascii", "replace"))
        offset += length
    if not jumped:
        next_offset = offset
    return ".".join(labels), next_offset


def _encode_rdata(
    rr: ResourceRecord, encoder: _NameEncoder, at_offset: int
) -> bytes:
    if rr.rtype is RRType.A:
        assert isinstance(rr.rdata, int)
        return rr.rdata.to_bytes(4, "big")
    if rr.rtype in (RRType.CNAME, RRType.NS, RRType.PTR):
        assert isinstance(rr.rdata, str)
        return encoder.encode(rr.rdata, at_offset)
    if rr.rtype is RRType.MX:
        assert isinstance(rr.rdata, MxData)
        pref = struct.pack("!H", rr.rdata.preference)
        return pref + encoder.encode(rr.rdata.exchange, at_offset + 2)
    if rr.rtype is RRType.SOA:
        assert isinstance(rr.rdata, SoaData)
        soa = rr.rdata
        mname = encoder.encode(soa.mname, at_offset)
        rname = encoder.encode(soa.rname, at_offset + len(mname))
        tail = struct.pack(
            "!IIIII", soa.serial, soa.refresh, soa.retry, soa.expire,
            soa.minimum,
        )
        return mname + rname + tail
    if rr.rtype is RRType.TXT:
        assert isinstance(rr.rdata, bytes)
        if len(rr.rdata) > 255:
            raise DnsWireError("TXT string too long")
        return bytes([len(rr.rdata)]) + rr.rdata
    if rr.rtype is RRType.AAAA:
        assert isinstance(rr.rdata, bytes)
        if len(rr.rdata) != 16:
            raise DnsWireError("AAAA rdata must be 16 bytes")
        return rr.rdata
    raise DnsWireError(f"cannot encode rdata for {rr.rtype!r}")


def _decode_rdata(
    data: bytes, rtype: int, rdata_start: int, rdata_len: int
) -> object:
    end = rdata_start + rdata_len
    blob = data[rdata_start:end]
    if rtype == RRType.A:
        if rdata_len != 4:
            raise DnsWireError("A rdata must be 4 bytes")
        return int.from_bytes(blob, "big")
    if rtype in (RRType.CNAME, RRType.NS, RRType.PTR):
        name, _ = _decode_name(data, rdata_start)
        return name
    if rtype == RRType.MX:
        if rdata_len < 3:
            raise DnsWireError("truncated MX rdata")
        preference = struct.unpack_from("!H", data, rdata_start)[0]
        exchange, _ = _decode_name(data, rdata_start + 2)
        return MxData(preference, exchange)
    if rtype == RRType.SOA:
        mname, offset = _decode_name(data, rdata_start)
        rname, offset = _decode_name(data, offset)
        if offset + 20 > len(data):
            raise DnsWireError("truncated SOA rdata")
        serial, refresh, retry, expire, minimum = struct.unpack_from(
            "!IIIII", data, offset
        )
        return SoaData(mname, rname, serial, refresh, retry, expire, minimum)
    if rtype == RRType.TXT:
        if not blob:
            return b""
        length = blob[0]
        return blob[1:1 + length]
    if rtype == RRType.AAAA:
        if rdata_len != 16:
            raise DnsWireError("AAAA rdata must be 16 bytes")
        return blob
    return blob  # unknown types carried opaquely


def encode_message(message: DnsMessage) -> bytes:
    """Serialize ``message`` to wire format with name compression."""
    out = bytearray()
    out += _HEADER_FMT.pack(
        message.header.ident,
        message.header.flags_word(),
        len(message.questions),
        len(message.answers),
        len(message.authority),
        len(message.additional),
    )
    encoder = _NameEncoder()
    for question in message.questions:
        out += encoder.encode(question.name, len(out))
        out += struct.pack("!HH", int(question.qtype), int(question.qclass))
    for rr in (*message.answers, *message.authority, *message.additional):
        out += encoder.encode(rr.name, len(out))
        fixed_at = len(out)
        out += _RR_FIXED_FMT.pack(int(rr.rtype), int(rr.rclass), rr.ttl, 0)
        rdata = _encode_rdata(rr, encoder, len(out))
        if len(rdata) > 0xFFFF:
            raise DnsWireError("rdata too long")
        struct.pack_into("!H", out, fixed_at + 8, len(rdata))
        out += rdata
    return bytes(out)


def _decode_rr(data: bytes, offset: int) -> tuple[ResourceRecord, int]:
    name, offset = _decode_name(data, offset)
    if offset + _RR_FIXED_FMT.size > len(data):
        raise DnsWireError("truncated resource record")
    rtype_raw, rclass_raw, ttl, rdata_len = _RR_FIXED_FMT.unpack_from(
        data, offset
    )
    offset += _RR_FIXED_FMT.size
    if offset + rdata_len > len(data):
        raise DnsWireError("rdata runs past end of message")
    try:
        rtype = RRType(rtype_raw)
    except ValueError as exc:
        raise DnsWireError(f"unsupported record type {rtype_raw}") from exc
    try:
        rclass = RRClass(rclass_raw)
    except ValueError as exc:
        raise DnsWireError(f"unsupported record class {rclass_raw}") from exc
    rdata = _decode_rdata(data, rtype, offset, rdata_len)
    record = ResourceRecord(
        name=name, rtype=rtype, ttl=ttl, rdata=rdata, rclass=rclass
    )
    return record, offset + rdata_len


def decode_message(data: bytes) -> DnsMessage:
    """Parse a wire-format DNS message."""
    if len(data) < _HEADER_FMT.size:
        raise DnsWireError("truncated DNS header")
    ident, flags, qd, an, ns, ar = _HEADER_FMT.unpack_from(data)
    try:
        header = DnsHeader.from_flags_word(ident, flags)
    except ValueError as exc:  # reserved RCODE values
        raise DnsWireError(str(exc)) from exc
    message = DnsMessage(header=header)
    offset = _HEADER_FMT.size
    for _ in range(qd):
        name, offset = _decode_name(data, offset)
        if offset + 4 > len(data):
            raise DnsWireError("truncated question")
        qtype_raw, qclass_raw = struct.unpack_from("!HH", data, offset)
        offset += 4
        try:
            qtype = RRType(qtype_raw)
            qclass = RRClass(qclass_raw)
        except ValueError as exc:
            raise DnsWireError(
                f"unsupported question type/class {qtype_raw}/{qclass_raw}"
            ) from exc
        message.questions.append(
            Question(name=name, qtype=qtype, qclass=qclass)
        )
    for section, count in (
        (message.answers, an),
        (message.authority, ns),
        (message.additional, ar),
    ):
        for _ in range(count):
            record, offset = _decode_rr(data, offset)
            section.append(record)
    return message
