"""DNS resource records and the record types the system handles."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from repro.net.ip import ip_from_str, ip_to_str


class RRType(enum.IntEnum):
    """Record types supported by the codec and server simulation."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    PTR = 12
    MX = 15
    TXT = 16
    AAAA = 28


class RRClass(enum.IntEnum):
    """Only IN is used; the codec still validates the field."""

    IN = 1


@dataclass(frozen=True, slots=True)
class MxData:
    """MX rdata: preference plus exchange host."""

    preference: int
    exchange: str


@dataclass(frozen=True, slots=True)
class SoaData:
    """SOA rdata (only the fields the server simulation needs)."""

    mname: str
    rname: str
    serial: int = 1
    refresh: int = 3600
    retry: int = 600
    expire: int = 86400
    minimum: int = 60


RData = Union[int, str, bytes, MxData, SoaData]


@dataclass(frozen=True, slots=True)
class ResourceRecord:
    """One DNS resource record.

    ``rdata`` is typed per record: ``int`` (IPv4) for A, ``str`` for
    CNAME/NS/PTR, ``bytes`` for TXT/AAAA, :class:`MxData` for MX and
    :class:`SoaData` for SOA.
    """

    name: str
    rtype: RRType
    ttl: int
    rdata: RData
    rclass: RRClass = RRClass.IN

    def __post_init__(self) -> None:
        if self.ttl < 0:
            raise ValueError("negative TTL")
        expected = _RDATA_TYPES.get(self.rtype)
        if expected is not None and not isinstance(self.rdata, expected):
            raise TypeError(
                f"{self.rtype.name} rdata must be {expected}, "
                f"got {type(self.rdata).__name__}"
            )

    @property
    def address(self) -> int:
        """The IPv4 address for an A record."""
        if self.rtype is not RRType.A:
            raise TypeError(f"{self.rtype.name} record has no address")
        assert isinstance(self.rdata, int)
        return self.rdata

    @property
    def target(self) -> str:
        """The target name for CNAME/NS/PTR records."""
        if self.rtype not in (RRType.CNAME, RRType.NS, RRType.PTR):
            raise TypeError(f"{self.rtype.name} record has no target name")
        assert isinstance(self.rdata, str)
        return self.rdata

    def describe(self) -> str:
        """Zone-file style one-liner, for debugging and reports."""
        if self.rtype is RRType.A:
            rdata = ip_to_str(self.address)
        elif isinstance(self.rdata, bytes):
            rdata = self.rdata.hex()
        else:
            rdata = str(self.rdata)
        return f"{self.name} {self.ttl} IN {self.rtype.name} {rdata}"


_RDATA_TYPES: dict[RRType, type | tuple[type, ...]] = {
    RRType.A: int,
    RRType.NS: str,
    RRType.CNAME: str,
    RRType.PTR: str,
    RRType.TXT: bytes,
    RRType.AAAA: bytes,
    RRType.MX: MxData,
    RRType.SOA: SoaData,
}


def a_record(name: str, address: int | str, ttl: int = 300) -> ResourceRecord:
    """Convenience A-record constructor accepting int or dotted-quad."""
    if isinstance(address, str):
        address = ip_from_str(address)
    return ResourceRecord(name=name, rtype=RRType.A, ttl=ttl, rdata=address)


def cname_record(name: str, target: str, ttl: int = 300) -> ResourceRecord:
    """Convenience CNAME constructor."""
    return ResourceRecord(name=name, rtype=RRType.CNAME, ttl=ttl, rdata=target)


def ptr_record(name: str, target: str, ttl: int = 3600) -> ResourceRecord:
    """Convenience PTR constructor."""
    return ResourceRecord(name=name, rtype=RRType.PTR, ttl=ttl, rdata=target)
