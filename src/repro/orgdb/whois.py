"""Whois-style organization records for the simulated internet."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class OrgKind(enum.Enum):
    """What role an organization plays in the tangled web."""

    CDN = "cdn"
    CLOUD = "cloud"
    CONTENT_OWNER = "content-owner"
    ISP = "isp"


@dataclass(slots=True)
class OrgRecord:
    """One registry entry.

    ``display_name`` is the MaxMind-style label the paper prints in
    Fig. 5 / Tab. 5 ("akamai", "amazon", ...); ``kind`` distinguishes
    infrastructure operators from content owners (the "SELF" column in
    Fig. 9 is a content owner serving itself).
    """

    name: str
    kind: OrgKind
    display_name: str = ""
    country: str = ""
    aliases: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.display_name:
            self.display_name = self.name


class WhoisRegistry:
    """Name → record registry with alias resolution."""

    def __init__(self) -> None:
        self._records: dict[str, OrgRecord] = {}
        self._aliases: dict[str, str] = {}

    def register(self, record: OrgRecord) -> None:
        """Add a record; aliases become additional lookup keys."""
        key = record.name.lower()
        if key in self._records:
            raise ValueError(f"duplicate organization {record.name}")
        self._records[key] = record
        for alias in record.aliases:
            self._aliases[alias.lower()] = key

    def lookup(self, name: str) -> Optional[OrgRecord]:
        """Find a record by canonical name or alias."""
        key = name.lower()
        if key in self._records:
            return self._records[key]
        canonical = self._aliases.get(key)
        return self._records.get(canonical) if canonical else None

    def is_infrastructure(self, name: str) -> bool:
        """True when ``name`` is a CDN or cloud operator."""
        record = self.lookup(name)
        return record is not None and record.kind in (
            OrgKind.CDN,
            OrgKind.CLOUD,
        )

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records.values())
