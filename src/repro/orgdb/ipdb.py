"""Interval-based IP→organization lookups.

Ranges are kept sorted by start address; lookup is a binary search, so a
database of thousands of allocations answers point queries in O(log n) —
the same order as the paper's resolver maps.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.net.ip import IPv4Network, ip_to_str


@dataclass(frozen=True, slots=True)
class IpRange:
    """A half-open-free inclusive address range owned by one organization."""

    start: int
    end: int
    organization: str

    def __post_init__(self) -> None:
        if self.start > self.end:
            raise ValueError("range start after end")

    def __contains__(self, address: int) -> bool:
        return self.start <= address <= self.end

    def __str__(self) -> str:
        return (
            f"{ip_to_str(self.start)}-{ip_to_str(self.end)} "
            f"({self.organization})"
        )


class IpOrganizationDb:
    """Sorted, non-overlapping collection of :class:`IpRange` entries."""

    def __init__(self) -> None:
        self._starts: list[int] = []
        self._ranges: list[IpRange] = []

    def __len__(self) -> int:
        return len(self._ranges)

    def add_range(self, start: int, end: int, organization: str) -> None:
        """Register ``[start, end]`` as owned by ``organization``.

        Overlapping an existing range raises ``ValueError``; the synthetic
        address plan never double-allocates and real registries don't
        either.
        """
        candidate = IpRange(start, end, organization)
        index = bisect.bisect_left(self._starts, start)
        neighbours = []
        if index > 0:
            neighbours.append(self._ranges[index - 1])
        if index < len(self._ranges):
            neighbours.append(self._ranges[index])
        for other in neighbours:
            if candidate.start <= other.end and other.start <= candidate.end:
                raise ValueError(
                    f"range {candidate} overlaps existing {other}"
                )
        self._starts.insert(index, start)
        self._ranges.insert(index, candidate)

    def add_network(self, network: IPv4Network, organization: str) -> None:
        """Register a CIDR block."""
        self.add_range(network.base, network.last, organization)

    def add_networks(
        self, networks: Iterable[IPv4Network], organization: str
    ) -> None:
        """Register several CIDR blocks for one organization."""
        for network in networks:
            self.add_network(network, organization)

    def lookup(self, address: int) -> Optional[str]:
        """Return the owning organization or None."""
        index = bisect.bisect_right(self._starts, address) - 1
        if index < 0:
            return None
        candidate = self._ranges[index]
        return candidate.organization if address in candidate else None

    def lookup_many(self, addresses: Iterable[int]) -> dict[int, Optional[str]]:
        """Batch lookup preserving input addresses as keys."""
        return {address: self.lookup(address) for address in addresses}

    def organizations(self) -> set[str]:
        """All distinct organizations with at least one range."""
        return {r.organization for r in self._ranges}

    def ranges_of(self, organization: str) -> list[IpRange]:
        """Every range registered to ``organization``."""
        return [r for r in self._ranges if r.organization == organization]
