"""IP-to-organization database (the paper's MaxMind/whois substitute).

The content-discovery analytics (Sec. 4.2, Fig. 5, Tab. 5) need to map a
server address to the CDN or cloud provider operating it.  The paper used
the MaxMind organization database; we provide the same query surface
backed by the simulated internet's address plan.
"""

from repro.orgdb.ipdb import IpOrganizationDb, IpRange
from repro.orgdb.whois import OrgKind, OrgRecord, WhoisRegistry

__all__ = [
    "IpOrganizationDb",
    "IpRange",
    "OrgRecord",
    "OrgKind",
    "WhoisRegistry",
]
