"""Client-sharded resolver (Sec. 3.1.1 scaling note).

"When the number of monitored clients increase, several load balancing
strategies can be used.  For example, two resolvers can be maintained
for odd and even fourth octet value in the client IP-address."

:class:`ShardedResolver` implements exactly that generalized to N
shards, presenting the same insert/lookup surface as a single
:class:`DnsResolver` so the tagger and pipeline need no changes.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.sniffer.resolver import DnsResolver, ResolverStats


def shard_of(client_ip: int, shards: int) -> int:
    """The one definition of the client routing hash (low-octet modulo).

    Shared by :class:`ShardedResolver` (in-process shards) and
    :class:`repro.sniffer.fanout.FanoutPipeline` (worker processes) so a
    client's DNS responses and flows always meet in the same shard no
    matter which scaling axis is in use.
    """
    return (client_ip & 0xFF) % shards


class ShardedResolver:
    """N independent resolvers keyed by the client address' low octet.

    Args:
        shards: number of shards (2 = the paper's odd/even example).
        clist_size: total Clist budget, split evenly across shards.
        multi_label_depth: forwarded to each shard.
    """

    def __init__(
        self,
        shards: int = 2,
        clist_size: int = 100_000,
        multi_label_depth: int = 0,
    ):
        if shards <= 0:
            raise ValueError("shards must be positive")
        per_shard = max(1, clist_size // shards)
        self.shards = [
            DnsResolver(
                clist_size=per_shard, multi_label_depth=multi_label_depth
            )
            for _ in range(shards)
        ]

    def _shard_index(self, client_ip: int) -> int:
        return shard_of(client_ip, len(self.shards))

    def _shard_for(self, client_ip: int) -> DnsResolver:
        return self.shards[self._shard_index(client_ip)]

    def insert(
        self,
        client_ip: int,
        fqdn: str,
        answers: list[int],
        timestamp: float = 0.0,
    ) -> None:
        """Route the response to the owning shard."""
        self._shard_for(client_ip).insert(client_ip, fqdn, answers, timestamp)

    def insert_batch(self, observations: Iterable) -> None:
        """Feed a run of decoded responses, routing each to its shard.

        The routing hash and per-shard ``insert`` bindings are hoisted
        out of the per-event call chain.
        """
        shard_index = self._shard_index
        inserts = [shard.insert for shard in self.shards]
        for obs in observations:
            client_ip = obs.client_ip
            inserts[shard_index(client_ip)](
                client_ip, obs.fqdn, obs.answers, obs.timestamp
            )

    def lookup(self, client_ip: int, server_ip: int) -> Optional[str]:
        """Look up in the owning shard only."""
        return self._shard_for(client_ip).lookup(client_ip, server_ip)

    def lookup_key(self, key: int) -> Optional[str]:
        """Pre-fused-key probe routed by the client octet inside the key."""
        return self.shards[
            shard_of(key >> 32, len(self.shards))
        ].lookup_key(key)

    def peek(self, client_ip: int, server_ip: int) -> Optional[str]:
        return self._shard_for(client_ip).peek(client_ip, server_ip)

    def lookup_all(self, client_ip: int, server_ip: int) -> list[str]:
        return self._shard_for(client_ip).lookup_all(client_ip, server_ip)

    @property
    def stats(self) -> ResolverStats:
        """Aggregated counters across shards."""
        total = ResolverStats()
        for shard in self.shards:
            total.merge(shard.stats)
        return total

    @property
    def client_count(self) -> int:
        return sum(shard.client_count for shard in self.shards)

    @property
    def live_entries(self) -> int:
        return sum(shard.live_entries for shard in self.shards)

    def shard_balance(self) -> list[int]:
        """Clients per shard — how even the paper's octet split is."""
        return [shard.client_count for shard in self.shards]

    def check_invariants(self) -> None:
        for shard in self.shards:
            shard.check_invariants()
