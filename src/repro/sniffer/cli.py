"""``repro-sniff`` — run DN-Hunter over a pcap file from the shell.

Reads a classic pcap capture, runs the packet-path sniffer (DNS response
sniffer + flow sniffer + tagger), and prints per-protocol hit ratios
plus a sample of labels.  With ``--dump`` the labeled flows are written
as JSON lines for the off-line analyzer.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter

from repro.net.packet import PacketDecodeError, decode_frame
from repro.net.pcap import LINKTYPE_ETHERNET, PcapFormatError, PcapReader
from repro.sniffer.pipeline import SnifferPipeline


def sniff_pcap(
    path: str,
    clist_size: int = 200_000,
    warmup: float = 300.0,
    shards: int = 1,
    processes: int = 1,
    batch_events: int = 8192,
    flow_store=None,
    handle_signals: bool = False,
    store_drain_hook=None,
    on_pipeline=None,
) -> SnifferPipeline:
    """Run the packet path over the capture at ``path``.

    ``handle_signals=True`` installs SIGTERM/SIGINT handlers that close
    the pipeline — drain the workers, seal the flow store's tail and
    journal — before the signal terminates the process, so killing a
    durable capture mid-run loses nothing that was acknowledged.
    ``store_drain_hook`` is installed on the pipeline before any
    packet is processed (see ``SnifferPipeline.store_drain_hook``);
    ``on_pipeline`` is called with the constructed pipeline before
    processing starts, so a caller's own shutdown handler can reach it
    even when this call is interrupted mid-capture.
    """
    # Probe the capture before any side effect: constructing the
    # pipeline with flow_store creates the store directory, and a
    # typo'd pcap path must not leave a plausible empty store behind.
    with open(path, "rb"):
        pass
    pipeline = SnifferPipeline(
        clist_size=clist_size, warmup=warmup, shards=shards,
        processes=processes, batch_events=batch_events,
        collect_labels=processes > 1,
        flow_store=flow_store,
    )
    pipeline.store_drain_hook = store_drain_hook
    if on_pipeline is not None:
        on_pipeline(pipeline)
    if handle_signals:
        pipeline.install_signal_handlers()

    def packets():
        with open(path, "rb") as handle:
            reader = PcapReader(handle)
            with_ethernet = reader.linktype == LINKTYPE_ETHERNET
            for record in reader:
                try:
                    yield decode_frame(
                        record.timestamp, record.data,
                        with_ethernet=with_ethernet,
                    )
                except PacketDecodeError:
                    continue

    pipeline.process_packets(packets())
    return pipeline


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-sniff",
        description="Tag the flows of a pcap capture with DNS-derived labels.",
    )
    parser.add_argument("pcap", help="path to a classic pcap file")
    parser.add_argument(
        "--clist", type=int, default=200_000,
        help="resolver circular-list size L (default 200000)",
    )
    parser.add_argument(
        "--warmup", type=float, default=300.0,
        help="statistics warm-up seconds (default 300)",
    )
    parser.add_argument(
        "--shards", type=int, default=1,
        help="client-sharded resolvers (Sec. 3.1.1 load balancing; "
             "default 1 = a single resolver)",
    )
    parser.add_argument(
        "--processes", type=int, default=1,
        help="fan the resolver+tagger out to N worker processes "
             "(client-sharded, batch-fed; default 1 = in-process). "
             "Aggregate mode: statistics are merged, per-flow records "
             "are not kept, so --dump is unavailable",
    )
    parser.add_argument(
        "--batch-events", type=int, default=8192,
        help="events per fan-out batch (with --processes > 1; "
             "default 8192)",
    )
    parser.add_argument(
        "--top", type=int, default=10,
        help="show the N most common labels (default 10)",
    )
    parser.add_argument(
        "--dump", metavar="PATH",
        help="write labeled flows as JSON lines to PATH",
    )
    parser.add_argument(
        "--flow-store", metavar="DIR",
        help="stream tagged flows into the durable columnar flow store "
             "at DIR (created if missing; spills mid-run, the live "
             "tail is sealed on exit — inspect with repro-flowstore). "
             "For multi-day captures combine with --processes N: "
             "aggregate mode keeps no per-flow records in the parent, "
             "so memory is bounded by the store's spill budget",
    )
    args = parser.parse_args(argv)
    if args.processes > 1 and args.dump:
        parser.error(
            "--dump needs per-flow records, which --processes > 1 "
            "aggregates away in the workers"
        )

    try:
        pipeline = sniff_pcap(
            args.pcap, clist_size=args.clist, warmup=args.warmup,
            shards=args.shards, processes=args.processes,
            batch_events=args.batch_events,
            flow_store=args.flow_store,
            # A killed durable capture must seal what it acknowledged.
            handle_signals=args.flow_store is not None,
        )
    except (OSError, PcapFormatError, ValueError) as exc:
        # ValueError covers bad sizing knobs (--clist 0, --shards 0)
        # and a corrupt --flow-store directory (StorageError).
        print(f"error: {exc}", file=sys.stderr)
        return 1

    report = pipeline.fanout_report
    if report is not None:
        labeled = report.tagged_flows
        ratio = f" ({labeled / report.flows:.0%})" if report.flows else ""
        print(f"flows reconstructed : {report.flows}")
        print(f"flows labeled       : {labeled}{ratio}")
        print(f"dns responses seen  : {pipeline.dns_sniffer.stats['decoded']}")
        print(f"worker processes    : {report.processes} "
              f"(events per worker: "
              f"{', '.join(str(n) for n in report.worker_events)})")
        counter = report.label_counts or Counter()
    else:
        flows = pipeline.tagged_flows
        tagged = [f for f in flows if f.fqdn]
        print(f"flows reconstructed : {len(flows)}")
        print(f"flows labeled       : {len(tagged)} "
              f"({len(tagged) / len(flows):.0%})"
              if flows else "flows labeled : 0")
        print(f"dns responses seen  : {pipeline.dns_sniffer.stats['decoded']}")
        print(f"resolver clients    : {pipeline.resolver.client_count}")
        counter = Counter(f.fqdn for f in tagged)
    if counter:
        print(f"\ntop {args.top} labels:")
        for fqdn, count in counter.most_common(args.top):
            print(f"  {count:6d}  {fqdn}")

    if args.dump:
        from repro.analytics.persistence import dump_flows

        with open(args.dump, "w", encoding="utf-8") as handle:
            written = dump_flows(flows, handle)
        print(f"\nwrote {written} labeled flows to {args.dump}")
    pipeline.close()
    if pipeline.flow_store is not None:
        stats = pipeline.flow_store.stats()
        print(
            f"\nflow store {stats['directory']}: {stats['rows']} rows in "
            f"{len(stats['segments'])} segments "
            f"({stats['bytes_on_disk']} bytes on disk)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
