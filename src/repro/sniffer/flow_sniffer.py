"""Flow sniffer: layer-4 flow reconstruction (Sec. 3.1).

Wraps the TCP connection tracker and adds UDP flow aggregation so the
pipeline sees one :class:`FlowRecord` per five-tuple regardless of
transport.  DNS-over-UDP traffic is excluded — it belongs to the DNS
response sniffer, not the flow database.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.flow import FiveTuple, FlowRecord, TransportProto
from repro.net.packet import Packet
from repro.net.tcp import TcpFlowTracker

DNS_PORT = 53


@dataclass
class _UdpFlow:
    record: FlowRecord
    last_seen: float


class FlowSniffer:
    """Aggregate packets into flow records.

    TCP flows follow the full state machine in :mod:`repro.net.tcp`;
    UDP flows are grouped by five-tuple with an idle timeout, client side
    chosen by the first packet's source (UDP has no handshake).
    """

    def __init__(self, idle_timeout: float = 300.0):
        self.idle_timeout = idle_timeout
        self._tcp = TcpFlowTracker(idle_timeout=idle_timeout)
        self._udp: dict[FiveTuple, _UdpFlow] = {}
        self.stats = {"packets": 0, "skipped_dns": 0, "udp_flows": 0}

    def feed(self, packet: Packet) -> Optional[FlowRecord]:
        """Consume one packet; return a completed flow record, if any."""
        self.stats["packets"] += 1
        if packet.tcp is not None:
            return self._tcp.feed(packet)
        if packet.udp is not None:
            if DNS_PORT in (packet.udp.src_port, packet.udp.dst_port):
                self.stats["skipped_dns"] += 1
                return None
            self._feed_udp(packet)
        return None

    def _feed_udp(self, packet: Packet) -> None:
        forward = FiveTuple(
            packet.ipv4.src,
            packet.ipv4.dst,
            packet.udp.src_port,
            packet.udp.dst_port,
            TransportProto.UDP,
        )
        reverse = FiveTuple(
            packet.ipv4.dst,
            packet.ipv4.src,
            packet.udp.dst_port,
            packet.udp.src_port,
            TransportProto.UDP,
        )
        flow = self._udp.get(forward)
        upstream = True
        if flow is None and reverse in self._udp:
            flow = self._udp[reverse]
            upstream = False
        if flow is None:
            flow = _UdpFlow(
                record=FlowRecord(fid=forward, start=packet.timestamp),
                last_seen=packet.timestamp,
            )
            self._udp[forward] = flow
            self.stats["udp_flows"] += 1
        flow.last_seen = packet.timestamp
        flow.record.end = packet.timestamp
        flow.record.packets += 1
        if upstream:
            flow.record.bytes_up += len(packet.payload)
        else:
            flow.record.bytes_down += len(packet.payload)

    def expire(self, now: float) -> list[FlowRecord]:
        """Flush idle TCP connections and UDP flows."""
        finished = self._tcp.expire(now)
        stale = [
            fid
            for fid, flow in self._udp.items()
            if now - flow.last_seen > self.idle_timeout
        ]
        for fid in stale:
            finished.append(self._udp.pop(fid).record)
        return finished

    def flush(self) -> list[FlowRecord]:
        """Close everything still open (end of trace)."""
        finished = self._tcp.flush()
        finished.extend(flow.record for flow in self._udp.values())
        self._udp.clear()
        return finished

    @property
    def active_count(self) -> int:
        """Currently-open flows across both transports."""
        return self._tcp.active_count + len(self._udp)
