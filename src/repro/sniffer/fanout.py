"""Multi-process shard fan-out for the sniffer event path.

The fused single-interpreter loop (PR 1) tops out at ~1M events/s; this
module is the next lever named by the ROADMAP: partition events by
client IP across N worker processes, each running the fused
resolver+tagger loop over its own shard, fed by the compact binary
batches of :mod:`repro.sniffer.eventcodec` so a batch crosses the
process boundary as one buffer instead of N pickled objects.  FlowDNS
(Maghsoudlou et al.) applies the same recipe to correlate DNS and flow
streams at ISP scale.

Sharding uses the same routing hash as :class:`ShardedResolver` — the
client address' low octet, the paper's Sec. 3.1.1 odd/even example
generalised to N — so a client's DNS responses and flows always land on
the same worker and the merged statistics are identical to a
single-process run (eviction-free regime; once per-worker Clists wrap,
eviction order differs from the global FIFO exactly as it does for
in-process shards).

Two modes share one implementation:

* **offline** — :meth:`FanoutPipeline.run_events` /
  :meth:`FanoutPipeline.run_trace`: feed a finite stream, collect the
  merged :class:`FanoutReport`, shut the pool down;
* **streaming** — :meth:`feed` events as they arrive; per-worker
  batches are bounded by ``max_pending`` in-flight batches (workers ack
  each batch, the parent blocks before exceeding the bound — a bounded
  queue with explicit backpressure), :meth:`collect` snapshots merged
  statistics without stopping, :meth:`close` shuts down cleanly.

Workers keep per-shard :class:`DnsResolver` state plus tag counters and
return only counters (and optionally a label histogram) — flow records
are tallied where they are tagged, never shipped back, which is what
lets the drain rate exceed the single-interpreter ceiling.

The worker's consume loop lifts whole batch columns into vectorised
``numpy`` code when numpy is importable (key fusion, warm-up masks) and
falls back to pure ``struct`` otherwise; both paths replay the exact
event interleaving recorded by the codec flags, so statistics match the
fused in-process loop bit for bit.
"""

from __future__ import annotations

import multiprocessing
import struct
import sys
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.net.flow import DnsObservation, FlowRecord, Protocol
from repro.sniffer.eventcodec import (
    BatchEncoder,
    BatchView,
    DNS_HOT,
    FLOW_HOT,
    PROTOCOLS,
    encode_events,
    retag_flows,
)
from repro.sniffer.resolver import DnsResolver, ResolverStats
from repro.sniffer.sharding import shard_of
from repro.sniffer.tagger import TagStats

try:  # numpy accelerates the batch-column precompute; optional.
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None

_N_PROTO = len(PROTOCOLS)
_TS = struct.Struct("<d")

# Parent -> worker frame opcodes (first byte of every frame).
_OP_BATCH = b"B"      # + batch buffer; worker acks
_OP_TRACE = b"T"      # + f64 trace start hint; worker acks
_OP_RESET = b"R"      # drop all state; worker acks
_OP_FLUSH = b"F"      # worker replies with its report (pickled dict)
_OP_DRAIN = b"D"      # worker replies with buffered tagged-flow batches
_OP_STOP = b"S"       # worker exits; no reply
_ACK = b"A"


class FanoutError(RuntimeError):
    """A worker process died or the pool was used out of order."""


def install_shutdown_signals(close, signals=None) -> None:
    """Run ``close()`` when a termination signal arrives, then die by it.

    The graceful-shutdown contract for daemon-style capture runs: on
    SIGTERM/SIGINT the pipeline drains its workers and seals the flow
    store's tail and journal, and only then is the signal re-delivered
    under its previous disposition — so the process still terminates
    with the correct signal status for supervisors (systemd, shell job
    control) and a second signal during a hung close is not swallowed.
    Main-thread only, like any :func:`signal.signal` call.
    """
    import os
    import signal as signal_module

    if signals is None:
        signals = (signal_module.SIGTERM, signal_module.SIGINT)
    previous_handlers = {}

    def _handler(signum, frame):
        previous = previous_handlers.get(signum)
        if not callable(previous) and previous not in (
            signal_module.SIG_DFL, signal_module.SIG_IGN
        ):
            # A non-Python handler (or None) cannot be reinstalled;
            # fall back to the default disposition.
            previous = signal_module.SIG_DFL
        try:
            close()
        finally:
            signal_module.signal(signum, previous)
            os.kill(os.getpid(), signum)

    for signum in signals:
        previous_handlers[signum] = signal_module.getsignal(signum)
        signal_module.signal(signum, _handler)


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------


class _WorkerState:
    """Per-worker resolver + tag counters and the batch consume loop."""

    def __init__(self, clist_size: int, warmup: float,
                 collect_labels: bool, use_numpy: bool,
                 collect_flows: bool = False):
        self.resolver = DnsResolver(clist_size=clist_size)
        self.warmup = warmup
        self.use_numpy = use_numpy
        self.trace_start: Optional[float] = None
        self.hit_counts = [0] * _N_PROTO
        self.miss_counts = [0] * _N_PROTO
        self.warmup_skipped = 0
        self.empty_answers = 0
        self.events = 0
        self.flows = 0
        self.labels: Optional[Counter] = Counter() if collect_labels else None
        self.collect_flows = collect_flows
        self.tagged_batches: list[bytes] = []

    # -- batch-column precompute ------------------------------------------

    def _flow_columns(self, view: BatchView):
        """(fused keys, in-warm-up flags, protocol indexes) per flow."""
        if self.use_numpy:
            hot = _np.frombuffer(view.flow_hot, dtype=_FLOW_DT)
            starts = hot["start"]
            if self.trace_start is None:
                self.trace_start = float(starts[0])
            keys = ((hot["client"].astype(_np.uint64) << 32)
                    | hot["server"]).tolist()
            warm = ((starts - self.trace_start) < self.warmup).tolist()
            return keys, warm, hot["proto"].tolist()
        clients, servers, starts, protos = zip(
            *FLOW_HOT.iter_unpack(view.flow_hot)
        )
        if self.trace_start is None:
            self.trace_start = starts[0]
        trace_start = self.trace_start
        warmup = self.warmup
        keys = [(c << 32) | s for c, s in zip(clients, servers)]
        warm = [(s - trace_start) < warmup for s in starts]
        return keys, warm, protos

    def _dns_columns(self, view: BatchView):
        """(fused answer keys, answer counts, timestamps, name offsets)."""
        if self.use_numpy:
            hot = _np.frombuffer(view.dns_hot, dtype=_DNS_DT)
            answers = _np.frombuffer(view.dns_answers, dtype="<u4")
            n_arr = hot["n"]
            keys = ((_np.repeat(hot["client"].astype(_np.uint64), n_arr)
                     << 32) | answers.astype(_np.uint64)).tolist()
            offsets = _np.empty(len(hot) + 1, dtype=_np.int64)
            offsets[0] = 0
            _np.cumsum(hot["fl"], out=offsets[1:])
            return (keys, n_arr.tolist(), hot["ts"].tolist(),
                    offsets.tolist())
        clients, timestamps, counts, name_lens = zip(
            *DNS_HOT.iter_unpack(view.dns_hot)
        )
        answers = struct.unpack(
            f"<{len(view.dns_answers) // 4}I", view.dns_answers
        )
        keys = []
        append = keys.append
        a_pos = 0
        for client, n in zip(clients, counts):
            base = client << 32
            for server in answers[a_pos:a_pos + n]:
                append(base | server)
            a_pos += n
        offsets = [0]
        total = 0
        for length in name_lens:
            total += length
            offsets.append(total)
        return keys, list(counts), list(timestamps), offsets

    # -- the consume loop --------------------------------------------------

    def consume(self, buf) -> None:
        """Replay one batch through the fused resolver+tagger loop.

        Mirrors ``SnifferPipeline._process_events_flat`` — resolver
        state in locals, identical insert/lookup bodies — over codec
        columns instead of event objects.  Labels are kept as raw bytes
        (decoded only when reported); lookup results and every counter
        match the in-process loop exactly.
        """
        view = BatchView(buf)
        if view.n_flows:
            fkeys, fwarm, fproto = self._flow_columns(view)
        else:
            fkeys = fwarm = fproto = ()
        if view.n_dns:
            dkeys, dcounts, dtimes, name_offs = self._dns_columns(view)
            names = bytes(view.dns_names)
        else:
            dkeys = dcounts = dtimes = ()
            name_offs = (0,)
            names = b""

        resolver = self.resolver
        clist_size = resolver.clist_size
        key_to_slot = resolver._key_to_slot
        kget = key_to_slot.get
        ksetdefault = key_to_slot.setdefault
        fqdns = resolver._fqdns
        back_refs = resolver._back_refs
        inserted_at = resolver._inserted_at
        idx = resolver._next_slot
        used = resolver._used
        burned = resolver._burned
        responses = resolver._responses
        answer_count = resolver._answers
        replacements = resolver._replacements
        hits = resolver._hits
        hit_counts = self.hit_counts
        miss_counts = self.miss_counts
        warmup_skipped = self.warmup_skipped
        labels = self.labels
        # Attached label per flow (block order) when the worker emits
        # tagged-flow batches toward FlowDatabase.ingest_batch.
        flow_labels = (
            [None] * view.n_flows if self.collect_flows else None
        )
        empty = 0
        fpos = dpos = kpos = 0
        try:
            for flag in bytes(view.flags):
                if flag:
                    # -- DNS response: DnsResolver.insert, inlined ------
                    n = dcounts[dpos]
                    if not n:
                        # Empty responses stop at the sniffer, exactly
                        # like the in-process fused loop.
                        empty += 1
                        dpos += 1
                        continue
                    responses += 1
                    answer_count += n
                    refs = back_refs[idx]
                    if used == clist_size:
                        for key in refs:
                            if kget(key) == idx:
                                del key_to_slot[key]
                        refs.clear()
                    else:
                        used += 1
                        if refs is None:
                            refs = back_refs[idx] = []
                    burned += 1
                    fqdns[idx] = names[name_offs[dpos]:name_offs[dpos + 1]]
                    inserted_at[idx] = dtimes[dpos]
                    dpos += 1
                    if n == 1:
                        key = dkeys[kpos]
                        kpos += 1
                        old = ksetdefault(key, idx)
                        if old != idx:
                            replacements += 1
                            key_to_slot[key] = idx
                        refs.append(key)
                    else:
                        rapp = refs.append
                        stop = kpos + n
                        for key in dkeys[kpos:stop]:
                            old = kget(key)
                            if old is None:
                                key_to_slot[key] = idx
                                rapp(key)
                            elif old != idx:
                                replacements += 1
                                key_to_slot[key] = idx
                                rapp(key)
                        kpos = stop
                    idx += 1
                    if idx == clist_size:
                        idx = 0
                else:
                    # -- flow: DnsResolver.lookup + tagger, inlined -----
                    slot = kget(fkeys[fpos])
                    if slot is None:
                        if fwarm[fpos]:
                            warmup_skipped += 1
                        else:
                            miss_counts[fproto[fpos]] += 1
                    else:
                        hits += 1
                        if labels is not None:
                            labels[fqdns[slot]] += 1
                        if flow_labels is not None:
                            flow_labels[fpos] = fqdns[slot]
                        if fwarm[fpos]:
                            warmup_skipped += 1
                        else:
                            hit_counts[fproto[fpos]] += 1
                    fpos += 1
            if flow_labels is not None and view.n_flows:
                self.tagged_batches.append(
                    retag_flows(view, flow_labels)
                )
        finally:
            resolver._next_slot = idx
            resolver._used = used
            resolver._burned = burned
            resolver._responses = responses
            resolver._answers = answer_count
            resolver._replacements = replacements
            resolver._lookups += fpos
            resolver._hits = hits
            self.warmup_skipped = warmup_skipped
            self.empty_answers += empty
            self.events += fpos + dpos
            self.flows += fpos

    def report(self) -> dict:
        stats = self.resolver.stats
        labels = self.labels
        return {
            "resolver": (
                stats.responses, stats.answers, stats.lookups,
                stats.hits, stats.replacements, stats.overwrites,
            ),
            "hit_counts": list(self.hit_counts),
            "miss_counts": list(self.miss_counts),
            "warmup_skipped": self.warmup_skipped,
            "empty_answers": self.empty_answers,
            "events": self.events,
            "flows": self.flows,
            "labels": dict(labels) if labels is not None else None,
        }


if _np is not None:
    # Unaligned little-endian views of the codec's packed hot blocks.
    _FLOW_DT = _np.dtype(
        {"names": ["client", "server", "start", "proto"],
         "formats": ["<u4", "<u4", "<f8", "u1"],
         "offsets": [0, 4, 8, 16], "itemsize": FLOW_HOT.size})
    _DNS_DT = _np.dtype(
        {"names": ["client", "ts", "n", "fl"],
         "formats": ["<u4", "<f8", "u1", "<u2"],
         "offsets": [0, 4, 12, 13], "itemsize": DNS_HOT.size})


def _worker_main(conn, clist_size: int, warmup: float,
                 collect_labels: bool, use_numpy: bool,
                 collect_flows: bool = False) -> None:
    """Worker process loop: frames in, acks/reports out."""
    state = _WorkerState(clist_size, warmup, collect_labels, use_numpy,
                         collect_flows)
    try:
        while True:
            try:
                frame = conn.recv_bytes()
            except EOFError:
                return
            op = frame[:1]
            if op == _OP_BATCH:
                state.consume(memoryview(frame)[1:])
                conn.send_bytes(_ACK)
            elif op == _OP_TRACE:
                if state.trace_start is None:
                    (state.trace_start,) = _TS.unpack_from(frame, 1)
                conn.send_bytes(_ACK)
            elif op == _OP_FLUSH:
                conn.send(state.report())
            elif op == _OP_DRAIN:
                batches = state.tagged_batches
                state.tagged_batches = []
                conn.send(batches)
            elif op == _OP_RESET:
                state = _WorkerState(
                    clist_size, warmup, collect_labels, use_numpy,
                    collect_flows,
                )
                conn.send_bytes(_ACK)
            elif op == _OP_STOP:
                return
            else:
                raise FanoutError(f"unknown frame opcode {op!r}")
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------


@dataclass
class FanoutReport:
    """Merged statistics from all workers after a fan-out run."""

    processes: int
    events: int
    flows: int
    resolver_stats: ResolverStats
    tag_stats: TagStats
    empty_answers: int
    label_counts: Optional[Counter] = None
    worker_events: list[int] = field(default_factory=list)

    @property
    def tagged_flows(self) -> int:
        """Flows that received a label (== resolver lookup hits)."""
        return self.resolver_stats.hits

    def hit_ratio_by_protocol(self) -> dict[Protocol, float]:
        """Tab. 2 view: per-protocol tagging success after warm-up."""
        out = {}
        for protocol in Protocol:
            total = self.tag_stats.total(protocol)
            if total:
                out[protocol] = self.tag_stats.hit_ratio(protocol)
        return out

    def hit_counts_by_protocol(self) -> dict[Protocol, tuple[int, int]]:
        out = {}
        for protocol in Protocol:
            total = self.tag_stats.total(protocol)
            if total:
                out[protocol] = (self.tag_stats.hit_count(protocol), total)
        return out


class FanoutPipeline:
    """Partition events across worker processes, merge their statistics.

    Args:
        processes: worker count (the shard count).
        clist_size: total Clist budget, split evenly across workers
            (mirrors :class:`ShardedResolver`).
        warmup: statistics warm-up window in seconds.
        batch_events: events buffered per shard before a batch is
            encoded and dispatched.
        max_pending: bound on unacknowledged batches per worker — the
            streaming mode's queue depth; :meth:`feed` blocks when a
            worker falls this far behind.
        collect_labels: have workers histogram the labels they attach
            (`FanoutReport.label_counts`); costs one dict update per
            tagged flow.
        collect_flows: have workers re-encode every consumed flow —
            with its attached label — as tagged-flow codec batches for
            :meth:`drain_tagged_batches`, the zero-object-churn feed of
            ``FlowDatabase.ingest_batch`` (the Fig. 1 sniffer→database
            arrow).  Batches buffer in the workers until drained.
        start_method: multiprocessing start method (default ``fork``
            where available — workers inherit the warm interpreter).
        use_numpy: force the vectorised (True) or pure-struct (False)
            consume path; None auto-detects.
        flow_store: durable-ingest mode — a
            :class:`repro.analytics.storage.FlowStore` (or directory
            path, opened as one).  Implies ``collect_flows``; the feed
            paths drain the workers' tagged-flow batches into the
            store every ~64k events (worker buffers stay bounded and a
            crash mid-stream loses at most that window), every
            :meth:`collect` drains the remainder, and :meth:`close`
            seals the store's live tail.  All transfers are binary
            batches — worker→parent→disk with no ``FlowRecord`` churn.
    """

    def __init__(
        self,
        processes: int = 2,
        clist_size: int = 100_000,
        warmup: float = 300.0,
        batch_events: int = 8192,
        max_pending: int = 4,
        collect_labels: bool = False,
        collect_flows: bool = False,
        start_method: Optional[str] = None,
        use_numpy: Optional[bool] = None,
        flow_store=None,
    ):
        if processes <= 0:
            raise ValueError("processes must be positive")
        if batch_events <= 0:
            raise ValueError("batch_events must be positive")
        if max_pending <= 0:
            raise ValueError("max_pending must be positive")
        if use_numpy is None:
            use_numpy = _np is not None
        elif use_numpy and _np is None:
            raise ValueError("use_numpy=True but numpy is not importable")
        # Open (and possibly create on disk) the store only after every
        # knob validated — a rejected construction must not leave a
        # plausible empty store directory behind.
        if flow_store is not None:
            if not hasattr(flow_store, "ingest_batch"):
                from repro.analytics.storage import FlowStore

                flow_store = FlowStore(flow_store)
            collect_flows = True
        self.flow_store = flow_store
        #: Optional observability hook, ``hook(batches, rows)`` after
        #: every non-empty drain into the store (see
        #: ``SnifferPipeline.store_drain_hook``).  Must not raise.
        self.store_drain_hook = None
        # Feed-path durable-drain cadence: one worker round-trip per
        # ~64k dispatched events (0 disables; see _note_dispatch).
        self._drain_interval = (
            max(1, 65536 // batch_events)
            if flow_store is not None else 0
        )
        self._dispatches_since_drain = 0
        self.processes = processes
        self.clist_size = clist_size
        self.warmup = warmup
        self.batch_events = batch_events
        self.max_pending = max_pending
        self.collect_labels = collect_labels
        self.collect_flows = collect_flows
        self.use_numpy = use_numpy
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = start_method
        self._encoders = [BatchEncoder() for _ in range(processes)]
        self._conns: list = []
        self._procs: list = []
        self._pending = [0] * processes
        self._trace_start: Optional[float] = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def started(self) -> bool:
        return bool(self._procs)

    def start(self) -> "FanoutPipeline":
        """Spawn the worker pool (idempotent)."""
        if self.started:
            return self
        ctx = multiprocessing.get_context(self.start_method)
        per_worker = max(1, self.clist_size // self.processes)
        for index in range(self.processes):
            parent, child = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_worker_main,
                args=(child, per_worker, self.warmup,
                      self.collect_labels, self.use_numpy,
                      self.collect_flows),
                name=f"fanout-worker-{index}",
                daemon=True,
            )
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)
        return self

    def install_signal_handlers(self, signals=None) -> None:
        """Close the pool gracefully on SIGTERM/SIGINT (drain workers,
        seal the flow store), then re-deliver the signal — see
        :func:`install_shutdown_signals`."""
        install_shutdown_signals(self.close, signals)

    def close(self) -> None:
        """Stop all workers and reap them (idempotent).  With a
        ``flow_store`` attached, remaining tagged-flow batches are
        drained and the store's live tail is sealed first — but a
        failing drain (dead worker, full disk) must never skip the
        shutdown below, so the salvage is best-effort."""
        if not self.started:
            return
        if self.flow_store is not None:
            try:
                try:
                    self._drain_into_store()
                finally:
                    self.flow_store.flush()
            except (FanoutError, OSError, ValueError) as exc:
                # The pool must still be reaped, so don't raise — but a
                # durability failure (dead worker, full disk) must not
                # pass silently either.
                print(
                    f"warning: flow-store drain failed during close: "
                    f"{exc}",
                    file=sys.stderr,
                )
        for index, conn in enumerate(self._conns):
            try:
                while self._pending[index]:
                    conn.recv_bytes()
                    self._pending[index] -= 1
                conn.send_bytes(_OP_STOP)
            except (OSError, EOFError, BrokenPipeError):
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=5)
        self._conns = []
        self._procs = []
        self._pending = [0] * self.processes
        self._trace_start = None
        # Unflushed events must not leak into a later start()/collect().
        self._encoders = [BatchEncoder() for _ in range(self.processes)]

    def __enter__(self) -> "FanoutPipeline":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- frame plumbing ----------------------------------------------------

    def _worker_failed(self, index: int, cause: BaseException) -> FanoutError:
        proc = self._procs[index]
        proc.join(timeout=1)
        return FanoutError(
            f"fan-out worker {index} died "
            f"(exitcode {proc.exitcode}): {cause!r}"
        )

    def _recv_ack(self, index: int) -> None:
        try:
            reply = self._conns[index].recv_bytes()
        except (EOFError, OSError) as exc:
            raise self._worker_failed(index, exc) from exc
        if reply != _ACK:  # pragma: no cover - protocol bug guard
            raise FanoutError(f"worker {index} sent {reply!r}, wanted ack")
        self._pending[index] -= 1

    def _send_frame(self, index: int, frame) -> None:
        while self._pending[index] >= self.max_pending:
            self._recv_ack(index)
        try:
            self._conns[index].send_bytes(frame)
        except (BrokenPipeError, OSError) as exc:
            raise self._worker_failed(index, exc) from exc
        self._pending[index] += 1

    def _require_started(self) -> None:
        if not self.started:
            raise FanoutError("pool not started; call start() first")

    def send_encoded(self, shard: int, payload: bytes) -> None:
        """Dispatch an already-encoded codec batch to one worker.

        This is the pre-encoded ingest path: callers that persist or
        pre-shard binary batches (and the benchmark harness) push them
        here without touching event objects.
        """
        self._require_started()
        self._send_frame(shard, _OP_BATCH + payload)

    def set_trace_start(self, timestamp: float) -> None:
        """Broadcast the global first-flow timestamp to all workers.

        Workers seeing only their shard would otherwise anchor the
        warm-up window at their own first flow; the hint keeps the
        warm-up accounting identical to a single-process run.  The feed
        path sends it automatically; pre-encoded ingest must call it."""
        self._require_started()
        if self._trace_start is None:
            self._trace_start = timestamp
            frame = _OP_TRACE + _TS.pack(timestamp)
            for index in range(self.processes):
                self._send_frame(index, frame)

    def _dispatch(self, shard: int) -> None:
        encoder = self._encoders[shard]
        if len(encoder):
            self.send_encoded(shard, encoder.take())

    def _drain_into_store(self) -> None:
        """Move every buffered worker tagged-flow batch into the
        attached flow store (the single definition of the drain
        protocol, shared by the feed path, collect and close)."""
        batches = rows = 0
        for payload in self.drain_tagged_batches():
            rows += self.flow_store.ingest_batch(payload)
            batches += 1
        if batches and self.store_drain_hook is not None:
            self.store_drain_hook(batches, rows)

    def _note_dispatch(self) -> None:
        """Feed-path hook: every ``_drain_interval`` dispatched batches
        the workers' tagged-flow buffers are drained into the attached
        flow store, so buffers stay bounded and the capture is durable
        mid-stream.  Called only from the feed paths — never from
        :meth:`drain_tagged_batches`'s own flush, so it cannot recurse.
        """
        if not self._drain_interval:
            return
        self._dispatches_since_drain += 1
        if self._dispatches_since_drain >= self._drain_interval:
            self._dispatches_since_drain = 0
            self._drain_into_store()

    # -- feeding -----------------------------------------------------------

    def feed_dns(self, client_ip: int, fqdn: str, answers,
                 timestamp: float = 0.0, ttl: int = 300,
                 useless: bool = False) -> None:
        """Route one decoded DNS response to its shard."""
        self._require_started()
        shard = shard_of(client_ip, self.processes)
        encoder = self._encoders[shard]
        encoder.add_dns_fields(client_ip, fqdn, answers, timestamp,
                               ttl, useless)
        if len(encoder) >= self.batch_events:
            self._dispatch(shard)
            self._note_dispatch()

    def feed_flow(self, flow: FlowRecord) -> None:
        """Route one reconstructed flow to its shard."""
        self._require_started()
        if self._trace_start is None:
            self.set_trace_start(flow.start)
        shard = shard_of(flow.fid.client_ip, self.processes)
        encoder = self._encoders[shard]
        encoder.add_flow(flow)
        if len(encoder) >= self.batch_events:
            self._dispatch(shard)
            self._note_dispatch()

    def feed(self, event) -> None:
        """Route one event (DNS observation or flow record)."""
        if isinstance(event, DnsObservation):
            self.feed_dns(event.client_ip, event.fqdn, event.answers,
                          event.timestamp, event.ttl, event.useless)
        elif isinstance(event, FlowRecord):
            self.feed_flow(event)
        else:
            raise TypeError(
                f"unsupported event type {type(event).__name__}"
            )

    def feed_events(self, events: Iterable) -> None:
        for event in events:
            self.feed(event)

    def feed_event_runs(self, runs: Iterable) -> None:
        """Feed ``(is_dns, events)`` runs (``Trace.iter_event_runs``)."""
        for is_dns, events in runs:
            if is_dns:
                for event in events:
                    self.feed_dns(event.client_ip, event.fqdn,
                                  event.answers, event.timestamp,
                                  event.ttl, event.useless)
            else:
                for event in events:
                    self.feed_flow(event)

    def flush(self) -> None:
        """Dispatch all partially-filled shard batches."""
        self._require_started()
        for shard in range(self.processes):
            self._dispatch(shard)

    # -- collection --------------------------------------------------------

    def collect(self) -> FanoutReport:
        """Flush, then merge every worker's statistics (non-destructive:
        workers keep their state and the stream may continue).  With a
        ``flow_store`` attached, the workers' tagged-flow batches are
        drained into the store first."""
        if self.flow_store is not None:
            self._drain_into_store()
        self.flush()
        for index, conn in enumerate(self._conns):
            while self._pending[index]:
                self._recv_ack(index)
            try:
                conn.send_bytes(_OP_FLUSH)
            except (BrokenPipeError, OSError) as exc:
                raise self._worker_failed(index, exc) from exc
        reports = []
        for index, conn in enumerate(self._conns):
            try:
                reports.append(conn.recv())
            except (EOFError, OSError) as exc:
                raise self._worker_failed(index, exc) from exc
        return self._merge(reports)

    def drain_tagged_batches(self) -> list[bytes]:
        """Flush, then fetch (and clear) every worker's buffered
        tagged-flow batches, in shard order.

        Only meaningful with ``collect_flows=True`` (returns ``[]``
        otherwise).  Each payload is a flows-only codec batch carrying
        the labels the workers attached — feed them to
        ``FlowDatabase.ingest_batch``.  Statistics are unaffected;
        workers keep their resolver state and the stream may continue.
        """
        self.flush()
        for index, conn in enumerate(self._conns):
            while self._pending[index]:
                self._recv_ack(index)
            try:
                conn.send_bytes(_OP_DRAIN)
            except (BrokenPipeError, OSError) as exc:
                raise self._worker_failed(index, exc) from exc
        batches: list[bytes] = []
        for index, conn in enumerate(self._conns):
            try:
                batches.extend(conn.recv())
            except (EOFError, OSError) as exc:
                raise self._worker_failed(index, exc) from exc
        return batches

    def reset(self) -> None:
        """Drop all worker state (a fresh pipeline without respawning)."""
        self._require_started()
        self._trace_start = None
        for index in range(self.processes):
            self._encoders[index] = BatchEncoder()
            self._send_frame(index, _OP_RESET)
        for index in range(self.processes):
            while self._pending[index]:
                self._recv_ack(index)

    def _merge(self, reports: list[dict]) -> FanoutReport:
        resolver_stats = ResolverStats()
        tag_stats = TagStats()
        empty_answers = 0
        events = 0
        flows = 0
        labels: Optional[Counter] = (
            Counter() if self.collect_labels else None
        )
        worker_events = []
        for report in reports:
            resolver_stats.merge(ResolverStats(*report["resolver"]))
            for index, count in enumerate(report["hit_counts"]):
                if count:
                    protocol = PROTOCOLS[index]
                    tag_stats.hits[protocol] = (
                        tag_stats.hits.get(protocol, 0) + count
                    )
            for index, count in enumerate(report["miss_counts"]):
                if count:
                    protocol = PROTOCOLS[index]
                    tag_stats.misses[protocol] = (
                        tag_stats.misses.get(protocol, 0) + count
                    )
            tag_stats.warmup_skipped += report["warmup_skipped"]
            empty_answers += report["empty_answers"]
            events += report["events"]
            flows += report["flows"]
            worker_events.append(report["events"])
            if labels is not None and report["labels"]:
                for raw, count in report["labels"].items():
                    labels[raw.decode("utf-8")] += count
        return FanoutReport(
            processes=self.processes,
            events=events,
            flows=flows,
            resolver_stats=resolver_stats,
            tag_stats=tag_stats,
            empty_answers=empty_answers,
            label_counts=labels,
            worker_events=worker_events,
        )

    # -- one-shot offline mode --------------------------------------------

    def run_events(self, events: Iterable) -> FanoutReport:
        """Offline mode: start, feed the whole stream, merge, shut down."""
        if self.started:
            raise FanoutError(
                "run_events owns the pool lifecycle; "
                "use feed/collect on an already-started pipeline"
            )
        self.start()
        try:
            self.feed_events(events)
            return self.collect()
        finally:
            self.close()

    def run_event_runs(self, runs: Iterable) -> FanoutReport:
        """Offline mode over ``Trace.iter_event_runs()`` output."""
        if self.started:
            raise FanoutError(
                "run_event_runs owns the pool lifecycle; "
                "use feed/collect on an already-started pipeline"
            )
        self.start()
        try:
            self.feed_event_runs(runs)
            return self.collect()
        finally:
            self.close()

    def run_trace(self, trace) -> FanoutReport:
        """Offline mode over a simulation trace object."""
        return self.run_event_runs(trace.iter_event_runs())

    # -- pre-encoded ingest helpers ---------------------------------------

    @staticmethod
    def encode_shards(
        events: Iterable, processes: int, batch_events: int = 8192
    ) -> list[list[bytes]]:
        """Partition an event stream and encode per-shard batch buffers.

        The returned payloads are what :meth:`send_encoded` consumes —
        the interpreter-independent ingest format that can be prepared
        once (or persisted) and drained many times.
        """
        if processes <= 0:
            raise ValueError("processes must be positive")
        shards: list[list] = [[] for _ in range(processes)]
        for event in events:
            if isinstance(event, DnsObservation):
                shards[shard_of(event.client_ip, processes)].append(event)
            elif isinstance(event, FlowRecord):
                shards[
                    shard_of(event.fid.client_ip, processes)
                ].append(event)
            else:
                raise TypeError(
                    f"unsupported event type {type(event).__name__}"
                )
        return [
            [
                encode_events(shard[pos:pos + batch_events])
                for pos in range(0, len(shard), batch_events)
            ]
            for shard in shards
        ]
