"""DN-Hunter's real-time sniffer component (Sec. 3 of the paper).

The pieces mirror Fig. 1 of the paper:

* :class:`~repro.sniffer.resolver.DnsResolver` — the replica of the
  clients' DNS caches built from sniffed responses (Algorithm 1);
* :class:`~repro.sniffer.dns_sniffer.DnsResponseSniffer` — decodes DNS
  responses off the wire and feeds the resolver;
* :class:`~repro.sniffer.flow_sniffer.FlowSniffer` — rebuilds layer-4
  flows from packets;
* :class:`~repro.sniffer.tagger.FlowTagger` — attaches the FQDN label to
  each flow;
* :class:`~repro.sniffer.policy.PolicyEnforcer` — applies block /
  prioritize / rate-limit rules on tagged flows (and *before* the flow
  starts, using the DNS response alone);
* :class:`~repro.sniffer.pipeline.SnifferPipeline` — wires everything
  together for both the packet path and the fast event path;
* :class:`~repro.sniffer.fanout.FanoutPipeline` — partitions the event
  stream by client IP across worker processes fed by the binary batch
  codec of :mod:`repro.sniffer.eventcodec` and merges their statistics.
"""

from repro.sniffer.resolver import DnsResolver, ResolverStats, fuse_key
from repro.sniffer.dns_sniffer import DnsResponseSniffer
from repro.sniffer.fanout import FanoutPipeline, FanoutReport
from repro.sniffer.flow_sniffer import FlowSniffer
from repro.sniffer.tagger import FlowTagger
from repro.sniffer.policy import (
    PolicyAction,
    PolicyDecision,
    PolicyEnforcer,
    PolicyRule,
)
from repro.sniffer.pipeline import SnifferPipeline

__all__ = [
    "DnsResolver",
    "ResolverStats",
    "fuse_key",
    "DnsResponseSniffer",
    "FanoutPipeline",
    "FanoutReport",
    "FlowSniffer",
    "FlowTagger",
    "PolicyAction",
    "PolicyDecision",
    "PolicyEnforcer",
    "PolicyRule",
    "SnifferPipeline",
]
