"""Reference DNS Resolver — the seed implementation of Algorithm 1.

This module is the original object-per-slot resolver, retained verbatim
as the behavioural oracle for the optimised flat-key resolver in
:mod:`repro.sniffer.resolver`.  It is used by

* the differential property tests (``tests/test_resolver_differential.py``),
  which assert that the fast resolver returns identical lookup results
  and statistics over long random operation streams, and
* ``benchmarks/run_bench.py``, which measures the seed-vs-fast speedup
  recorded in ``BENCH_*.json``.

Do not optimise this module: its value is being a direct transcription
of the paper's Algorithm 1 with no performance tricks.

The resolver is a replica of the monitored clients' DNS caches built
purely from sniffed responses.  Design constraints from the paper:

* FQDN entries live in a FIFO **circular list** (``Clist``) of fixed size
  ``L`` — no garbage collection, old entries are overwritten in insertion
  order, and ``L`` bounds the effective caching time (Sec. 6);
* lookup is two nested maps: ``clientIP -> (serverIP -> entry)``, i.e.
  O(log N_C + log N_S(c)) in the paper's balanced-tree implementation and
  O(1) expected here with hash maps (the paper notes hash tables are fine);
* a DNS response lists several server addresses — **every** address is
  linked to the same entry;
* when a serverIP key already points at an older entry for the same
  client, the link is replaced (last-written-wins; the "confusion" the
  paper quantifies at <4% in Sec. 6);
* when the circular list wraps, the overwritten entry's back-references
  are removed from the maps so the tables never hold dangling keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sniffer.resolver import ResolverStats


@dataclass(slots=True)
class _DnEntry:
    """One Clist slot: a FQDN plus back-references into the lookup maps.

    ``back_refs`` stores (clientIP, serverIP) key pairs that currently
    point at this entry, enabling O(degree) unlinking on overwrite —
    the ``deleteBackreferences`` of Algorithm 1.
    """

    fqdn: str = ""
    inserted_at: float = 0.0
    back_refs: list[tuple[int, int]] = field(default_factory=list)
    live: bool = False


class DnsResolver:
    """Replica of client DNS caches keyed by (clientIP, serverIP).

    Args:
        clist_size: ``L``, the circular-list capacity.  The paper sizes
            this so entries survive about one hour at peak DNS rate
            (~2.1M for 350k responses/10min); scale to the trace.
        multi_label_depth: when > 0, superseded labels for a live
            (client, server) key are retained (most recent first) and
            exposed via :meth:`lookup_all` — the "return all possible
            labels" extension the paper sketches in Sec. 6 for the
            shared-server confusion case.

    The structure is deliberately identical to Algorithm 1 so the
    dimensioning experiments measure the real mechanism: a FIFO slot
    array plus per-client maps with back-reference cleanup.
    """

    def __init__(self, clist_size: int = 100_000, multi_label_depth: int = 0):
        if clist_size <= 0:
            raise ValueError("clist_size must be positive")
        if multi_label_depth < 0:
            raise ValueError("multi_label_depth must be >= 0")
        self.clist_size = clist_size
        self.multi_label_depth = multi_label_depth
        self._clist: list[_DnEntry] = [_DnEntry() for _ in range(clist_size)]
        self._next_slot = 0
        self._map_client: dict[int, dict[int, _DnEntry]] = {}
        self._history: dict[tuple[int, int], list[str]] = {}
        self.stats = ResolverStats()

    # -- INSERT (Algorithm 1, lines 1-25) --------------------------------

    def insert(
        self,
        client_ip: int,
        fqdn: str,
        answers: list[int],
        timestamp: float = 0.0,
    ) -> None:
        """Record a sniffed DNS response.

        ``answers`` is the full answer list; each server address becomes a
        lookup key pointing at the single new entry.
        """
        self.stats.responses += 1
        self.stats.answers += len(answers)
        if not answers:
            return
        # insert next entry in circular array, evicting the old occupant
        slot = self._clist[self._next_slot]
        if slot.live:
            self._unlink(slot)
            self.stats.overwrites += 1
        slot.fqdn = fqdn
        slot.inserted_at = timestamp
        slot.live = True
        self._next_slot = (self._next_slot + 1) % self.clist_size

        map_server = self._map_client.get(client_ip)
        if map_server is None:
            map_server = {}
            self._map_client[client_ip] = map_server
        seen: set[int] = set()
        for server_ip in answers:
            if server_ip in seen:  # duplicate A records in one response
                continue
            seen.add(server_ip)
            old = map_server.get(server_ip)
            if old is not None and old is not slot:
                # replace old references (lines 11-15)
                try:
                    old.back_refs.remove((client_ip, server_ip))
                except ValueError:
                    pass
                self.stats.replacements += 1
                if self.multi_label_depth and old.fqdn != fqdn:
                    history = self._history.setdefault(
                        (client_ip, server_ip), []
                    )
                    if old.fqdn in history:
                        history.remove(old.fqdn)
                    history.insert(0, old.fqdn)
                    del history[self.multi_label_depth:]
            map_server[server_ip] = slot
            slot.back_refs.append((client_ip, server_ip))

    def _unlink(self, entry: _DnEntry) -> None:
        """Remove every map key pointing at ``entry`` (deleteBackreferences)."""
        for client_ip, server_ip in entry.back_refs:
            map_server = self._map_client.get(client_ip)
            if map_server is None:
                continue
            if map_server.get(server_ip) is entry:
                del map_server[server_ip]
                self._history.pop((client_ip, server_ip), None)
                if not map_server:
                    del self._map_client[client_ip]
        entry.back_refs.clear()
        entry.live = False

    # -- LOOKUP (Algorithm 1, lines 27-34) -------------------------------

    def lookup(self, client_ip: int, server_ip: int) -> Optional[str]:
        """Return the FQDN ``client_ip`` resolved for ``server_ip``, if known."""
        self.stats.lookups += 1
        map_server = self._map_client.get(client_ip)
        if map_server is None:
            return None
        entry = map_server.get(server_ip)
        if entry is None:
            return None
        self.stats.hits += 1
        return entry.fqdn

    def peek(self, client_ip: int, server_ip: int) -> Optional[str]:
        """Like :meth:`lookup` but without touching statistics."""
        map_server = self._map_client.get(client_ip)
        if map_server is None:
            return None
        entry = map_server.get(server_ip)
        return entry.fqdn if entry else None

    def lookup_all(self, client_ip: int, server_ip: int) -> list[str]:
        """All candidate labels for the key, most recent first.

        The first element is what :meth:`lookup` returns; the rest are
        superseded labels still plausible for the shared server (only
        populated when ``multi_label_depth > 0``).
        """
        current = self.peek(client_ip, server_ip)
        if current is None:
            return []
        labels = [current]
        for fqdn in self._history.get((client_ip, server_ip), ()):
            if fqdn not in labels:
                labels.append(fqdn)
        return labels

    # -- introspection ----------------------------------------------------

    @property
    def client_count(self) -> int:
        """Number of distinct clients currently tracked (N_C)."""
        return len(self._map_client)

    def server_count(self, client_ip: int) -> int:
        """Number of server keys for one client (N_S(c))."""
        return len(self._map_client.get(client_ip, ()))

    @property
    def live_entries(self) -> int:
        """Number of occupied Clist slots."""
        return sum(1 for entry in self._clist if entry.live)

    def oldest_entry_age(self, now: float) -> Optional[float]:
        """Age of the oldest live entry — the effective caching horizon."""
        ages = [
            now - entry.inserted_at for entry in self._clist if entry.live
        ]
        return max(ages) if ages else None

    def check_invariants(self) -> None:
        """Assert map/Clist consistency; used by property-based tests.

        Every map value must be a live entry that back-references the
        exact (client, server) key pair, and every back-reference of a
        live entry must exist in the maps.
        """
        for client_ip, map_server in self._map_client.items():
            for server_ip, entry in map_server.items():
                assert entry.live, "map points at dead entry"
                assert (client_ip, server_ip) in entry.back_refs, (
                    "map key missing from entry back_refs"
                )
        for entry in self._clist:
            if not entry.live:
                continue
            for client_ip, server_ip in entry.back_refs:
                current = self._map_client.get(client_ip, {}).get(server_ip)
                # A back-ref may have been superseded by a newer entry for
                # the same key; then the map must point at that newer entry.
                assert current is not None, "dangling back-reference"
