"""Policy enforcer: FQDN-based traffic control (Sec. 1 and 3.1).

The paper's motivating scenario: block ``zynga.com`` but prioritize
``dropbox.com`` even though both resolve to Amazon EC2 addresses, and do
it *before* the flow starts — the DNS response alone announces the
upcoming (clientIP, serverIP) pair, so the enforcer can pre-install a
decision covering even the TCP handshake packets.

Rules match FQDN glob-ish patterns (``*.zynga.com``, ``mail.google.com``)
and/or layer-4 ports; first match wins, default is ALLOW.
"""

from __future__ import annotations

import enum
import fnmatch
from dataclasses import dataclass, field
from typing import Optional

from repro.net.flow import DnsObservation, FlowRecord


class PolicyAction(enum.Enum):
    """What to do with a matching flow."""

    ALLOW = "allow"
    BLOCK = "block"
    PRIORITIZE = "prioritize"
    DEPRIORITIZE = "deprioritize"
    RATE_LIMIT = "rate-limit"


@dataclass(frozen=True, slots=True)
class PolicyRule:
    """One policy entry.

    Args:
        pattern: FQDN pattern; ``*`` wildcards allowed.  A bare domain
            such as ``zynga.com`` also matches every subdomain.
        action: decision to take.
        dst_port: optional port constraint.
        rate_kbps: the cap for RATE_LIMIT rules.
    """

    pattern: str
    action: PolicyAction
    dst_port: Optional[int] = None
    rate_kbps: Optional[int] = None

    def matches_fqdn(self, fqdn: str) -> bool:
        name = fqdn.lower().rstrip(".")
        pattern = self.pattern.lower()
        if fnmatch.fnmatchcase(name, pattern):
            return True
        if "*" not in pattern and name.endswith("." + pattern):
            return True
        return False

    def matches(self, fqdn: Optional[str], dst_port: Optional[int]) -> bool:
        if self.dst_port is not None and dst_port != self.dst_port:
            return False
        if fqdn is None:
            return False
        return self.matches_fqdn(fqdn)


@dataclass(slots=True)
class PolicyDecision:
    """The enforcer's verdict for one flow (or upcoming flow)."""

    action: PolicyAction
    rule: Optional[PolicyRule] = None
    preinstalled: bool = False

    @property
    def allows(self) -> bool:
        return self.action is not PolicyAction.BLOCK


@dataclass
class PolicyEnforcer:
    """Ordered rule list with pre-flow decision installation.

    ``on_dns_response`` is the paper's "identify flows even before the
    flows begin": for every (clientIP, serverIP) in a response whose FQDN
    matches a rule, the decision is cached so the very first SYN of the
    upcoming flow already has a verdict.
    """

    rules: list[PolicyRule] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._preinstalled: dict[tuple[int, int], PolicyDecision] = {}
        self.stats = {
            "decisions": 0,
            "blocked": 0,
            "prioritized": 0,
            "preinstalled_used": 0,
        }

    def add_rule(self, rule: PolicyRule) -> None:
        """Append a rule (first match wins, so order is precedence)."""
        self.rules.append(rule)

    def _match(
        self, fqdn: Optional[str], dst_port: Optional[int]
    ) -> PolicyDecision:
        for rule in self.rules:
            if rule.matches(fqdn, dst_port):
                return PolicyDecision(action=rule.action, rule=rule)
        return PolicyDecision(action=PolicyAction.ALLOW)

    def on_dns_response(self, observation: DnsObservation) -> None:
        """Pre-install decisions for every announced server address."""
        decision = self._match(observation.fqdn, None)
        if decision.rule is None:
            return
        for server_ip in observation.answers:
            self._preinstalled[(observation.client_ip, server_ip)] = (
                PolicyDecision(
                    action=decision.action,
                    rule=decision.rule,
                    preinstalled=True,
                )
            )

    def decide(self, flow: FlowRecord) -> PolicyDecision:
        """Decide for a (possibly tagged) flow.

        A tagged flow is judged by its own label — the label is the
        authoritative signal, and letting a stale (clientIP, serverIP)
        verdict override it would wrongly block *other* services sharing
        the same cloud address.  Pre-installed verdicts apply to flows
        the tagger could not label (e.g. the resolver missed the
        response), which is exactly the case where acting on the DNS
        announcement is the only option.
        """
        self.stats["decisions"] += 1
        if flow.fqdn is not None:
            decision = self._match(flow.fqdn, flow.fid.dst_port)
        else:
            key = (flow.fid.client_ip, flow.fid.server_ip)
            decision = self._preinstalled.get(key)
            if decision is not None:
                self.stats["preinstalled_used"] += 1
            else:
                decision = self._match(None, flow.fid.dst_port)
        if decision.action is PolicyAction.BLOCK:
            self.stats["blocked"] += 1
        elif decision.action is PolicyAction.PRIORITIZE:
            self.stats["prioritized"] += 1
        return decision

    def preinstalled_count(self) -> int:
        """Number of (client, server) pairs with a standing decision."""
        return len(self._preinstalled)
