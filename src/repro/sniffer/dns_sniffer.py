"""DNS response sniffer: from wire bytes (or events) into the resolver.

The sniffer watches UDP port 53 traffic, decodes response messages, and
feeds (clientIP, FQDN, answer list) into the :class:`DnsResolver`.  The
FQDN recorded is the **queried** name (the question section), not any
CNAME target — that is what makes DN-Hunter labels more specific than
reverse lookups (Sec. 3.1.3): the client asked for
``mail.google.com`` even if the answer chain ends at a CDN node.

Packet decoding is two-tier: the zero-copy
:func:`~repro.dns.wire.decode_response_addresses` fast path handles the
dominant shape on the wire (single-question, all-A responses) without
building message objects; everything else falls back to the general
:func:`~repro.dns.wire.decode_message` decoder so queries, CNAME chains
and malformed buffers are classified exactly as before.
"""

from __future__ import annotations

from typing import Optional

from repro.dns.wire import (
    DnsWireError,
    decode_message,
    decode_response_addresses,
)
from repro.net.flow import DnsObservation
from repro.net.packet import Packet
from repro.sniffer.resolver import DnsResolver

DNS_PORT = 53


class DnsResponseSniffer:
    """Decode DNS responses and maintain the resolver replica.

    Args:
        resolver: the shared :class:`DnsResolver` (or any object with
            the same insert/lookup surface, e.g. ``ShardedResolver``).
        monitored_clients: optional set of client addresses; responses to
            other destinations are ignored (a PoP monitor only replicates
            the caches of its own customers).
    """

    def __init__(
        self,
        resolver: DnsResolver,
        monitored_clients: Optional[set[int]] = None,
    ):
        self.resolver = resolver
        self.monitored_clients = monitored_clients
        self.stats = {
            "packets": 0,
            "decoded": 0,
            "fast_path": 0,
            "queries_ignored": 0,
            "decode_errors": 0,
            "foreign_client": 0,
            "empty_answers": 0,
        }

    def feed_packet(self, packet: Packet) -> Optional[DnsObservation]:
        """Consume one UDP packet; return the observation if it was a
        response we recorded."""
        udp = packet.udp
        if udp is None:
            return None
        if udp.src_port != DNS_PORT and udp.dst_port != DNS_PORT:
            return None
        stats = self.stats
        stats["packets"] += 1
        payload = packet.payload
        try:
            fast = decode_response_addresses(payload)
        except DnsWireError:
            stats["decode_errors"] += 1
            return None
        if fast is not None:
            stats["decoded"] += 1
            stats["fast_path"] += 1
            client_ip = packet.ipv4.dst  # responses flow server -> client
            if (
                self.monitored_clients is not None
                and client_ip not in self.monitored_clients
            ):
                stats["foreign_client"] += 1
                return None
            fqdn, addresses, ttl = fast
            observation = DnsObservation(
                timestamp=packet.timestamp,
                client_ip=client_ip,
                fqdn=fqdn,
                answers=addresses,
                ttl=ttl,
            )
            return self.feed_observation(observation)
        # General path: queries, non-A answers, odd or hostile messages.
        try:
            message = decode_message(payload)
        except DnsWireError:
            stats["decode_errors"] += 1
            return None
        stats["decoded"] += 1
        if not message.header.is_response:
            stats["queries_ignored"] += 1
            return None
        client_ip = packet.ipv4.dst
        if (
            self.monitored_clients is not None
            and client_ip not in self.monitored_clients
        ):
            stats["foreign_client"] += 1
            return None
        try:
            fqdn = message.question_name
        except ValueError:
            stats["decode_errors"] += 1
            return None
        addresses = message.a_addresses()
        observation = DnsObservation(
            timestamp=packet.timestamp,
            client_ip=client_ip,
            fqdn=fqdn,
            answers=addresses,
            ttl=message.min_answer_ttl(),
        )
        return self.feed_observation(observation)

    def feed_observation(
        self, observation: DnsObservation
    ) -> Optional[DnsObservation]:
        """Fast path: consume an already-decoded response."""
        if (
            self.monitored_clients is not None
            and observation.client_ip not in self.monitored_clients
        ):
            self.stats["foreign_client"] += 1
            return None
        if not observation.answers:
            self.stats["empty_answers"] += 1
            return None
        self.resolver.insert(
            client_ip=observation.client_ip,
            fqdn=observation.fqdn,
            answers=observation.answers,
            timestamp=observation.timestamp,
        )
        return observation
