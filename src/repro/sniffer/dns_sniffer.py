"""DNS response sniffer: from wire bytes (or events) into the resolver.

The sniffer watches UDP port 53 traffic, decodes response messages, and
feeds (clientIP, FQDN, answer list) into the :class:`DnsResolver`.  The
FQDN recorded is the **queried** name (the question section), not any
CNAME target — that is what makes DN-Hunter labels more specific than
reverse lookups (Sec. 3.1.3): the client asked for
``mail.google.com`` even if the answer chain ends at a CDN node.
"""

from __future__ import annotations

from typing import Optional

from repro.dns.wire import DnsWireError, decode_message
from repro.net.flow import DnsObservation
from repro.net.packet import Packet
from repro.sniffer.resolver import DnsResolver

DNS_PORT = 53


class DnsResponseSniffer:
    """Decode DNS responses and maintain the resolver replica.

    Args:
        resolver: the shared :class:`DnsResolver` instance.
        monitored_clients: optional set of client addresses; responses to
            other destinations are ignored (a PoP monitor only replicates
            the caches of its own customers).
    """

    def __init__(
        self,
        resolver: DnsResolver,
        monitored_clients: Optional[set[int]] = None,
    ):
        self.resolver = resolver
        self.monitored_clients = monitored_clients
        self.stats = {
            "packets": 0,
            "decoded": 0,
            "queries_ignored": 0,
            "decode_errors": 0,
            "foreign_client": 0,
            "empty_answers": 0,
        }

    def feed_packet(self, packet: Packet) -> Optional[DnsObservation]:
        """Consume one UDP packet; return the observation if it was a
        response we recorded."""
        if packet.udp is None:
            return None
        if packet.udp.src_port != DNS_PORT and packet.udp.dst_port != DNS_PORT:
            return None
        self.stats["packets"] += 1
        try:
            message = decode_message(packet.payload)
        except DnsWireError:
            self.stats["decode_errors"] += 1
            return None
        self.stats["decoded"] += 1
        if not message.header.is_response:
            self.stats["queries_ignored"] += 1
            return None
        client_ip = packet.ipv4.dst  # responses flow server -> client
        if (
            self.monitored_clients is not None
            and client_ip not in self.monitored_clients
        ):
            self.stats["foreign_client"] += 1
            return None
        try:
            fqdn = message.question_name
        except ValueError:
            self.stats["decode_errors"] += 1
            return None
        addresses = message.a_addresses()
        observation = DnsObservation(
            timestamp=packet.timestamp,
            client_ip=client_ip,
            fqdn=fqdn,
            answers=addresses,
            ttl=message.min_answer_ttl(),
        )
        return self.feed_observation(observation)

    def feed_observation(
        self, observation: DnsObservation
    ) -> Optional[DnsObservation]:
        """Fast path: consume an already-decoded response."""
        if (
            self.monitored_clients is not None
            and observation.client_ip not in self.monitored_clients
        ):
            self.stats["foreign_client"] += 1
            return None
        if not observation.answers:
            self.stats["empty_answers"] += 1
            return None
        self.resolver.insert(
            client_ip=observation.client_ip,
            fqdn=observation.fqdn,
            answers=observation.answers,
            timestamp=observation.timestamp,
        )
        return observation
