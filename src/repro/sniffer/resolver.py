"""The DNS Resolver — DN-Hunter's key data structure (Sec. 3.1.1, Alg. 1).

The resolver is a replica of the monitored clients' DNS caches built
purely from sniffed responses.  Design constraints from the paper:

* FQDN entries live in a FIFO **circular list** (``Clist``) of fixed size
  ``L`` — no garbage collection, old entries are overwritten in insertion
  order, and ``L`` bounds the effective caching time (Sec. 6);
* a DNS response lists several server addresses — **every** address is
  linked to the same entry;
* when a (clientIP, serverIP) key already points at an older entry, the
  link is replaced (last-written-wins; the "confusion" the paper
  quantifies at <4% in Sec. 6);
* when the circular list wraps, the overwritten entry's back-references
  are removed from the map so the table never holds dangling keys.

This is the *flat-key* implementation, tuned so the sniffer keeps up
with the wire (the paper's engineering constraint: one insert per DNS
response, one lookup per flow, at line rate):

* the paper's nested ``clientIP -> (serverIP -> entry)`` maps are
  collapsed into **one** hash map keyed by the 64-bit integer
  ``(client_ip << 32) | server_ip`` — one probe per lookup instead of
  two, no tuple allocation per event;
* the Clist is not a ring of per-slot objects but **parallel arrays**
  (``_fqdns: list[str]``, ``_inserted_at: array('d')`` and a per-slot
  back-reference key list), so building an ``L = 2.1M`` resolver (the
  paper's one-hour sizing) allocates no per-entry Python objects;
* back-references use *check-on-evict* semantics: a replaced link is
  left in the old slot's key list and simply skipped at eviction time
  when the map no longer points at that slot — replacement does no
  list surgery on the hot path;
* ``overwrites`` and ``live_entries`` are derived from two integers
  (slots burned, slots in use) instead of per-event bookkeeping or an
  O(L) scan.

Observable behaviour (lookup results and statistics) is identical to
Algorithm 1 as transcribed in :mod:`repro.sniffer.resolver_reference`;
``tests/test_resolver_differential.py`` enforces this over long random
operation streams.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Iterable, Optional


def fuse_key(client_ip: int, server_ip: int) -> int:
    """Fuse a (clientIP, serverIP) pair into the resolver's 64-bit key.

    Callers that probe the same pair repeatedly (per-page flow bursts,
    policy re-checks) should fuse once and use
    :meth:`DnsResolver.lookup_key` — the fusion is the only per-call
    allocation on the probe path.
    """
    return (client_ip << 32) | server_ip


@dataclass
class ResolverStats:
    """Counters for dimensioning studies (Sec. 6)."""

    responses: int = 0
    answers: int = 0
    lookups: int = 0
    hits: int = 0
    replacements: int = 0
    overwrites: int = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups that found a label."""
        return self.hits / self.lookups if self.lookups else 0.0

    def merge(self, other: "ResolverStats") -> "ResolverStats":
        """Accumulate ``other``'s counters into this snapshot (in place).

        Used to aggregate per-shard statistics; returns ``self`` so the
        call chains.
        """
        self.responses += other.responses
        self.answers += other.answers
        self.lookups += other.lookups
        self.hits += other.hits
        self.replacements += other.replacements
        self.overwrites += other.overwrites
        return self

    __iadd__ = merge


class DnsResolver:
    """Replica of client DNS caches keyed by ``(clientIP << 32) | serverIP``.

    Args:
        clist_size: ``L``, the circular-list capacity.  The paper sizes
            this so entries survive about one hour at peak DNS rate
            (~2.1M for 350k responses/10min); scale to the trace.
        multi_label_depth: when > 0, superseded labels for a live
            (client, server) key are retained (most recent first) and
            exposed via :meth:`lookup_all` — the "return all possible
            labels" extension the paper sketches in Sec. 6 for the
            shared-server confusion case.

    Statistics are kept as plain integers on the instance and exposed
    as a :class:`ResolverStats` snapshot through :attr:`stats`; hold on
    to counters, not to the snapshot object.
    """

    __slots__ = (
        "clist_size",
        "multi_label_depth",
        "_fqdns",
        "_inserted_at",
        "_back_refs",
        "_key_to_slot",
        "_history",
        "_next_slot",
        "_used",
        "_burned",
        "_responses",
        "_answers",
        "_lookups",
        "_hits",
        "_replacements",
    )

    def __init__(self, clist_size: int = 100_000, multi_label_depth: int = 0):
        if clist_size <= 0:
            raise ValueError("clist_size must be positive")
        if multi_label_depth < 0:
            raise ValueError("multi_label_depth must be >= 0")
        self.clist_size = clist_size
        self.multi_label_depth = multi_label_depth
        # Parallel Clist arrays — no per-slot objects.  Back-reference
        # lists are created lazily the first time a slot is burned, so a
        # paper-scale resolver costs three flat allocations up front.
        self._fqdns: list[Optional[str]] = [None] * clist_size
        self._inserted_at = array("d", bytes(8 * clist_size))
        self._back_refs: list[Optional[list[int]]] = [None] * clist_size
        self._key_to_slot: dict[int, int] = {}
        self._history: dict[int, list[str]] = {}
        self._next_slot = 0
        self._used = 0      # slots holding a live entry (== live_entries)
        self._burned = 0    # total inserts that consumed a slot
        self._responses = 0
        self._answers = 0
        self._lookups = 0
        self._hits = 0
        self._replacements = 0

    # -- INSERT (Algorithm 1, lines 1-25) --------------------------------

    def insert(
        self,
        client_ip: int,
        fqdn: str,
        answers: list[int],
        timestamp: float = 0.0,
    ) -> None:
        """Record a sniffed DNS response.

        ``answers`` is the full answer list; each distinct server address
        becomes a lookup key pointing at the single new entry.  The
        answer list is deduplicated *before* a Clist slot is consumed, so
        a degenerate response whose answers collapse to nothing never
        burns a slot.
        """
        self._responses += 1
        n = len(answers)
        self._answers += n
        if not n:
            return
        if self.multi_label_depth:
            self._insert_multilabel(client_ip, fqdn, answers, timestamp)
            return
        key_to_slot = self._key_to_slot
        idx = self._next_slot
        refs = self._back_refs[idx]
        if self._used == self.clist_size:
            # Evict the slot's entry: drop every map key still pointing
            # here (deleteBackreferences).  Keys superseded by a newer
            # entry were left in place at replacement time and are
            # skipped by the identity check.
            kget = key_to_slot.get
            for key in refs:
                if kget(key) == idx:
                    del key_to_slot[key]
            refs.clear()
        else:
            self._used += 1
            if refs is None:
                refs = self._back_refs[idx] = []
        self._burned += 1
        self._fqdns[idx] = fqdn
        self._inserted_at[idx] = timestamp
        nxt = idx + 1
        self._next_slot = 0 if nxt == self.clist_size else nxt
        base = client_ip << 32
        if n == 1:
            # Single-answer fast lane: no duplicates possible, a lone
            # setdefault covers both the fresh-link and replace cases.
            key = base | answers[0]
            old = key_to_slot.setdefault(key, idx)
            if old != idx:
                self._replacements += 1
                key_to_slot[key] = idx
            refs.append(key)
            return
        kget = key_to_slot.get
        rapp = refs.append
        replaced = 0
        for server_ip in answers:
            key = base | server_ip
            old = kget(key)
            if old is None:
                key_to_slot[key] = idx
                rapp(key)
            elif old != idx:
                # Last-written-wins relink (Alg. 1 lines 11-15); the old
                # slot's stale back-reference is resolved at eviction.
                replaced += 1
                key_to_slot[key] = idx
                rapp(key)
            # old == idx: duplicate address within this response.
        if replaced:
            self._replacements += replaced

    def _insert_multilabel(
        self,
        client_ip: int,
        fqdn: str,
        answers: list[int],
        timestamp: float,
    ) -> None:
        """Insert with superseded-label history (``multi_label_depth > 0``).

        Functionally identical to :meth:`insert` plus the Sec. 6
        multi-label bookkeeping; split out so the depth check stays off
        the default hot path.
        """
        key_to_slot = self._key_to_slot
        history_map = self._history
        depth = self.multi_label_depth
        idx = self._next_slot
        refs = self._back_refs[idx]
        if self._used == self.clist_size:
            kget = key_to_slot.get
            for key in refs:
                if kget(key) == idx:
                    del key_to_slot[key]
                    history_map.pop(key, None)
            refs.clear()
        else:
            self._used += 1
            if refs is None:
                refs = self._back_refs[idx] = []
        self._burned += 1
        fqdns = self._fqdns
        fqdns[idx] = fqdn
        self._inserted_at[idx] = timestamp
        nxt = idx + 1
        self._next_slot = 0 if nxt == self.clist_size else nxt
        base = client_ip << 32
        kget = key_to_slot.get
        for server_ip in dict.fromkeys(answers):
            key = base | server_ip
            old = kget(key)
            if old is not None:
                self._replacements += 1
                old_fqdn = fqdns[old]
                if old_fqdn != fqdn:
                    history = history_map.setdefault(key, [])
                    if old_fqdn in history:
                        history.remove(old_fqdn)
                    history.insert(0, old_fqdn)
                    del history[depth:]
            key_to_slot[key] = idx
            refs.append(key)

    def insert_batch(self, observations: Iterable) -> None:
        """Feed a pre-sorted run of decoded DNS responses.

        ``observations`` yields objects with ``client_ip``, ``fqdn``,
        ``answers`` and ``timestamp`` attributes (``DnsObservation``
        ducks).  Responses with empty answer lists are counted but do
        not consume a slot, exactly as :meth:`insert`.
        """
        insert = self.insert
        for obs in observations:
            insert(obs.client_ip, obs.fqdn, obs.answers, obs.timestamp)

    # -- LOOKUP (Algorithm 1, lines 27-34) -------------------------------

    def lookup(self, client_ip: int, server_ip: int) -> Optional[str]:
        """Return the FQDN ``client_ip`` resolved for ``server_ip``, if known."""
        self._lookups += 1
        slot = self._key_to_slot.get((client_ip << 32) | server_ip)
        if slot is None:
            return None
        self._hits += 1
        return self._fqdns[slot]

    def lookup_key(self, key: int) -> Optional[str]:
        """Like :meth:`lookup` but with a pre-fused 64-bit key.

        The flat map's only per-probe cost beyond the hash lookup is
        building ``(client_ip << 32) | server_ip``; callers that hold
        the fused key (the pipeline's fused loop, per-pair bursts via
        :func:`fuse_key`) skip it and probe at better than seed speed
        — see ``resolver_lookup`` in ``benchmarks/run_bench.py``.
        """
        self._lookups += 1
        slot = self._key_to_slot.get(key)
        if slot is None:
            return None
        self._hits += 1
        return self._fqdns[slot]

    def peek(self, client_ip: int, server_ip: int) -> Optional[str]:
        """Like :meth:`lookup` but without touching statistics."""
        slot = self._key_to_slot.get((client_ip << 32) | server_ip)
        return None if slot is None else self._fqdns[slot]

    def lookup_all(self, client_ip: int, server_ip: int) -> list[str]:
        """All candidate labels for the key, most recent first.

        The first element is what :meth:`lookup` returns; the rest are
        superseded labels still plausible for the shared server (only
        populated when ``multi_label_depth > 0``).
        """
        current = self.peek(client_ip, server_ip)
        if current is None:
            return []
        labels = [current]
        key = (client_ip << 32) | server_ip
        for fqdn in self._history.get(key, ()):
            if fqdn not in labels:
                labels.append(fqdn)
        return labels

    # -- statistics --------------------------------------------------------

    @property
    def stats(self) -> ResolverStats:
        """Snapshot of the Sec. 6 counters.

        ``overwrites`` is derived: every burned slot beyond the first
        ``L`` overwrote a live entry.
        """
        return ResolverStats(
            responses=self._responses,
            answers=self._answers,
            lookups=self._lookups,
            hits=self._hits,
            replacements=self._replacements,
            overwrites=self._burned - self._used,
        )

    # -- introspection ----------------------------------------------------

    @property
    def client_count(self) -> int:
        """Number of distinct clients currently tracked (N_C)."""
        return len({key >> 32 for key in self._key_to_slot})

    def server_count(self, client_ip: int) -> int:
        """Number of server keys for one client (N_S(c))."""
        return sum(1 for key in self._key_to_slot if key >> 32 == client_ip)

    @property
    def live_entries(self) -> int:
        """Number of occupied Clist slots — O(1), not an O(L) scan."""
        return self._used

    def oldest_entry_age(self, now: float) -> Optional[float]:
        """Age of the oldest live entry — the effective caching horizon."""
        used = self._used
        if not used:
            return None
        inserted_at = self._inserted_at
        return max(now - inserted_at[i] for i in range(used))

    def check_invariants(self) -> None:
        """Assert map/Clist consistency; used by property-based tests.

        Every map value must reference a live slot whose back-reference
        list contains the key; stale back-references (left behind by
        replacements) must point at other live mappings, never dangle as
        map entries; label history may exist only for live keys.
        """
        assert 0 <= self._used <= self.clist_size
        assert self._used == min(self._burned, self.clist_size)
        for key, slot in self._key_to_slot.items():
            assert 0 <= slot < self._used, "map points at a dead slot"
            refs = self._back_refs[slot]
            assert refs is not None and key in refs, (
                "map key missing from slot back-references"
            )
        for slot in range(self.clist_size):
            refs = self._back_refs[slot]
            if refs is None:
                continue
            assert slot < self._used or not refs, (
                "dead slot holds back-references"
            )
        for key in self._history:
            assert key in self._key_to_slot, "history for an evicted key"
