"""Flow tagger: attach the FQDN label to each reconstructed flow.

The tagger queries the DNS resolver with the flow's (clientIP, serverIP)
pair — Algorithm 1's ``lookup()`` — and writes the label into the flow
record.  Per-protocol hit counters reproduce the Tab. 2 breakdown; the
warm-up window excludes the trace head where client OS caches answer
locally and the monitor cannot have seen the resolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.flow import FlowRecord, Protocol
from repro.sniffer.resolver import DnsResolver


@dataclass
class TagStats:
    """Hit/miss counts split by layer-7 protocol."""

    hits: dict[Protocol, int] = field(default_factory=dict)
    misses: dict[Protocol, int] = field(default_factory=dict)
    warmup_skipped: int = 0

    def record(self, protocol: Protocol, hit: bool) -> None:
        bucket = self.hits if hit else self.misses
        bucket[protocol] = bucket.get(protocol, 0) + 1

    def hit_ratio(self, protocol: Protocol) -> float:
        """Fraction of flows of ``protocol`` that received a label."""
        hits = self.hits.get(protocol, 0)
        total = hits + self.misses.get(protocol, 0)
        return hits / total if total else 0.0

    def hit_count(self, protocol: Protocol) -> int:
        return self.hits.get(protocol, 0)

    def total(self, protocol: Protocol) -> int:
        return self.hits.get(protocol, 0) + self.misses.get(protocol, 0)


class FlowTagger:
    """Label flows with the FQDN from the resolver replica.

    Args:
        resolver: shared :class:`DnsResolver`.
        warmup: seconds from ``trace_start`` during which flows are tagged
            but excluded from the statistics (the paper uses 5 minutes).
        trace_start: timestamp of the first packet; set lazily from the
            first flow if left ``None``.
    """

    def __init__(
        self,
        resolver: DnsResolver,
        warmup: float = 300.0,
        trace_start: float | None = None,
    ):
        self.resolver = resolver
        self.warmup = warmup
        self.trace_start = trace_start
        self.stats = TagStats()

    def tag(self, flow: FlowRecord) -> FlowRecord:
        """Attach a label to ``flow`` (in place) and update statistics."""
        if self.trace_start is None:
            self.trace_start = flow.start
        fqdn = self.resolver.lookup(flow.fid.client_ip, flow.fid.server_ip)
        flow.fqdn = fqdn
        in_warmup = flow.start - self.trace_start < self.warmup
        if in_warmup:
            self.stats.warmup_skipped += 1
        else:
            self.stats.record(flow.protocol, fqdn is not None)
        return flow

    def tag_all(self, flows: list[FlowRecord]) -> list[FlowRecord]:
        """Tag a batch of flows."""
        return [self.tag(flow) for flow in flows]
