"""End-to-end wiring of the real-time sniffer (Fig. 1 of the paper).

Two ingestion paths exist:

* the **packet path** (:meth:`SnifferPipeline.process_packets`) decodes
  raw frames, routes port-53 UDP to the DNS response sniffer and the rest
  to the flow sniffer — this is what runs on a pcap file;
* the **event path** (:meth:`SnifferPipeline.process_events`) consumes
  already-structured :class:`DnsObservation` / :class:`FlowRecord`
  objects in timestamp order — this is the fast path used for the large
  synthetic traces, exercising exactly the same resolver/tagger logic.

Both paths produce the labeled flow list that feeds the off-line
analyzer.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.net.flow import DnsObservation, FlowRecord, Protocol
from repro.net.packet import Packet
from repro.sniffer.dns_sniffer import DnsResponseSniffer
from repro.sniffer.flow_sniffer import FlowSniffer
from repro.sniffer.policy import PolicyEnforcer
from repro.sniffer.resolver import DnsResolver
from repro.sniffer.tagger import FlowTagger


class SnifferPipeline:
    """DN-Hunter's real-time component, assembled.

    Args:
        clist_size: resolver circular-list capacity ``L``.
        warmup: statistics warm-up window in seconds (paper: 5 min).
        policy: optional :class:`PolicyEnforcer`; when present, DNS
            responses pre-install decisions and each tagged flow gets a
            verdict.
        monitored_clients: restrict the resolver replica to these client
            addresses (None = everyone).
    """

    def __init__(
        self,
        clist_size: int = 100_000,
        warmup: float = 300.0,
        policy: Optional[PolicyEnforcer] = None,
        monitored_clients: Optional[set[int]] = None,
    ):
        self.resolver = DnsResolver(clist_size=clist_size)
        self.dns_sniffer = DnsResponseSniffer(
            self.resolver, monitored_clients=monitored_clients
        )
        self.flow_sniffer = FlowSniffer()
        self.tagger = FlowTagger(self.resolver, warmup=warmup)
        self.policy = policy
        self.tagged_flows: list[FlowRecord] = []
        self.blocked_flows: list[FlowRecord] = []

    # -- packet path ------------------------------------------------------

    def process_packets(self, packets: Iterable[Packet]) -> list[FlowRecord]:
        """Run the full sniffer over decoded packets; return tagged flows."""
        last_ts = 0.0
        for packet in packets:
            last_ts = packet.timestamp
            if packet.udp is not None and 53 in (
                packet.udp.src_port,
                packet.udp.dst_port,
            ):
                observation = self.dns_sniffer.feed_packet(packet)
                if observation is not None and self.policy is not None:
                    self.policy.on_dns_response(observation)
                continue
            completed = self.flow_sniffer.feed(packet)
            if completed is not None:
                self._finish_flow(completed)
        for record in self.flow_sniffer.flush():
            record.end = max(record.end, last_ts)
            self._finish_flow(record)
        return self.tagged_flows

    # -- event path -------------------------------------------------------

    def process_events(
        self, events: Iterable[DnsObservation | FlowRecord]
    ) -> list[FlowRecord]:
        """Run the resolver+tagger over structured events in time order."""
        for event in events:
            if isinstance(event, DnsObservation):
                observation = self.dns_sniffer.feed_observation(event)
                if observation is not None and self.policy is not None:
                    self.policy.on_dns_response(observation)
            elif isinstance(event, FlowRecord):
                self._finish_flow(event)
            else:
                raise TypeError(
                    f"unsupported event type {type(event).__name__}"
                )
        return self.tagged_flows

    def process_trace(self, trace) -> list[FlowRecord]:
        """Convenience: run the event path over a simulation trace object.

        Accepts any object exposing ``iter_events()``.
        """
        return self.process_events(trace.iter_events())

    # -- shared -----------------------------------------------------------

    def _finish_flow(self, flow: FlowRecord) -> None:
        self.tagger.tag(flow)
        if self.policy is not None:
            decision = self.policy.decide(flow)
            if not decision.allows:
                self.blocked_flows.append(flow)
                return
        self.tagged_flows.append(flow)

    def hit_ratio_by_protocol(self) -> dict[Protocol, float]:
        """Tab. 2 view: per-protocol tagging success after warm-up."""
        out = {}
        for protocol in Protocol:
            total = self.tagger.stats.total(protocol)
            if total:
                out[protocol] = self.tagger.stats.hit_ratio(protocol)
        return out

    def hit_counts_by_protocol(self) -> dict[Protocol, tuple[int, int]]:
        """(hits, total) per protocol after warm-up."""
        out = {}
        for protocol in Protocol:
            total = self.tagger.stats.total(protocol)
            if total:
                out[protocol] = (self.tagger.stats.hit_count(protocol), total)
        return out
