"""End-to-end wiring of the real-time sniffer (Fig. 1 of the paper).

Two ingestion paths exist:

* the **packet path** (:meth:`SnifferPipeline.process_packets`) decodes
  raw frames, routes port-53 UDP to the DNS response sniffer and the rest
  to the flow sniffer — this is what runs on a pcap file;
* the **event path** (:meth:`SnifferPipeline.process_events`) consumes
  already-structured :class:`DnsObservation` / :class:`FlowRecord`
  objects in timestamp order — this is the fast path used for the large
  synthetic traces, exercising exactly the same resolver/tagger logic.

Both paths produce the labeled flow list that feeds the off-line
analyzer.

The event path dispatches on exact type (``event.__class__ is ...``)
instead of per-event ``isinstance`` and, when no policy enforcer or
client filter is installed, runs a fused loop with the resolver lookup
and tagger bookkeeping inlined — the per-event constant factor is what
decides whether the sniffer keeps up with the wire (Sec. 3.1.1; FlowDNS
makes the same observation at ISP scale).  Statistics produced by the
fused loop are identical to the modular path.

With ``processes > 1`` both paths fan the resolver+tagger work out to a
pool of worker processes (:mod:`repro.sniffer.fanout`): events are
partitioned by client IP, cross the process boundary as compact binary
batches, and come back as merged statistics.  In that mode the pipeline
aggregates — per-flow records are tallied where they are tagged rather
than materialised, so ``tagged_flows`` stays empty and the run's merged
counters land in :attr:`tagger` ``.stats`` and :attr:`fanout_report`.
"""

from __future__ import annotations

from collections import Counter
from itertools import islice
from typing import Callable, Iterable, Optional, Union

from repro.net.flow import DnsObservation, FlowRecord, Protocol
from repro.net.packet import Packet
from repro.sniffer.dns_sniffer import DnsResponseSniffer
from repro.sniffer.fanout import (
    FanoutPipeline,
    FanoutReport,
    install_shutdown_signals,
)
from repro.sniffer.flow_sniffer import FlowSniffer
from repro.sniffer.policy import PolicyEnforcer
from repro.sniffer.resolver import DnsResolver
from repro.sniffer.sharding import ShardedResolver
from repro.sniffer.tagger import FlowTagger

Event = Union[DnsObservation, FlowRecord]


class _FanoutResolverSink:
    """Resolver-shaped adapter: routes packet-path inserts to the pool."""

    __slots__ = ("_feed_dns",)

    def __init__(self, fanout: FanoutPipeline):
        self._feed_dns = fanout.feed_dns

    def insert(self, client_ip, fqdn, answers, timestamp=0.0):
        self._feed_dns(client_ip, fqdn, answers, timestamp)


class SnifferPipeline:
    """DN-Hunter's real-time component, assembled.

    Args:
        clist_size: resolver circular-list capacity ``L`` (total budget
            when sharded).
        warmup: statistics warm-up window in seconds (paper: 5 min).
        policy: optional :class:`PolicyEnforcer`; when present, DNS
            responses pre-install decisions and each tagged flow gets a
            verdict.
        monitored_clients: restrict the resolver replica to these client
            addresses (None = everyone).
        shards: when > 1, back the pipeline with a
            :class:`ShardedResolver` split by client low octet
            (Sec. 3.1.1's load-balancing note) instead of a single
            resolver.
        processes: when > 1, fan the resolver+tagger work out to this
            many worker processes (same client-low-octet split, one
            process per shard; see :mod:`repro.sniffer.fanout`).  The
            pipeline then aggregates: merged statistics instead of a
            materialised labeled-flow list.  Mutually exclusive with
            ``shards``, ``policy`` and ``monitored_clients``.
        batch_events: events per fan-out batch (``processes > 1`` only).
        collect_labels: have fan-out workers histogram attached labels
            (``fanout_report.label_counts``).
        collect_flows: have fan-out workers buffer their tagged flows
            as codec batches for :meth:`emit_tagged_batches` — the
            zero-object-churn feed of ``FlowDatabase.ingest_batch``
            (``processes > 1`` only; the single-process pipeline can
            always emit batches from its ``tagged_flows``).
        flow_store: durable-ingest mode — a
            :class:`repro.analytics.storage.FlowStore` (or a directory
            path, opened as one).  After every processing call the
            tagged flows emitted since the previous call stream into
            the store as binary batches (worker→parent→disk with
            ``processes > 1``, where ``collect_flows`` is implied);
            :meth:`close` seals the store's live tail to disk.
        retain_flows: with ``False`` (requires ``flow_store``), flows
            already drained into the store are dropped from
            ``tagged_flows`` — the multi-day capture mode, where the
            store bounds memory and the in-process list must not grow
            forever.  ``processes > 1`` never materializes the list,
            so the knob matters for single-process durable ingest.
    """

    def __init__(
        self,
        clist_size: int = 100_000,
        warmup: float = 300.0,
        policy: Optional[PolicyEnforcer] = None,
        monitored_clients: Optional[set[int]] = None,
        shards: int = 1,
        processes: int = 1,
        batch_events: int = 8192,
        collect_labels: bool = False,
        collect_flows: bool = False,
        flow_store=None,
        retain_flows: bool = True,
    ):
        if not retain_flows and flow_store is None:
            raise ValueError(
                "retain_flows=False discards tagged flows; it needs a "
                "flow_store to stream them into first"
            )
        if shards <= 0:
            raise ValueError("shards must be positive")
        if processes <= 0:
            raise ValueError("processes must be positive")
        if processes > 1:
            if shards > 1:
                raise ValueError(
                    "shards and processes are alternative scaling axes; "
                    "pick one"
                )
            if policy is not None or monitored_clients is not None:
                raise ValueError(
                    "policy enforcement and client filters need per-flow "
                    "records in-process; not supported with processes > 1"
                )
        # Open (and possibly create on disk) the store only after every
        # sizing knob validated — a rejected construction must not
        # leave a plausible empty store directory behind.
        if flow_store is not None and not hasattr(flow_store, "ingest_batch"):
            from repro.analytics.storage import FlowStore

            flow_store = FlowStore(flow_store)
        if flow_store is not None and processes > 1:
            # Durable ingest needs the workers to re-encode their
            # tagged flows; the knob is implied rather than demanded.
            collect_flows = True
        self.clist_size = clist_size
        self.processes = processes
        self.batch_events = batch_events
        self.collect_labels = collect_labels
        self.collect_flows = collect_flows
        self.fanout_report: Optional[FanoutReport] = None
        self._fanout: Optional[FanoutPipeline] = None
        self._fanout_baseline: Optional[FanoutReport] = None
        if processes > 1:
            # The real resolvers live in the workers; the in-process one
            # is a 1-slot stub that only satisfies the sniffer/tagger
            # wiring, so a paper-scale clist is not allocated twice.
            clist_size = 1
        if shards > 1:
            self.resolver: Union[DnsResolver, ShardedResolver] = (
                ShardedResolver(shards=shards, clist_size=clist_size)
            )
        else:
            self.resolver = DnsResolver(clist_size=clist_size)
        self.dns_sniffer = DnsResponseSniffer(
            self.resolver, monitored_clients=monitored_clients
        )
        self.flow_sniffer = FlowSniffer()
        self.tagger = FlowTagger(self.resolver, warmup=warmup)
        self.policy = policy
        self.tagged_flows: list[FlowRecord] = []
        self.blocked_flows: list[FlowRecord] = []
        self._emitted_flows = 0  # emit_tagged_batches drain cursor
        self.flow_store = flow_store
        self.retain_flows = retain_flows
        #: Optional observability hook, called as ``hook(batches,
        #: rows)`` after every non-empty store drain (both the
        #: in-process path and the fan-out pool's) — ``repro-serve``
        #: wires it to its ingest-rate metrics.  Must not raise.
        self.store_drain_hook: Optional[Callable[[int, int], None]] = None
        # Durable single-process runs drain mid-stream (every
        # ~batch_events tagged flows), so one multi-day processing call
        # keeps spilling to disk instead of deferring all durability —
        # and all memory — to the end of the call.  With processes > 1
        # the fan-out pool owns the cadence (see _fanout_pipeline).
        self._drain_every = (
            batch_events if flow_store is not None and processes == 1
            else 0
        )

    # -- packet path ------------------------------------------------------

    def process_packets(self, packets: Iterable[Packet]) -> list[FlowRecord]:
        """Run the full sniffer over decoded packets; return tagged flows."""
        if self.processes > 1:
            flows = self._process_packets_fanout(packets)
        else:
            flows = self._process_packets_inline(packets)
        self._store_drain()
        return flows

    def _process_packets_inline(
        self, packets: Iterable[Packet]
    ) -> list[FlowRecord]:
        feed_dns = self.dns_sniffer.feed_packet
        feed_flow = self.flow_sniffer.feed
        finish = self._finish_flow
        policy = self.policy
        last_ts = 0.0
        for packet in packets:
            last_ts = packet.timestamp
            udp = packet.udp
            if udp is not None and (
                udp.src_port == 53 or udp.dst_port == 53
            ):
                observation = feed_dns(packet)
                if observation is not None and policy is not None:
                    policy.on_dns_response(observation)
                continue
            completed = feed_flow(packet)
            if completed is not None:
                finish(completed)
        for record in self.flow_sniffer.flush():
            record.end = max(record.end, last_ts)
            finish(record)
        return self.tagged_flows

    def _process_packets_fanout(
        self, packets: Iterable[Packet]
    ) -> list[FlowRecord]:
        """Packet path with the resolver+tagger fanned out to workers.

        The parent keeps the decode work (DNS response parsing, 5-tuple
        reassembly); decoded responses and completed flows are routed to
        the worker pool instead of the in-process resolver/tagger.
        """
        fanout = self._fanout_pipeline()
        sniffer = DnsResponseSniffer(_FanoutResolverSink(fanout))
        feed_dns = sniffer.feed_packet
        feed_flow_packet = self.flow_sniffer.feed
        feed_flow = fanout.feed_flow
        last_ts = 0.0
        for packet in packets:
            last_ts = packet.timestamp
            udp = packet.udp
            if udp is not None and (
                udp.src_port == 53 or udp.dst_port == 53
            ):
                feed_dns(packet)
                continue
            completed = feed_flow_packet(packet)
            if completed is not None:
                feed_flow(completed)
        for record in self.flow_sniffer.flush():
            record.end = max(record.end, last_ts)
            feed_flow(record)
        report = fanout.collect()
        shared = self.dns_sniffer.stats
        for key, value in sniffer.stats.items():
            shared[key] = shared.get(key, 0) + value
        self._absorb_report(report)
        return self.tagged_flows

    # -- event path -------------------------------------------------------

    def process_events(self, events: Iterable[Event]) -> list[FlowRecord]:
        """Run the resolver+tagger over structured events in time order."""
        if self._drain_every:
            # Chunk the stream so the fused loops stay branch-free on
            # their hot path while the store still receives (and can
            # spill) every few batches' worth of tagged flows.
            events = iter(events)
            chunk_events = self._drain_every * 4
            while True:
                chunk = list(islice(events, chunk_events))
                if not chunk:
                    break
                self._process_events_dispatch(chunk)
                self._store_drain()
            return self.tagged_flows
        flows = self._process_events_dispatch(events)
        self._store_drain()
        return flows

    def _process_events_dispatch(
        self, events: Iterable[Event]
    ) -> list[FlowRecord]:
        if self.processes > 1:
            fanout = self._fanout_pipeline()
            fanout.feed_events(events)
            self._absorb_report(fanout.collect())
            return self.tagged_flows
        if self.policy is not None or (
            self.dns_sniffer.monitored_clients is not None
        ):
            return self._process_events_modular(events)
        resolver = self.resolver
        if (
            resolver.__class__ is DnsResolver
            and resolver.multi_label_depth == 0
        ):
            return self._process_events_flat(events)
        return self._process_events_fused(events)

    def _process_events_modular(
        self, events: Iterable[Event]
    ) -> list[FlowRecord]:
        """General event loop: policy hooks and client filters apply."""
        feed = self.dns_sniffer.feed_observation
        finish = self._finish_flow
        policy = self.policy
        for event in events:
            cls = event.__class__
            if cls is DnsObservation:
                observation = feed(event)
                if observation is not None and policy is not None:
                    policy.on_dns_response(observation)
            elif cls is FlowRecord:
                finish(event)
            elif isinstance(event, DnsObservation):
                observation = feed(event)
                if observation is not None and policy is not None:
                    policy.on_dns_response(observation)
            elif isinstance(event, FlowRecord):
                finish(event)
            else:
                raise TypeError(
                    f"unsupported event type {type(event).__name__}"
                )
        return self.tagged_flows

    def _process_events_flat(
        self, events: Iterable[Event]
    ) -> list[FlowRecord]:
        """Fully-fused loop over a plain depth-0 :class:`DnsResolver`.

        The resolver's insert and lookup bodies are inlined with their
        state held in locals — one exact-type check and straight dict
        work per event, no function call in the steady state.  The logic
        mirrors ``DnsResolver.insert`` line for line (the differential
        tests hold this path and the modular one to identical labels and
        statistics).  All state is flushed back to the shared objects in
        a ``finally`` block, so the structures stay consistent even when
        the event source raises; a subclassed or foreign event flushes
        and hands the remaining stream to the modular loop.
        """
        events = iter(events)  # the modular bail-out resumes mid-stream
        resolver = self.resolver
        clist_size = resolver.clist_size
        key_to_slot = resolver._key_to_slot
        kget = key_to_slot.get
        ksetdefault = key_to_slot.setdefault
        fqdns = resolver._fqdns
        back_refs = resolver._back_refs
        inserted_at = resolver._inserted_at
        idx = resolver._next_slot
        used = resolver._used
        burned = resolver._burned
        responses = resolver._responses
        answer_count = resolver._answers
        replacements = resolver._replacements
        lookups = resolver._lookups
        hits = resolver._hits
        tagger = self.tagger
        warmup = tagger.warmup
        trace_start = tagger.trace_start
        append = self.tagged_flows.append
        dns_cls = DnsObservation
        flow_cls = FlowRecord
        empty_answers = 0
        warmup_skipped = 0
        hit_protocols: list[Protocol] = []
        miss_protocols: list[Protocol] = []
        hit_append = hit_protocols.append
        miss_append = miss_protocols.append
        bail_event = None
        try:
            for event in events:
                cls = event.__class__
                if cls is dns_cls:
                    answers = event.answers
                    n = len(answers)
                    if not n:
                        # The DNS sniffer drops empty responses before
                        # they reach the resolver, so they count only
                        # against the sniffer, never the resolver.
                        empty_answers += 1
                        continue
                    responses += 1
                    answer_count += n
                    # -- DnsResolver.insert, inlined -----------------
                    refs = back_refs[idx]
                    if used == clist_size:
                        for key in refs:
                            if kget(key) == idx:
                                del key_to_slot[key]
                        refs.clear()
                    else:
                        used += 1
                        if refs is None:
                            refs = back_refs[idx] = []
                    burned += 1
                    fqdns[idx] = event.fqdn
                    inserted_at[idx] = event.timestamp
                    base = event.client_ip << 32
                    if n == 1:
                        key = base | answers[0]
                        old = ksetdefault(key, idx)
                        if old != idx:
                            replacements += 1
                            key_to_slot[key] = idx
                        refs.append(key)
                    else:
                        rapp = refs.append
                        for server_ip in answers:
                            key = base | server_ip
                            old = kget(key)
                            if old is None:
                                key_to_slot[key] = idx
                                rapp(key)
                            elif old != idx:
                                replacements += 1
                                key_to_slot[key] = idx
                                rapp(key)
                    idx += 1
                    if idx == clist_size:
                        idx = 0
                elif cls is flow_cls:
                    fid = event.fid
                    # -- DnsResolver.lookup, inlined -----------------
                    lookups += 1
                    slot = kget((fid.client_ip << 32) | fid.server_ip)
                    if slot is None:
                        fqdn = None
                    else:
                        hits += 1
                        fqdn = fqdns[slot]
                    event.fqdn = fqdn
                    start = event.start
                    if trace_start is None:
                        trace_start = start
                    if start - trace_start < warmup:
                        warmup_skipped += 1
                    elif fqdn is None:
                        miss_append(event.protocol)
                    else:
                        hit_append(event.protocol)
                    append(event)
                else:
                    bail_event = event
                    break
        finally:
            resolver._next_slot = idx
            resolver._used = used
            resolver._burned = burned
            resolver._responses = responses
            resolver._answers = answer_count
            resolver._replacements = replacements
            resolver._lookups = lookups
            resolver._hits = hits
            self._flush_tag_state(
                trace_start, warmup_skipped, empty_answers,
                hit_protocols, miss_protocols,
            )
        if bail_event is not None:
            self._process_event_generic(bail_event)
            return self._process_events_modular(events)
        return self.tagged_flows

    def _process_events_fused(
        self, events: Iterable[Event]
    ) -> list[FlowRecord]:
        """Hoisted loop for non-flat resolvers (e.g. sharded).

        Per event: one exact-type check plus a bound-method insert or
        lookup — the resolver routes internally.  Statistics are
        accumulated locally and merged once at the end.
        """
        resolver = self.resolver
        insert = resolver.insert
        lookup = resolver.lookup
        tagger = self.tagger
        warmup = tagger.warmup
        trace_start = tagger.trace_start
        append = self.tagged_flows.append
        dns_cls = DnsObservation
        flow_cls = FlowRecord
        empty_answers = 0
        warmup_skipped = 0
        hit_protocols: list[Protocol] = []
        miss_protocols: list[Protocol] = []
        hit_append = hit_protocols.append
        miss_append = miss_protocols.append
        for event in events:
            cls = event.__class__
            if cls is dns_cls:
                answers = event.answers
                if answers:
                    insert(
                        event.client_ip, event.fqdn, answers,
                        event.timestamp,
                    )
                else:
                    empty_answers += 1
            elif cls is flow_cls:
                fqdn = lookup(event.fid.client_ip, event.fid.server_ip)
                event.fqdn = fqdn
                start = event.start
                if trace_start is None:
                    trace_start = start
                if start - trace_start < warmup:
                    warmup_skipped += 1
                elif fqdn is None:
                    miss_append(event.protocol)
                else:
                    hit_append(event.protocol)
                append(event)
            else:
                # Subclass or foreign event: sync the lazily-set trace
                # start, let the modular helper judge it, resume inline.
                tagger.trace_start = trace_start
                self._process_event_generic(event)
                trace_start = tagger.trace_start
        self._flush_tag_state(
            trace_start, warmup_skipped, empty_answers,
            hit_protocols, miss_protocols,
        )
        return self.tagged_flows

    def _flush_tag_state(
        self,
        trace_start: Optional[float],
        warmup_skipped: int,
        empty_answers: int,
        hit_protocols: list[Protocol],
        miss_protocols: list[Protocol],
    ) -> None:
        """Merge a fast loop's local tag/sniffer accumulators back into
        the shared statistics (runs once per loop, off the hot path)."""
        if empty_answers:
            self.dns_sniffer.stats["empty_answers"] += empty_answers
        tagger = self.tagger
        tagger.trace_start = trace_start
        tagger.stats.warmup_skipped += warmup_skipped
        for bucket, protocols in (
            (tagger.stats.hits, hit_protocols),
            (tagger.stats.misses, miss_protocols),
        ):
            if protocols:
                for protocol, count in Counter(protocols).items():
                    bucket[protocol] = bucket.get(protocol, 0) + count

    def _process_event_generic(self, event) -> None:
        """Handle one event of non-exact type (subclass or foreign)."""
        if isinstance(event, DnsObservation):
            self.dns_sniffer.feed_observation(event)
        elif isinstance(event, FlowRecord):
            self._finish_flow(event)
        else:
            raise TypeError(
                f"unsupported event type {type(event).__name__}"
            )

    def process_event_runs(
        self, runs: Iterable[tuple[bool, list[Event]]]
    ) -> list[FlowRecord]:
        """Consume pre-sorted same-type event runs.

        ``runs`` yields ``(is_dns, events)`` pairs as produced by
        ``Trace.iter_event_runs()``; DNS runs are batch-inserted through
        the resolver, flow runs go through the tagger.  Useful when a
        producer naturally emits type-homogeneous bursts; for the
        fine-grained interleaving of the standard traces (median run
        length 1) the fused per-event loop is faster.
        """
        flows = self._process_event_runs_dispatch(runs)
        self._store_drain()
        return flows

    def _process_event_runs_dispatch(
        self, runs: Iterable[tuple[bool, list[Event]]]
    ) -> list[FlowRecord]:
        if self.processes > 1:
            fanout = self._fanout_pipeline()
            fanout.feed_event_runs(runs)
            self._absorb_report(fanout.collect())
            return self.tagged_flows
        if self.policy is not None or (
            self.dns_sniffer.monitored_clients is not None
        ):
            for _is_dns, events in runs:
                self._process_events_modular(events)
            return self.tagged_flows
        insert_batch = self.resolver.insert_batch
        sniffer_stats = self.dns_sniffer.stats
        tag = self.tagger.tag
        append = self.tagged_flows.append
        drain_every = self._drain_every
        for is_dns, events in runs:
            if is_dns:
                with_answers = [obs for obs in events if obs.answers]
                empty = len(events) - len(with_answers)
                if empty:
                    sniffer_stats["empty_answers"] += empty
                insert_batch(with_answers)
            else:
                for flow in events:
                    append(tag(flow))
                if drain_every and (
                    len(self.tagged_flows) - self._emitted_flows
                    >= drain_every
                ):
                    self._store_drain()
        return self.tagged_flows

    def process_trace(self, trace) -> list[FlowRecord]:
        """Convenience: run the event path over a simulation trace object.

        Accepts any object exposing ``iter_events()``.
        """
        return self.process_events(trace.iter_events())

    # -- fan-out plumbing --------------------------------------------------

    def _fanout_pipeline(self) -> FanoutPipeline:
        """The pipeline's worker pool, started lazily and kept across
        calls so resolver state persists exactly as it does in-process
        (a chunked event stream labels like a single stream).  Workers
        are daemons; call :meth:`close` for a deterministic shutdown."""
        if self._fanout is None:
            self._fanout = FanoutPipeline(
                processes=self.processes,
                clist_size=self.clist_size,
                warmup=self.tagger.warmup,
                batch_events=self.batch_events,
                collect_labels=self.collect_labels,
                collect_flows=self.collect_flows,
                # The pool owns durable ingest in fan-out mode: it
                # drains worker batches into the store periodically
                # while feeding (bounded worker buffers, mid-run
                # durability) and on collect()/close().
                flow_store=self.flow_store,
            )
            # Forward through a bound method so a hook installed on
            # the pipeline after the pool exists still takes effect.
            self._fanout.store_drain_hook = self._note_store_drain
        return self._fanout.start()

    def _note_store_drain(self, batches: int, rows: int) -> None:
        if self.store_drain_hook is not None:
            self.store_drain_hook(batches, rows)

    def _store_drain(self) -> None:
        """Stream tagged flows emitted since the last drain into the
        attached flow store (durable-ingest mode; no-op otherwise).
        With ``retain_flows=False`` the drained prefix is dropped from
        the in-process list, so a multi-day run stays bounded by the
        store's spill budget instead of growing one record per flow."""
        if self.flow_store is None:
            return
        if self.processes > 1:
            # The fan-out pool owns the store in that mode: it drains
            # worker batches periodically during feeding and again on
            # collect()/close() (see _fanout_pipeline).
            return
        batches = rows = 0
        for payload in self.emit_tagged_batches(self.batch_events):
            rows += self.flow_store.ingest_batch(payload)
            batches += 1
        if batches and self.store_drain_hook is not None:
            self.store_drain_hook(batches, rows)
        if not self.retain_flows and self._emitted_flows:
            del self.tagged_flows[:self._emitted_flows]
            self._emitted_flows = 0

    def install_signal_handlers(self, signals=None) -> None:
        """Close the pipeline gracefully on SIGTERM/SIGINT (drain the
        tagged flows into the attached flow store, seal its tail and
        journal, reap fan-out workers), then re-deliver the signal so
        the process exits with the correct status — see
        :func:`repro.sniffer.fanout.install_shutdown_signals`."""
        install_shutdown_signals(self.close, signals)

    def close(self) -> None:
        """Shut down the fan-out worker pool, if one is running.

        Merged statistics (``tagger.stats``, :attr:`fanout_report`)
        survive the shutdown.  A later processing call restarts the
        pool with fresh worker state.  No-op for in-process pipelines.
        With a ``flow_store`` attached, any not-yet-drained tagged
        flows are streamed in and the store's live tail is sealed; a
        failing drain still shuts the worker pool down.
        """
        try:
            if self.flow_store is not None and self.processes == 1:
                # processes > 1: the fan-out pool drains and seals in
                # _close_fanout(); flushing here too would cut an
                # extra near-empty segment per run.
                try:
                    self._store_drain()
                finally:
                    self.flow_store.flush()
        finally:
            self._close_fanout()

    def _close_fanout(self) -> None:
        if self._fanout is not None:
            self._fanout.close()
            self._fanout = None
            # A restarted pool reports from zero again; the absorb delta
            # must restart with it.
            self._fanout_baseline = None

    def _absorb_report(self, report: FanoutReport) -> None:
        """Fold a merged fan-out report into the shared statistics so
        ``hit_ratio_by_protocol`` and friends work unchanged.

        Worker reports are cumulative over the pool's lifetime, so only
        the delta against the previously absorbed report is added;
        :attr:`fanout_report` always holds the current pool's cumulative
        totals.
        """
        previous = self._fanout_baseline
        stats = self.tagger.stats
        for bucket, merged, before in (
            (stats.hits, report.tag_stats.hits,
             previous.tag_stats.hits if previous else {}),
            (stats.misses, report.tag_stats.misses,
             previous.tag_stats.misses if previous else {}),
        ):
            for protocol, count in merged.items():
                delta = count - before.get(protocol, 0)
                if delta:
                    bucket[protocol] = bucket.get(protocol, 0) + delta
        stats.warmup_skipped += report.tag_stats.warmup_skipped - (
            previous.tag_stats.warmup_skipped if previous else 0
        )
        self.dns_sniffer.stats["empty_answers"] += report.empty_answers - (
            previous.empty_answers if previous else 0
        )
        self.fanout_report = report
        self._fanout_baseline = report

    # -- flow-database feed ------------------------------------------------

    def emit_tagged_batches(self, batch_events: int = 8192):
        """Tagged flows as eventcodec batches — the Flow Database feed.

        Returns the payloads ``FlowDatabase.ingest_batch`` absorbs.
        Both modes drain: each call emits only the flows tagged since
        the previous call, so a periodic emit→ingest loop stores every
        flow exactly once whatever the process count.  With
        ``processes > 1`` (requires ``collect_flows=True``) the batches
        were re-encoded by the workers where the flows were tagged — no
        :class:`FlowRecord` ever materialises — and their framing
        follows the pool's construction-time ``batch_events``; this
        method's ``batch_events`` argument applies only to the
        single-process encode path, which batches the new tail of the
        in-memory ``tagged_flows``, paying one object walk at emit
        time.

        With a ``flow_store`` attached the pipeline drains this same
        cursor itself (that is how the store receives the flows), so a
        caller's own emit loop sees only what the store has not
        already absorbed — usually nothing.  Query the store instead;
        it holds every tagged flow exactly once.
        """
        if self.processes > 1:
            if not self.collect_flows:
                raise ValueError(
                    "emit_tagged_batches with processes > 1 needs "
                    "collect_flows=True"
                )
            if self._fanout is None:
                return []
            return self._fanout.drain_tagged_batches()
        from repro.sniffer.eventcodec import BatchEncoder

        payloads: list[bytes] = []
        encoder = BatchEncoder()
        pending = self.tagged_flows[self._emitted_flows:]
        self._emitted_flows += len(pending)
        for flow in pending:
            encoder.add_flow(flow)
            if len(encoder) >= batch_events:
                payloads.append(encoder.take())
        if len(encoder):
            payloads.append(encoder.take())
        return payloads

    # -- shared -----------------------------------------------------------

    def _finish_flow(self, flow: FlowRecord) -> None:
        self.tagger.tag(flow)
        if self.policy is not None:
            decision = self.policy.decide(flow)
            if not decision.allows:
                self.blocked_flows.append(flow)
                return
        self.tagged_flows.append(flow)
        if self._drain_every and (
            len(self.tagged_flows) - self._emitted_flows
            >= self._drain_every
        ):
            # Packet path / modular loop mid-run durability: spill to
            # the store every ~batch_events tagged flows.
            self._store_drain()

    def hit_ratio_by_protocol(self) -> dict[Protocol, float]:
        """Tab. 2 view: per-protocol tagging success after warm-up."""
        out = {}
        for protocol in Protocol:
            total = self.tagger.stats.total(protocol)
            if total:
                out[protocol] = self.tagger.stats.hit_ratio(protocol)
        return out

    def hit_counts_by_protocol(self) -> dict[Protocol, tuple[int, int]]:
        """(hits, total) per protocol after warm-up."""
        out = {}
        for protocol in Protocol:
            total = self.tagger.stats.total(protocol)
            if total:
                out[protocol] = (self.tagger.stats.hit_count(protocol), total)
        return out
