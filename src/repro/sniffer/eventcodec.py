"""Compact binary batch codec for sniffer events.

The fan-out pipeline (:mod:`repro.sniffer.fanout`) moves events between
the partitioning parent and its worker processes.  Shipping Python
objects would pay a pickle + allocation toll per event; instead a batch
of events crosses the process boundary as **one** ``struct``-packed
buffer that the receiver can consume without materialising per-event
objects — the ROADMAP's "interpreter-independent batch ingest".

Layout
------
A batch is *columnar with an interleave map*.  The traces interleave DNS
responses and flows at run length ~1, so a per-run framing would pay its
fixed costs thousands of times per batch; instead all flow records form
one contiguous block, all DNS records another, and a one-byte-per-event
``flags`` block records the original ordering so a consumer can replay
the exact stream.  Field groups are split into *hot* blocks (what the
resolver + tagger loop needs) and *cold* blocks (everything else needed
for lossless round-trips), so the hot consumer touches a fraction of the
buffer and can lift whole columns into vectorised code (``numpy`` when
available) in one call per batch.

::

    magic    2s   = b"EC"
    version  u8   = 1
    n_events u32
    n_dns    u32
    n_flows  u32
    then 8 blocks, each prefixed by its u32 byte length, in this order:
      flags        n_events x u8        0 = flow, 1 = DNS, stream order
      flow_hot     n_flows x <IIdB      client, server, start, protocol
      flow_cold    n_flows x <HHBdQQI   sport, dport, transport, end,
                                        bytes_up, bytes_down, packets
      flow_str     per flow: fqdn, cert_name, true_fqdn (u16 length
                                        prefix each; 0xFFFF encodes None)
      dns_hot      n_dns x <IdBH       client, timestamp, n_answers,
                                        fqdn byte length
      dns_answers  sum(n_answers) x u32 answer addresses, concatenated
      dns_names    queried names, UTF-8, concatenated (lengths in hot)
      dns_cold     n_dns x <IB         ttl, useless flag

All integers are little-endian and unaligned.  Every block carries its
own length so a consumer can skip what it does not need (the worker hot
loop never reads the cold or string blocks).
"""

from __future__ import annotations

import struct
import sys
from array import array
from typing import Iterable, Iterator, Union

from repro.net.flow import (
    DnsObservation,
    FiveTuple,
    FlowRecord,
    Protocol,
    TransportProto,
)

Event = Union[DnsObservation, FlowRecord]

MAGIC = b"EC"
VERSION = 1

HEADER = struct.Struct("<2sBIII")
BLOCK_LEN = struct.Struct("<I")
FLOW_HOT = struct.Struct("<IIdB")
FLOW_COLD = struct.Struct("<HHBdQQI")
DNS_HOT = struct.Struct("<IdBH")
DNS_COLD = struct.Struct("<IB")
STR_LEN = struct.Struct("<H")

#: Stable protocol indexing for the 1-byte ``protocol`` field.  Append
#: only — reordering breaks previously-encoded batches.
PROTOCOLS: tuple[Protocol, ...] = tuple(Protocol)
PROTOCOL_INDEX: dict[Protocol, int] = {p: i for i, p in enumerate(PROTOCOLS)}

_NONE_STR = 0xFFFF
_MAX_STR = 0xFFFE
_U32 = 0xFFFFFFFF


class CodecError(ValueError):
    """A buffer or event does not fit the batch format."""


def _check_u32(value: int, what: str) -> int:
    if not 0 <= value <= _U32:
        raise CodecError(f"{what} {value!r} does not fit in u32")
    return value


def _encode_str(out: bytearray, text) -> None:
    if text is None:
        out += STR_LEN.pack(_NONE_STR)
        return
    raw = text.encode("utf-8")
    if len(raw) > _MAX_STR:
        raise CodecError(f"string of {len(raw)} bytes exceeds codec limit")
    out += STR_LEN.pack(len(raw))
    out += raw


class BatchEncoder:
    """Accumulate events and emit one packed batch buffer.

    The encoder is reusable: :meth:`take` returns the encoded batch and
    resets the accumulation state, so a streaming producer can keep one
    encoder per shard and drain it whenever it reaches the batch size.
    """

    __slots__ = (
        "_flags", "_flow_hot", "_flow_cold", "_flow_str",
        "_dns_hot", "_answers", "_names", "_dns_cold",
        "n_dns", "n_flows",
    )

    def __init__(self):
        self._flags = bytearray()
        self._flow_hot = bytearray()
        self._flow_cold = bytearray()
        self._flow_str = bytearray()
        self._dns_hot = bytearray()
        self._answers = array("I")
        self._names = bytearray()
        self._dns_cold = bytearray()
        self.n_dns = 0
        self.n_flows = 0

    def __len__(self) -> int:
        return self.n_dns + self.n_flows

    def add_dns_fields(
        self,
        client_ip: int,
        fqdn: str,
        answers,
        timestamp: float = 0.0,
        ttl: int = 300,
        useless: bool = False,
    ) -> None:
        """Append one DNS response from its raw fields."""
        raw = fqdn.encode("utf-8")
        n = len(answers)
        if n > 0xFF:
            raise CodecError(f"{n} answers exceed the codec's u8 limit")
        if len(raw) > _MAX_STR:
            raise CodecError(f"fqdn of {len(raw)} bytes exceeds codec limit")
        _check_u32(client_ip, "client_ip")
        _check_u32(ttl, "ttl")
        for address in answers:
            _check_u32(address, "answer address")
        try:
            hot = DNS_HOT.pack(client_ip, timestamp, n, len(raw))
        except struct.error as exc:
            raise CodecError(f"DNS field out of range: {exc}") from exc
        self._flags.append(1)
        self._dns_hot += hot
        self._answers.extend(answers)
        self._names += raw
        self._dns_cold += DNS_COLD.pack(ttl, 1 if useless else 0)
        self.n_dns += 1

    def add_dns(self, observation: DnsObservation) -> None:
        self.add_dns_fields(
            observation.client_ip,
            observation.fqdn,
            observation.answers,
            observation.timestamp,
            observation.ttl,
            observation.useless,
        )

    def add_flow(self, flow: FlowRecord) -> None:
        fid = flow.fid
        # Pack into locals first so a rejected flow leaves no partial
        # record behind in any block.
        try:
            hot = FLOW_HOT.pack(
                fid.client_ip, fid.server_ip, flow.start,
                PROTOCOL_INDEX[flow.protocol],
            )
            cold = FLOW_COLD.pack(
                fid.src_port, fid.dst_port, fid.proto,
                flow.end, flow.bytes_up, flow.bytes_down, flow.packets,
            )
        except (struct.error, KeyError) as exc:
            raise CodecError(f"flow field out of range: {exc}") from exc
        strings = bytearray()
        _encode_str(strings, flow.fqdn)
        _encode_str(strings, flow.cert_name)
        _encode_str(strings, flow.true_fqdn)
        self._flags.append(0)
        self._flow_hot += hot
        self._flow_cold += cold
        self._flow_str += strings
        self.n_flows += 1

    def add(self, event: Event) -> None:
        """Append one event, dispatching on its type."""
        if isinstance(event, DnsObservation):
            self.add_dns(event)
        elif isinstance(event, FlowRecord):
            self.add_flow(event)
        else:
            raise CodecError(
                f"unsupported event type {type(event).__name__}"
            )

    def add_events(self, events: Iterable[Event]) -> "BatchEncoder":
        for event in events:
            self.add(event)
        return self

    def take(self) -> bytes:
        """Encode everything accumulated so far and reset the encoder."""
        answers = self._answers
        if sys.byteorder != "little":  # pragma: no cover - x86/arm are LE
            answers = answers[:]
            answers.byteswap()
        answer_bytes = answers.tobytes()
        blocks = (
            bytes(self._flags),
            bytes(self._flow_hot),
            bytes(self._flow_cold),
            bytes(self._flow_str),
            bytes(self._dns_hot),
            answer_bytes,
            bytes(self._names),
            bytes(self._dns_cold),
        )
        parts = [
            HEADER.pack(MAGIC, VERSION, len(self._flags),
                        self.n_dns, self.n_flows)
        ]
        for block in blocks:
            parts.append(BLOCK_LEN.pack(len(block)))
            parts.append(block)
        self.__init__()
        return b"".join(parts)


def encode_events(events: Iterable[Event]) -> bytes:
    """Encode an ordered event stream into one batch buffer."""
    encoder = BatchEncoder()
    encoder.add_events(events)
    return encoder.take()


def encode_runs(runs: Iterable[tuple[bool, list[Event]]]) -> bytes:
    """Encode ``(is_dns, events)`` runs (``Trace.iter_event_runs``).

    The run structure collapses into the same columnar layout; only the
    interleave flags remember where each run began and ended.
    """
    encoder = BatchEncoder()
    for is_dns, events in runs:
        if is_dns:
            for event in events:
                encoder.add_dns(event)
        else:
            for event in events:
                encoder.add_flow(event)
    return encoder.take()


class BatchView:
    """Zero-copy view of one encoded batch: header plus block buffers.

    The view only locates the eight blocks; it does not decode records.
    The fan-out worker reads ``flags`` / ``flow_hot`` / ``dns_hot`` /
    ``dns_answers`` / ``dns_names`` straight out of it, skipping the
    cold and string blocks entirely.
    """

    __slots__ = (
        "n_events", "n_dns", "n_flows",
        "flags", "flow_hot", "flow_cold", "flow_str",
        "dns_hot", "dns_answers", "dns_names", "dns_cold",
    )

    def __init__(self, buf):
        buf = memoryview(buf)
        try:
            magic, version, n_events, n_dns, n_flows = HEADER.unpack_from(
                buf, 0
            )
        except struct.error as exc:
            raise CodecError(f"truncated batch header: {exc}") from exc
        if magic != MAGIC:
            raise CodecError(f"bad batch magic {bytes(magic)!r}")
        if version != VERSION:
            raise CodecError(f"unsupported batch version {version}")
        if n_dns + n_flows != n_events:
            raise CodecError("event counts disagree")
        self.n_events = n_events
        self.n_dns = n_dns
        self.n_flows = n_flows
        pos = HEADER.size
        blocks = []
        for _ in range(8):
            try:
                (length,) = BLOCK_LEN.unpack_from(buf, pos)
            except struct.error as exc:
                raise CodecError(f"truncated block header: {exc}") from exc
            pos += BLOCK_LEN.size
            if pos + length > len(buf):
                raise CodecError("block extends past end of buffer")
            blocks.append(buf[pos:pos + length])
            pos += length
        (self.flags, self.flow_hot, self.flow_cold, self.flow_str,
         self.dns_hot, self.dns_answers, self.dns_names,
         self.dns_cold) = blocks
        if len(self.flags) != n_events:
            raise CodecError("flags block does not match event count")
        if len(self.flow_hot) != n_flows * FLOW_HOT.size:
            raise CodecError("flow_hot block does not match flow count")
        if len(self.flow_cold) != n_flows * FLOW_COLD.size:
            raise CodecError("flow_cold block does not match flow count")
        if len(self.dns_hot) != n_dns * DNS_HOT.size:
            raise CodecError("dns_hot block does not match DNS count")
        if len(self.dns_cold) != n_dns * DNS_COLD.size:
            raise CodecError("dns_cold block does not match DNS count")


def batch_counts(buf) -> tuple[int, int, int]:
    """``(n_events, n_dns, n_flows)`` of an encoded batch."""
    view = BatchView(buf)
    return view.n_events, view.n_dns, view.n_flows


def retag_flows(view: BatchView, labels) -> bytes:
    """Re-encode a batch's flows as a flows-only batch with new labels.

    ``labels`` holds one entry per flow in block order: the attached
    FQDN as UTF-8 ``bytes``, or ``None`` for a cache miss.  The hot and
    cold flow blocks are copied verbatim (no per-record decode); only
    the string block is rebuilt — the fqdn slot takes the new label,
    cert/true-fqdn strings carry over from the source batch.  DNS
    records in the source batch are dropped.

    This is how a fan-out worker emits its tagged flows toward
    ``FlowDatabase.ingest_batch`` without materialising one
    :class:`FlowRecord` per flow — the Fig. 1 sniffer→database arrow in
    the codec's own deployment format.
    """
    n = view.n_flows
    if len(labels) != n:
        raise CodecError(
            f"{len(labels)} labels for {n} flows in the batch"
        )
    src = view.flow_str
    out = bytearray()
    pos = 0
    for label in labels:
        (length,) = STR_LEN.unpack_from(src, pos)
        pos += STR_LEN.size
        if length != _NONE_STR:
            pos += length  # discard the pre-tag fqdn slot
        if label is None:
            out += STR_LEN.pack(_NONE_STR)
        else:
            if len(label) > _MAX_STR:
                raise CodecError(
                    f"label of {len(label)} bytes exceeds codec limit"
                )
            out += STR_LEN.pack(len(label))
            out += label
        # cert_name and true_fqdn carry over verbatim.
        for _ in range(2):
            (length,) = STR_LEN.unpack_from(src, pos)
            stop = pos + STR_LEN.size + (
                0 if length == _NONE_STR else length
            )
            out += src[pos:stop]
            pos = stop
    blocks = (
        b"\x00" * n,           # flags: all flows, block order
        bytes(view.flow_hot),
        bytes(view.flow_cold),
        bytes(out),
        b"", b"", b"", b"",    # no DNS blocks
    )
    parts = [HEADER.pack(MAGIC, VERSION, n, 0, n)]
    for block in blocks:
        parts.append(BLOCK_LEN.pack(len(block)))
        parts.append(block)
    return b"".join(parts)


def _decode_str(buf, pos: int):
    (length,) = STR_LEN.unpack_from(buf, pos)
    pos += STR_LEN.size
    if length == _NONE_STR:
        return None, pos
    return bytes(buf[pos:pos + length]).decode("utf-8"), pos + length


def decode_events(buf) -> list[Event]:
    """Decode a batch back into event objects, in original stream order.

    This is the lossless inverse of :func:`encode_events` (the
    property-tested round trip); the fan-out hot path never calls it —
    workers consume the blocks directly.
    """
    return list(iter_decoded_events(buf))


def iter_decoded_events(buf) -> Iterator[Event]:
    view = BatchView(buf)
    flow_hot = FLOW_HOT.iter_unpack(view.flow_hot)
    flow_cold = FLOW_COLD.iter_unpack(view.flow_cold)
    dns_hot = DNS_HOT.iter_unpack(view.dns_hot)
    dns_cold = DNS_COLD.iter_unpack(view.dns_cold)
    answers = array("I")
    answers.frombytes(view.dns_answers)
    if sys.byteorder != "little":  # pragma: no cover - x86/arm are LE
        answers.byteswap()
    names = view.dns_names
    flow_str = view.flow_str
    str_pos = 0
    a_pos = 0
    n_pos = 0
    try:
        for flag in view.flags:
            if flag == 1:
                client_ip, timestamp, n, name_len = next(dns_hot)
                ttl, useless = next(dns_cold)
                fqdn = bytes(names[n_pos:n_pos + name_len]).decode("utf-8")
                n_pos += name_len
                yield DnsObservation(
                    timestamp=timestamp,
                    client_ip=client_ip,
                    fqdn=fqdn,
                    answers=answers[a_pos:a_pos + n].tolist(),
                    ttl=ttl,
                    useless=bool(useless),
                )
                a_pos += n
            elif flag == 0:
                client_ip, server_ip, start, proto_idx = next(flow_hot)
                (src_port, dst_port, transport, end, bytes_up, bytes_down,
                 packets) = next(flow_cold)
                fqdn, str_pos = _decode_str(flow_str, str_pos)
                cert_name, str_pos = _decode_str(flow_str, str_pos)
                true_fqdn, str_pos = _decode_str(flow_str, str_pos)
                yield FlowRecord(
                    fid=FiveTuple(
                        client_ip, server_ip, src_port, dst_port,
                        TransportProto(transport),
                    ),
                    start=start,
                    end=end,
                    protocol=PROTOCOLS[proto_idx],
                    bytes_up=bytes_up,
                    bytes_down=bytes_down,
                    packets=packets,
                    fqdn=fqdn,
                    cert_name=cert_name,
                    true_fqdn=true_fqdn,
                )
            else:
                raise CodecError(f"invalid interleave flag {flag}")
    except (StopIteration, IndexError, struct.error, ValueError) as exc:
        if isinstance(exc, CodecError):
            raise
        raise CodecError(f"corrupt batch body: {exc!r}") from exc
