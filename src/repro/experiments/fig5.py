"""Figure 5 — active FQDNs per CDN over the day.

Paper (EU1-ADSL2, 10-min bins): Amazon serves the most distinct FQDNs
(>600 per bin at peak, 7995 over the day), Akamai and Microsoft follow,
EdgeCast serves <20.  The reproduced ordering should match.
"""

from __future__ import annotations

from repro.analytics.temporal import fqdns_per_cdn_series, total_fqdns_per_cdn
from repro.experiments.datasets import DEFAULT_SEED, get_result
from repro.experiments.report import hours_fmt
from repro.experiments.result import ExperimentResult

CDNS = (
    "akamai", "amazon", "google", "level 3", "leaseweb", "cotendo",
    "edgecast", "microsoft",
)


def run(
    seed: int = DEFAULT_SEED,
    trace: str = "EU1-ADSL2-24H",
    bin_seconds: float = 600.0,
) -> ExperimentResult:
    result = get_result(trace, seed)
    ipdb = result.trace.internet.ipdb
    series = fqdns_per_cdn_series(
        result.database, ipdb, CDNS, bin_seconds=bin_seconds
    )
    totals = {
        cdn: total_fqdns_per_cdn(result.database, ipdb, cdn) for cdn in CDNS
    }
    sections = []
    for cdn in CDNS:
        data = series[cdn]
        if not data:
            sections.append(f"{cdn}: (no labeled flows)")
            continue
        rows = [
            f"{hours_fmt(t)} |{'#' * min(v, 70)}| {v}"
            for t, v in data[:: max(1, len(data) // 16)]
        ]
        sections.append(
            f"{cdn} — active FQDNs per {bin_seconds/60:.0f}min bin "
            f"(day total {totals[cdn]})\n" + "\n".join(rows)
        )
    rendered = "\n\n".join(sections)
    ranked = sorted(totals, key=totals.get, reverse=True)
    notes = (
        "Shape check — big hosters serve far more distinct names than "
        f"niche CDNs: day totals {totals}; ordering {' > '.join(ranked[:4])}; "
        f"edgecast small ({totals['edgecast']}) as in the paper (<20/bin)."
    )
    return ExperimentResult(
        exp_id="fig5",
        title="FQDNs served per CDN over time",
        data={"series": series, "totals": totals},
        rendered=rendered,
        notes=notes,
        paper_reference="Fig. 5",
    )
