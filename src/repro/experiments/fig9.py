"""Figure 9 — organization × CDN access patterns across vantage points.

Paper: Facebook is mostly SELF-hosted everywhere with some Akamai;
Twitter leans on Akamai in Europe but much less in the US; Dailymotion
rides Dedibox everywhere, with extra US mirrors (SELF/Meta/NTT) and a
bit of EdgeCast in Europe.
"""

from __future__ import annotations

from repro.analytics.spatial import SpatialDiscovery
from repro.experiments.datasets import DEFAULT_SEED, get_result
from repro.experiments.report import render_table
from repro.experiments.result import ExperimentResult

DOMAINS = ("facebook.com", "twitter.com", "dailymotion.com")
TRACES = ("EU1-ADSL1", "EU2-ADSL", "US-3G")


def run(seed: int = DEFAULT_SEED) -> ExperimentResult:
    data: dict[str, dict[str, dict[str, float]]] = {}
    sections = []
    for domain in DOMAINS:
        per_trace: dict[str, dict[str, float]] = {}
        cdns: set[str] = set()
        for trace_name in TRACES:
            result = get_result(trace_name, seed)
            spatial = SpatialDiscovery(
                result.database, result.trace.internet.ipdb
            )
            report = spatial.discover(domain)
            shares = {
                share.organization: report.flow_share(share.organization)
                for share in report.ranked_cdns()
            }
            per_trace[trace_name] = shares
            cdns.update(shares)
        data[domain] = per_trace
        columns = sorted(cdns)
        rows = []
        for trace_name in TRACES:
            row = [trace_name]
            for cdn in columns:
                share = per_trace[trace_name].get(cdn, 0.0)
                row.append(f"{share:.0%}" if share else ".")
            rows.append(row)
        sections.append(
            render_table(
                ["vantage", *columns], rows, title=f"{domain}"
            )
        )
    rendered = "\n\n".join(sections)
    fb = data["facebook.com"]
    tw = data["twitter.com"]
    dm = data["dailymotion.com"]
    checks = [
        f"facebook SELF-dominant everywhere: "
        f"{all(fb[t].get('SELF', 0) > 0.5 for t in TRACES)}",
        f"twitter akamai share EU vs US: "
        f"{tw['EU1-ADSL1'].get('akamai', 0):.0%} vs "
        f"{tw['US-3G'].get('akamai', 0):.0%}",
        f"dailymotion dedibox everywhere: "
        f"{all(dm[t].get('dedibox', 0) > 0.3 for t in TRACES)}",
        f"dailymotion US-only mirrors (meta/ntt/SELF): "
        f"{[k for k in ('meta', 'ntt', 'SELF') if dm['US-3G'].get(k, 0) > 0]}",
    ]
    return ExperimentResult(
        exp_id="fig9",
        title="Org × CDN access patterns by vantage point",
        data=data,
        rendered=rendered,
        notes="Shape checks — " + "; ".join(checks),
        paper_reference="Fig. 9",
    )
