"""Figure 11 — BitTorrent tracker activity timeline on appspot.

Paper (18 days, 4-hour bins, 45 trackers): ~33% stay active the whole
window, a group (ids 26-31) shows synchronized on-off behaviour, the
rest are transient zombies.
"""

from __future__ import annotations

from repro.analytics.trackers import TrackerActivityAnalysis
from repro.experiments.datasets import get_live
from repro.experiments.result import ExperimentResult


def run(days: int = 18, seed: int = 11) -> ExperimentResult:
    live, database = get_live(days=days, seed=seed)
    tracker_set = set(live.tracker_fqdns)
    analysis = TrackerActivityAnalysis(
        bin_seconds=4 * 3600.0,
        classifier=lambda fqdn: fqdn in tracker_set,
    )
    # Grouped columnar path: one classification per distinct service,
    # activity from the store's deduped (service, bin) pairs.
    analysis.observe_database(database)
    rendered = analysis.render(width_bins=days * 6 - 1)
    timelines = analysis.timelines()
    always = analysis.always_on(threshold=0.85)
    groups = analysis.synchronized_groups(min_size=3, min_overlap=0.6)
    notes = (
        f"Shape check — {len(timelines)} trackers observed (paper 45); "
        f"{len(always)} always-on ({len(always)/max(len(timelines),1):.0%}; "
        f"paper ~33%); synchronized groups found: "
        f"{[len(g) for g in groups]} (paper: ids 26-31 move together)."
    )
    return ExperimentResult(
        exp_id="fig11",
        title="Tracker activity timeline (live deployment)",
        data={
            "timelines": {
                t.service: sorted(t.active_bins) for t in timelines
            },
            "always_on": [t.service for t in always],
            "synchronized": groups,
        },
        rendered=rendered,
        notes=notes,
        paper_reference="Fig. 11",
    )
