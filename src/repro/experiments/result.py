"""Common result container for experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class ExperimentResult:
    """Output of one experiment run.

    Attributes:
        exp_id: registry id, e.g. ``"table5"``.
        title: what the paper calls it.
        data: structured result (rows, series, ...) for programmatic use.
        rendered: human-readable text (the regenerated table/figure).
        notes: qualitative expectations and observations.
    """

    exp_id: str
    title: str
    data: Any
    rendered: str
    notes: str = ""
    paper_reference: str = ""
    extras: dict = field(default_factory=dict)

    def __str__(self) -> str:
        header = f"== {self.exp_id}: {self.title} =="
        parts = [header, self.rendered]
        if self.notes:
            parts.append(f"[notes] {self.notes}")
        return "\n".join(parts)
