"""Figure 4 — serverIPs per second-level domain over the day.

Paper (EU1-ADSL2, 10-min bins): fbcdn.net and youtube.com show a strong
diurnal pattern (hundreds of serverIPs at peak), while blogspot.com is
served by <20 addresses all day.
"""

from __future__ import annotations

from repro.analytics.temporal import servers_per_domain_series
from repro.experiments.datasets import DEFAULT_SEED, get_result
from repro.experiments.report import hours_fmt
from repro.experiments.result import ExperimentResult

DOMAINS = (
    "twitter.com", "youtube.com", "fbcdn.net", "facebook.com",
    "blogspot.com",
)


def run(
    seed: int = DEFAULT_SEED,
    trace: str = "EU1-ADSL2-24H",
    bin_seconds: float = 600.0,
) -> ExperimentResult:
    result = get_result(trace, seed)
    series = servers_per_domain_series(
        result.database, DOMAINS, bin_seconds=bin_seconds
    )
    sections = []
    peaks = {}
    troughs = {}
    for domain in DOMAINS:
        data = series[domain]
        if not data:
            sections.append(f"{domain}: (no flows)")
            continue
        peaks[domain] = max(v for _, v in data)
        troughs[domain] = min(v for _, v in data)
        rows = [
            f"{hours_fmt(t)} |{'#' * v}| {v}"
            for t, v in data[:: max(1, len(data) // 24)]
        ]
        sections.append(
            f"{domain} — serverIPs per {bin_seconds/60:.0f}min bin\n"
            + "\n".join(rows)
        )
    rendered = ("\n\n").join(sections)
    cdn_backed = ("fbcdn.net", "youtube.com")
    diurnal_ok = all(
        domain in peaks and peaks[domain] >= 2 * max(troughs[domain], 1)
        for domain in cdn_backed
    )
    notes = (
        f"Shape check — CDN-backed domains scale with the day "
        f"(peak≥2×trough: {diurnal_ok}); blogspot stays small "
        f"(peak {peaks.get('blogspot.com', 0)} vs fbcdn peak "
        f"{peaks.get('fbcdn.net', 0)})."
    )
    return ExperimentResult(
        exp_id="fig4",
        title="ServerIPs per 2nd-level domain over time",
        data=series,
        rendered=rendered,
        notes=notes,
        paper_reference="Fig. 4",
    )
