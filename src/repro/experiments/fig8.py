"""Figure 8 — the zynga.com domain structure across CDNs (US-3G).

Paper: Amazon EC2 runs the games (498 servers, 86% of flows), Akamai
hosts static content (30 servers, 7%), Zynga's own 28 servers take the
rest (7%).  Shape to preserve: Amazon dominates both server count and
flow share; three hosting groups.
"""

from __future__ import annotations

from repro.analytics.domain_tree import build_domain_tree
from repro.experiments.datasets import DEFAULT_SEED, get_result
from repro.experiments.result import ExperimentResult


def run(seed: int = DEFAULT_SEED, trace: str = "US-3G") -> ExperimentResult:
    result = get_result(trace, seed)
    tree = build_domain_tree(
        result.database, "zynga.com", result.trace.internet.ipdb
    )
    rendered = tree.render(max_depth=3)
    shares = {
        group.organization: (
            group.server_count, tree.flow_share(group.organization)
        )
        for group in tree.groups.values()
    }
    amazon = shares.get("amazon", (0, 0.0))
    akamai = shares.get("akamai", (0, 0.0))
    notes = (
        f"Shape check — amazon dominates: {amazon[1]:.0%} of flows on "
        f"{amazon[0]} servers (paper 86% on 498); akamai secondary "
        f"({akamai[1]:.0%} on {akamai[0]}; paper 7% on 30); groups: "
        + ", ".join(
            f"{org}={share:.0%}({servers} srv)"
            for org, (servers, share) in sorted(shares.items())
        )
    )
    return ExperimentResult(
        exp_id="fig8",
        title="Zynga domain structure by CDN",
        data=shares,
        rendered=rendered,
        notes=notes,
        paper_reference="Fig. 8",
    )
