"""Table 7 — service tags on non-standard ports (US-3G).

The paper's point: ports like 1337 carry no registered service, yet the
extracted tokens (exodus, genesis) identify the 1337x.org BitTorrent
tracker; 5228 yields mtalk (Android Market), 12043/12046 yield simN/agni
(Second Life), and so on.
"""

from __future__ import annotations

from repro.analytics.tags import ServiceTagExtractor
from repro.experiments.datasets import DEFAULT_SEED, get_result
from repro.experiments.report import render_table
from repro.experiments.result import ExperimentResult

FREQUENT_PORTS = (
    1080, 1337, 2710, 5050, 5190, 5222, 5223, 5228, 6969, 12043, 12046,
    18182,
)

GROUND_TRUTH = {
    1080: "Opera Browser", 1337: "BT Tracker", 2710: "BT Tracker",
    5050: "Yahoo Messenger", 5190: "AOL ICQ", 5222: "Gtalk",
    5223: "Apple push services", 5228: "Android Market",
    6969: "BT Tracker", 12043: "Second Life", 12046: "Second Life",
    18182: "BT Tracker",
}

EXPECTED_TOKEN = {
    1080: {"opera", "miniN"},
    1337: {"exodus", "genesis"},
    2710: {"tracker", "www"},
    5050: {"msg", "webcs", "sip", "voipa"},
    5190: {"americaonline"},
    5222: {"chat"},
    5223: {"courier", "push"},
    5228: {"mtalk"},
    6969: {"tracker", "trackerN", "torrent", "exodus"},
    12043: {"simN", "agni"},
    12046: {"simN", "agni"},
    18182: {"useful", "broker"},
}


def run(
    seed: int = DEFAULT_SEED, trace: str = "US-3G", k: int = 5
) -> ExperimentResult:
    result = get_result(trace, seed)
    extractor = ServiceTagExtractor(result.database)
    rows = []
    data = {}
    hits = []
    for port in FREQUENT_PORTS:
        tags = extractor.extract(port, k=k)
        data[port] = [(t.token, t.score) for t in tags]
        keywords = ", ".join(f"({tag.score:.0f}){tag.token}" for tag in tags)
        rows.append([port, keywords or "(no flows)", GROUND_TRUTH[port]])
        top_tokens = {tag.token for tag in tags[:3]}
        hits.append(
            f"{port}:{'OK' if top_tokens & EXPECTED_TOKEN[port] else 'MISS'}"
        )
    rendered = render_table(
        ["Port", "Keywords (score)", "GT"],
        rows,
        title=f"Table 7: keyword extraction on frequently used ports ({trace})",
    )
    notes = "Expected service token in top-3: " + " ".join(hits)
    return ExperimentResult(
        exp_id="table7",
        title="Service tags on non-standard ports",
        data=data,
        rendered=rendered,
        notes=notes,
        paper_reference="Tab. 7",
    )
