"""Experiment harness: one module per table/figure of the paper.

Every module exposes ``run(...) -> ExperimentResult``; the registry in
:mod:`~repro.experiments.runner` maps experiment ids ("table2", "fig12",
...) to them, and the ``repro-exp`` console script runs them from the
command line.  Generated traces are cached per process in
:mod:`~repro.experiments.datasets` so a full sweep builds each trace
once.
"""

from repro.experiments.result import ExperimentResult
from repro.experiments.runner import REGISTRY, run_experiment

__all__ = ["ExperimentResult", "REGISTRY", "run_experiment"]
