"""Table 8 — appspot.com service breakdown (18-day live deployment).

Paper: BitTorrent trackers are only ~7% of appspot services but generate
*more flows* than everything else combined, and their client-to-server
byte share is disproportionately large (announce-heavy traffic).
"""

from __future__ import annotations

from dataclasses import asdict

from repro.analytics.trackers import service_breakdown
from repro.experiments.datasets import get_live
from repro.experiments.report import render_table
from repro.experiments.result import ExperimentResult


def _fmt_bytes(count: int) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if count < 1024:
            return f"{count:.0f}{unit}"
        count /= 1024
    return f"{count:.1f}TB"


def run(days: int = 18, seed: int = 11) -> ExperimentResult:
    live, database = get_live(days=days, seed=seed)
    # Ground truth from the deployment (the paper used Tstat's DPI to
    # confirm which appspot services are BitTorrent trackers).
    tracker_set = set(live.tracker_fqdns)
    trackers, general = service_breakdown(
        database, "appspot.com", classifier=lambda fqdn: fqdn in tracker_set
    )
    rows = [
        [
            totals.label, totals.services, totals.flows,
            _fmt_bytes(totals.bytes_up), _fmt_bytes(totals.bytes_down),
        ]
        for totals in (trackers, general)
    ]
    rendered = render_table(
        ["Service Type", "Services", "Flows", "C2S", "S2C"],
        rows,
        title=f"Table 8: appspot services over {days} days (live)",
    )
    service_share = trackers.services / max(
        trackers.services + general.services, 1
    )
    tracker_up_ratio = trackers.bytes_up / max(trackers.bytes_down, 1)
    general_up_ratio = general.bytes_up / max(general.bytes_down, 1)
    notes = (
        f"Shape check — trackers are a small service share "
        f"({service_share:.0%}; paper 7%) but flow-heavy "
        f"({trackers.flows} vs {general.flows} flows); tracker C2S/S2C "
        f"ratio ({tracker_up_ratio:.2f}) far above general services "
        f"({general_up_ratio:.2f})."
    )
    return ExperimentResult(
        exp_id="table8",
        title="Appspot services (live deployment)",
        data={
            "trackers": asdict(trackers),
            "general": asdict(general),
        },
        rendered=rendered,
        notes=notes,
        paper_reference="Tab. 8",
    )
