"""Figure 6 — unique FQDN / 2nd-level-domain / serverIP birth processes.

Paper (18-day live deployment): serverIPs and 2LDs saturate after a few
days; unique FQDNs keep growing linearly (~100k/day at the paper's
scale) because content keeps being created.
"""

from __future__ import annotations

from repro.analytics.birth import EntityBirthTracker
from repro.experiments.datasets import get_live
from repro.experiments.report import render_series
from repro.experiments.result import ExperimentResult


def run(days: int = 18, seed: int = 11) -> ExperimentResult:
    live, _database = get_live(days=days, seed=seed)
    tracker = EntityBirthTracker(bin_seconds=6 * 3600.0)
    tracker.observe_all(live.flows)
    sections = []
    for label, process in (
        ("unique FQDNs", tracker.fqdns),
        ("unique 2nd-level domains", tracker.slds),
        ("unique serverIPs", tracker.servers),
    ):
        series = [(t / 86400.0, v) for t, v in process.series()]
        sections.append(
            render_series(
                series,
                title=f"{label} (total {process.total})",
                x_format="day {:.1f}",
                max_rows=18,
            )
        )
    rendered = "\n\n".join(sections)
    # Growth over the last quarter of the window, per day.
    fqdn_rate = tracker.fqdns.growth_rate(window_bins=12) * 4
    sld_rate = tracker.slds.growth_rate(window_bins=12) * 4
    server_rate = tracker.servers.growth_rate(window_bins=12) * 4
    notes = (
        f"Shape check — late growth per day: FQDN {fqdn_rate:.0f} "
        f"(keeps climbing), 2LD {sld_rate:.1f} and serverIP "
        f"{server_rate:.1f} (saturated), matching the paper's finding "
        f"that content grows while infrastructure does not."
    )
    return ExperimentResult(
        exp_id="fig6",
        title="Entity birth processes (live deployment)",
        data={
            "fqdn": tracker.fqdns.series(),
            "sld": tracker.slds.series(),
            "server_ip": tracker.servers.series(),
        },
        rendered=rendered,
        notes=notes,
        paper_reference="Fig. 6",
    )
