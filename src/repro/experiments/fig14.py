"""Figure 14 — DNS responses per 10-minute bin over a day.

Paper (EU1-ADSL1, 24h): the response rate follows the diurnal curve,
peaking in the evening (350k/10min at the paper's scale).
"""

from __future__ import annotations

from repro.analytics.temporal import dns_response_rate
from repro.experiments.datasets import DEFAULT_SEED, get_result
from repro.experiments.report import hours_fmt, render_series
from repro.experiments.result import ExperimentResult


def run(
    seed: int = DEFAULT_SEED, trace: str = "EU1-ADSL1",
    bin_seconds: float = 600.0,
) -> ExperimentResult:
    result = get_result(trace, seed)
    start_offset = result.trace.profile.start_hour_gmt * 3600.0
    bins = dns_response_rate(
        result.trace.observations, bin_seconds=bin_seconds
    )
    series = [
        ((start_offset + t) % 86400.0, count) for t, count in bins.series()
    ]
    rendered = render_series(
        [(t / 3600.0, v) for t, v in series],
        title=f"Fig. 14: DNS responses per {bin_seconds/60:.0f}min ({trace})",
        x_format="{:05.2f}h",
        max_rows=36,
    )
    peak_time, peak_count = bins.peak()
    peak_clock = hours_fmt((start_offset + peak_time) % 86400.0)
    # Trough: smallest bin in the small hours.
    night = [
        count
        for t, count in series
        if 2 * 3600 <= t <= 6 * 3600
    ]
    notes = (
        f"Shape check — diurnal: peak {peak_count}/bin at {peak_clock} "
        f"(paper peaks in the evening), overnight minimum "
        f"{min(night) if night else 'n/a'}/bin."
    )
    return ExperimentResult(
        exp_id="fig14",
        title="DNS response rate over the day",
        data=series,
        rendered=rendered,
        notes=notes,
        paper_reference="Fig. 14",
    )
