"""Figure 12 — CDF of the first-flow delay.

Paper: ~90% of first flows start within 1 s of the DNS response; about
5% take longer than 10 s (prefetch-then-use); FTTH shows the smallest
delays, 3G the largest.
"""

from __future__ import annotations

from repro.experiments.datasets import DEFAULT_SEED, STANDARD_TRACES, get_delays
from repro.experiments.report import render_table
from repro.experiments.result import ExperimentResult

SAMPLE_POINTS = (0.01, 0.1, 0.3, 1.0, 10.0, 300.0, 1800.0)


def run(seed: int = DEFAULT_SEED) -> ExperimentResult:
    analyses = {
        name: get_delays(name, seed) for name in STANDARD_TRACES
    }
    rows = []
    for point in SAMPLE_POINTS:
        row = [f"<= {point:g}s"]
        for name in STANDARD_TRACES:
            row.append(f"{analyses[name].fraction_within(point):.0%}")
        rows.append(row)
    rendered = render_table(
        ["Delay", *STANDARD_TRACES],
        rows,
        title="Fig. 12: CDF of time between DNS response and first flow",
    )
    within_1s = {
        name: analyses[name].fraction_within(1.0) for name in STANDARD_TRACES
    }
    over_10s = {
        name: 1 - analyses[name].fraction_within(10.0)
        for name in STANDARD_TRACES
    }
    notes = (
        f"Shape check — ~90% within 1s on fixed-line "
        f"({within_1s}); >10s tail ~5% ({ {k: f'{v:.0%}' for k, v in over_10s.items()} }); "
        f"FTTH fastest, 3G slowest: "
        f"{within_1s['EU1-FTTH'] > within_1s['US-3G']}"
    )
    return ExperimentResult(
        exp_id="fig12",
        title="First-flow delay CDF",
        data={
            name: analysis.cdf_points("first", SAMPLE_POINTS)
            for name, analysis in analyses.items()
        },
        rendered=rendered,
        notes=notes,
        paper_reference="Fig. 12",
    )
