"""Plain-text rendering helpers: tables and CDF/series plots."""

from __future__ import annotations

from typing import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width ASCII table."""
    cells = [[str(h) for h in headers]] + [
        [str(value) for value in row] for row in rows
    ]
    widths = [
        max(len(row[col]) for row in cells) for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(separator)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_cdf(
    points: Sequence[tuple[float, float]],
    title: str = "",
    width: int = 50,
    x_label: str = "x",
) -> str:
    """Horizontal-bar CDF: one row per sampled x, bar length = CDF."""
    lines = [title] if title else []
    for x, y in points:
        bar = "#" * int(round(y * width))
        lines.append(f"{x:>10.3g} {x_label:<4s} |{bar:<{width}}| {y:6.1%}")
    return "\n".join(lines)


def render_series(
    series: Sequence[tuple[float, float]],
    title: str = "",
    width: int = 50,
    max_rows: int = 48,
    x_format: str = "{:.0f}",
) -> str:
    """Horizontal-bar time series, downsampled to ``max_rows`` rows."""
    lines = [title] if title else []
    if not series:
        lines.append("(empty)")
        return "\n".join(lines)
    step = max(1, len(series) // max_rows)
    sampled = list(series)[::step]
    peak = max(value for _, value in sampled) or 1
    for x, value in sampled:
        bar = "#" * int(round(value / peak * width))
        lines.append(f"{x_format.format(x):>10} |{bar:<{width}}| {value}")
    return "\n".join(lines)


def hours_fmt(seconds: float) -> str:
    """Format trace-time seconds as HH:MM."""
    total_minutes = int(seconds // 60)
    return f"{(total_minutes // 60) % 24:02d}:{total_minutes % 60:02d}"
