"""Per-process dataset cache.

Experiments and benchmarks share traces: building EU1-ADSL1 takes a few
seconds, so each (name, seed) is generated once and the sniffer pipeline
run once; downstream analytics operate on the cached labeled database.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.analytics.database import FlowDatabase
from repro.simulation.trace import (
    LiveDeployment,
    Trace,
    build_live_deployment,
    build_trace,
)
from repro.sniffer.pipeline import SnifferPipeline

DEFAULT_SEED = 7
STANDARD_TRACES = (
    "US-3G", "EU2-ADSL", "EU1-ADSL1", "EU1-ADSL2", "EU1-FTTH",
)
DEFAULT_CLIST = 200_000


@dataclass
class TraceResult:
    """A trace plus everything the sniffer derived from it."""

    trace: Trace
    pipeline: SnifferPipeline
    database: FlowDatabase


@lru_cache(maxsize=None)
def get_trace(name: str, seed: int = DEFAULT_SEED) -> Trace:
    """Build (once) and return a standard trace."""
    return build_trace(name, seed=seed)


@lru_cache(maxsize=None)
def get_result(name: str, seed: int = DEFAULT_SEED) -> TraceResult:
    """Trace + pipeline run + labeled flow database, cached."""
    trace = get_trace(name, seed)
    pipeline = SnifferPipeline(clist_size=DEFAULT_CLIST)
    pipeline.process_trace(trace)
    database = FlowDatabase.from_flows(pipeline.tagged_flows)
    return TraceResult(trace=trace, pipeline=pipeline, database=database)


@lru_cache(maxsize=None)
def get_live(
    days: int = 18, seed: int = 11, n_clients: int = 50
) -> tuple[LiveDeployment, FlowDatabase]:
    """The 18-day live deployment stream plus its flow database."""
    live = build_live_deployment(days=days, seed=seed, n_clients=n_clients)
    return live, FlowDatabase.from_flows(live.flows)


@lru_cache(maxsize=None)
def get_delays(name: str, seed: int = DEFAULT_SEED):
    """DNS-to-flow delay analysis for one trace (Tab. 9, Fig. 12/13)."""
    from repro.analytics.delays import analyze_delays

    result = get_result(name, seed)
    return analyze_delays(result.trace.observations, result.trace.flows)
