"""Per-process dataset cache.

Experiments and benchmarks share traces: building EU1-ADSL1 takes a few
seconds, so each (name, seed) is generated once and the sniffer pipeline
run once; downstream analytics operate on the cached labeled database.

A durable flow store can substitute for the in-memory database:
:func:`set_stored_root` points the cache at a directory of per-trace
stores (as written by ``repro-flowstore ingest-trace``), after which
:func:`get_result` serves each trace's analytics from the reopened
on-disk store — the ``repro-exp --flow-store DIR`` path.
"""

from __future__ import annotations

from functools import lru_cache
from pathlib import Path
from typing import Optional

from repro.analytics.database import FlowDatabase
from repro.simulation.trace import (
    LiveDeployment,
    Trace,
    build_live_deployment,
    build_trace,
)
from repro.sniffer.pipeline import SnifferPipeline

DEFAULT_SEED = 7
STANDARD_TRACES = (
    "US-3G", "EU2-ADSL", "EU1-ADSL1", "EU1-ADSL2", "EU1-FTTH",
)
DEFAULT_CLIST = 200_000

_STORED_ROOT: Optional[Path] = None
_STORED_PARALLEL: Optional[int] = None
_STORED_SHARD_BACKEND: Optional[str] = None
_OPEN_STORES: list = []


def set_stored_root(path, parallel: Optional[int] = None,
                    shard_backend: Optional[str] = None) -> None:
    """Serve experiment databases from stored flow-store directories.

    ``path`` is a root directory holding one flow store per trace name
    (``<root>/<trace-name>``); ``None`` reverts to in-memory databases.
    Cached results are invalidated either way.  Traces without a store
    under the root fall back to the in-memory build.  ``parallel=N``
    opens each store with an ``N``-thread per-segment query pool (the
    ``repro-exp --flow-store DIR --parallel N`` path); results are
    bit-identical to serial.

    A per-trace directory carrying ``SHARDS.json`` (built with
    ``repro-flowstore ingest-trace --shards N``) opens as a
    :class:`repro.analytics.shard.ShardCoordinator`;
    ``shard_backend="process"`` (the ``repro-exp --shards process``
    path) runs one worker process per shard — the process-pool rescue
    for deployments where the thread pool is GIL-bound.
    """
    global _STORED_ROOT, _STORED_PARALLEL, _STORED_SHARD_BACKEND
    _STORED_ROOT = Path(path) if path is not None else None
    _STORED_PARALLEL = parallel
    _STORED_SHARD_BACKEND = shard_backend
    # The cached results being invalidated below hold the previously
    # opened stores; close them so their lazily-built query thread
    # pools don't idle for the rest of the process.
    for store in _OPEN_STORES:
        store.close()
    _OPEN_STORES.clear()
    get_result.cache_clear()


def stored_database(name: str, seed: int = DEFAULT_SEED):
    """The reopened on-disk store for ``name`` under the stored root,
    or None when no stored dataset is available.

    ``repro-flowstore ingest-trace`` sidecars the generating seed as
    ``DATASET.json``; a store built from a different seed — or one
    whose sidecar still carries the in-progress ``building`` mark of a
    crashed ingest — is rejected (returns None → in-memory fallback)
    rather than silently serving mixed or partial data.  Hand-built
    stores without the sidecar are accepted as-is.
    """
    if _STORED_ROOT is None:
        return None
    directory = _STORED_ROOT / name
    from repro.analytics.shard import SHARDS_NAME

    sharded = (directory / SHARDS_NAME).exists()
    if not sharded and not (directory / "MANIFEST.json").exists():
        return None
    sidecar = directory / "DATASET.json"
    if sidecar.exists():
        import json

        try:
            meta = json.loads(sidecar.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if meta.get("seed") != seed or meta.get("building"):
            return None
    if sharded:
        from repro.analytics.shard import ShardCoordinator

        store = ShardCoordinator(
            directory, parallel=_STORED_PARALLEL,
            backend=_STORED_SHARD_BACKEND or "inprocess",
        )
    else:
        from repro.analytics.storage import FlowStore

        store = FlowStore(directory, parallel=_STORED_PARALLEL)
    _OPEN_STORES.append(store)
    return store


class TraceResult:
    """A trace plus everything the sniffer derived from it.

    The pipeline is lazy: results served from a stored flow store
    never ran the sniffer, and only experiments that read the
    sniffer-side statistics (Tab. 2 hit ratios) pay for the run — on
    first :attr:`pipeline` access.
    """

    def __init__(
        self,
        trace: Trace,
        database: FlowDatabase,
        pipeline: Optional[SnifferPipeline] = None,
    ):
        self.trace = trace
        self.database = database
        self._pipeline = pipeline

    @property
    def pipeline(self) -> SnifferPipeline:
        if self._pipeline is None:
            pipeline = SnifferPipeline(clist_size=DEFAULT_CLIST)
            pipeline.process_trace(self.trace)
            self._pipeline = pipeline
        return self._pipeline


@lru_cache(maxsize=None)
def get_trace(name: str, seed: int = DEFAULT_SEED) -> Trace:
    """Build (once) and return a standard trace."""
    return build_trace(name, seed=seed)


@lru_cache(maxsize=None)
def get_result(name: str, seed: int = DEFAULT_SEED) -> TraceResult:
    """Trace + pipeline run + labeled flow database, cached.

    With a stored root configured (:func:`set_stored_root`), the
    database is the reopened on-disk store for the trace instead of a
    freshly-built in-memory one, and the sniffer run is skipped
    entirely — it happens lazily if an experiment reads the
    sniffer-side statistics (Tab. 2 hit ratios).
    """
    trace = get_trace(name, seed)
    database = stored_database(name, seed)
    pipeline = None
    if database is None:
        pipeline = SnifferPipeline(clist_size=DEFAULT_CLIST)
        pipeline.process_trace(trace)
        database = FlowDatabase.from_flows(pipeline.tagged_flows)
    return TraceResult(trace=trace, database=database, pipeline=pipeline)


@lru_cache(maxsize=None)
def get_live(
    days: int = 18, seed: int = 11, n_clients: int = 50
) -> tuple[LiveDeployment, FlowDatabase]:
    """The 18-day live deployment stream plus its flow database."""
    live = build_live_deployment(days=days, seed=seed, n_clients=n_clients)
    return live, FlowDatabase.from_flows(live.flows)


@lru_cache(maxsize=None)
def get_delays(name: str, seed: int = DEFAULT_SEED):
    """DNS-to-flow delay analysis for one trace (Tab. 9, Fig. 12/13)."""
    from repro.analytics.delays import analyze_delays

    result = get_result(name, seed)
    return analyze_delays(result.trace.observations, result.trace.flows)
