"""Table 9 — fraction of "useless" DNS resolutions.

Paper: 46-50% of resolutions at fixed-line vantage points are never
followed by a flow (browser prefetching); mobile terminals are less
aggressive (US-3G: 30%).
"""

from __future__ import annotations

from repro.experiments.datasets import DEFAULT_SEED, STANDARD_TRACES, get_delays
from repro.experiments.report import render_table
from repro.experiments.result import ExperimentResult


def run(seed: int = DEFAULT_SEED) -> ExperimentResult:
    fractions = {}
    rows = []
    for name in STANDARD_TRACES:
        analysis = get_delays(name, seed)
        fractions[name] = analysis.useless_fraction
        rows.append([name, f"{analysis.useless_fraction:.0%}"])
    rendered = render_table(
        ["Trace", "Useless DNS"],
        rows,
        title="Table 9: fraction of useless DNS resolutions",
    )
    fixed_line = [
        fractions[n] for n in STANDARD_TRACES if n != "US-3G"
    ]
    notes = (
        f"Shape check — fixed-line traces high "
        f"({min(fixed_line):.0%}-{max(fixed_line):.0%}; paper 46-50%), "
        f"mobile lower ({fractions['US-3G']:.0%}; paper 30%)."
    )
    return ExperimentResult(
        exp_id="table9",
        title="Useless DNS resolutions",
        data=fractions,
        rendered=rendered,
        notes=notes,
        paper_reference="Tab. 9",
    )
