"""Table 4 — TLS certificate inspection vs DN-Hunter.

Paper result on EU1-ADSL2: 18% of TLS flows have a certificate equal to
the FQDN, 19% generic wildcards, 40% totally different (CDN certs), 23%
carry no certificate (session resumption).  Shape to preserve: a
minority of flows yield the exact name; different + none dominate.
"""

from __future__ import annotations

from repro.baselines.tls_cert import (
    CertCategory,
    compare_certificate_inspection,
)
from repro.experiments.datasets import DEFAULT_SEED, get_result
from repro.experiments.report import render_table
from repro.experiments.result import ExperimentResult


def run(seed: int = DEFAULT_SEED, trace: str = "EU1-ADSL2") -> ExperimentResult:
    result = get_result(trace, seed)
    comparison = compare_certificate_inspection(result.database)
    rows = [
        [label, f"{fraction:.0%}"]
        for label, fraction in comparison.as_rows()
    ]
    rendered = render_table(
        ["Outcome", "Share"],
        rows,
        title=(
            f"Table 4: certificate inspection vs DN-Hunter "
            f"({comparison.samples} TLS flows, {trace})"
        ),
    )
    exact = comparison.fraction(CertCategory.EQUAL_FQDN)
    blind = comparison.fraction(CertCategory.DIFFERENT) + comparison.fraction(
        CertCategory.NO_CERT
    )
    notes = (
        f"Shape check — exact minority ({exact:.0%}; paper 18%), "
        f"different+none majority ({blind:.0%}; paper 63%)."
    )
    return ExperimentResult(
        exp_id="table4",
        title="Certificate inspection vs DN-Hunter",
        data={c.value: comparison.fraction(c) for c in CertCategory},
        rendered=rendered,
        notes=notes,
        paper_reference="Tab. 4",
    )
