"""Figure 13 — CDF of the gap between a DNS response and *any* later flow.

Paper: the head follows the first-flow delay, but the tail stretches to
hours — client caches keep serving flows long after the response, so a
Clist covering ~1 hour of responses resolves ~98% of flows (Sec. 6).
"""

from __future__ import annotations

from repro.experiments.datasets import DEFAULT_SEED, STANDARD_TRACES, get_delays
from repro.experiments.report import render_table
from repro.experiments.result import ExperimentResult

SAMPLE_POINTS = (0.1, 1.0, 10.0, 300.0, 1800.0, 3600.0, 7200.0)


def run(seed: int = DEFAULT_SEED) -> ExperimentResult:
    analyses = {
        name: get_delays(name, seed) for name in STANDARD_TRACES
    }
    rows = []
    for point in SAMPLE_POINTS:
        row = [f"<= {point:g}s"]
        for name in STANDARD_TRACES:
            row.append(
                f"{analyses[name].fraction_within(point, which='any'):.0%}"
            )
        rows.append(row)
    rendered = render_table(
        ["Gap", *STANDARD_TRACES],
        rows,
        title="Fig. 13: CDF of time between DNS response and any flow",
    )
    hour_coverage = {
        name: analyses[name].fraction_within(3600.0, which="any")
        for name in STANDARD_TRACES
    }
    notes = (
        "Shape check — a 1-hour window covers nearly all flows "
        f"(paper ~98%): { {k: f'{v:.0%}' for k, v in hour_coverage.items()} }"
    )
    return ExperimentResult(
        exp_id="fig13",
        title="DNS-to-any-flow gap CDF",
        data={
            name: analysis.cdf_points("any", SAMPLE_POINTS)
            for name, analysis in analyses.items()
        },
        rendered=rendered,
        notes=notes,
        paper_reference="Fig. 13",
    )
