"""Table 2 — DNS resolver hit ratio by protocol and trace.

The paper's expectation: HTTP and TLS flows are resolved >74% (mostly
>90% on fixed-line), P2P almost never (<=8%), with US-3G noticeably
lower than the European vantage points because of tunneling and
mobility.
"""

from __future__ import annotations

from repro.experiments.datasets import DEFAULT_SEED, STANDARD_TRACES, get_result
from repro.experiments.report import render_table
from repro.experiments.result import ExperimentResult
from repro.net.flow import Protocol

PROTOCOLS = (Protocol.HTTP, Protocol.TLS, Protocol.P2P)


def run(seed: int = DEFAULT_SEED) -> ExperimentResult:
    data: dict[str, dict[str, tuple[float, int]]] = {}
    for name in STANDARD_TRACES:
        result = get_result(name, seed)
        counts = result.pipeline.hit_counts_by_protocol()
        per_proto = {}
        for protocol in PROTOCOLS:
            hits, total = counts.get(protocol, (0, 0))
            ratio = hits / total if total else 0.0
            per_proto[protocol.value] = (ratio, hits)
        data[name] = per_proto
    rows = []
    for protocol in PROTOCOLS:
        row = [protocol.value.upper()]
        for name in STANDARD_TRACES:
            ratio, hits = data[name][protocol.value]
            row.append(f"{ratio:.0%} ({hits})")
        rows.append(row)
    rendered = render_table(
        ["Protocol", *STANDARD_TRACES],
        rows,
        title="Table 2: DNS Resolver hit ratio (5-min warm-up excluded)",
    )
    checks = []
    for name in STANDARD_TRACES:
        http = data[name]["http"][0]
        p2p = data[name]["p2p"][0]
        checks.append(f"{name}: http {http:.0%} vs p2p {p2p:.0%}")
    notes = (
        "Shape check — HTTP/TLS high, P2P near zero, US-3G depressed: "
        + "; ".join(checks)
    )
    return ExperimentResult(
        exp_id="table2",
        title="DNS Resolver hit ratio",
        data=data,
        rendered=rendered,
        notes=notes,
        paper_reference="Tab. 2",
    )
