"""Table 6 — service tags on well-known ports (EU1-FTTH).

The extracted keywords must name the service: smtp on 25, pop on 110,
imap on 143, streaming on 554, messenger on 1863 — with the Eq. 1 log
score attached, exactly like the paper's "(91)smtp, (37)mail, ..." rows.
"""

from __future__ import annotations

from repro.analytics.tags import ServiceTagExtractor
from repro.experiments.datasets import DEFAULT_SEED, get_result
from repro.experiments.report import render_table
from repro.experiments.result import ExperimentResult

WELL_KNOWN_PORTS = (25, 110, 143, 554, 587, 995, 1863)

# Ground truth per port, as in the paper's GT column.
GROUND_TRUTH = {
    25: "SMTP", 110: "POP3", 143: "IMAP", 554: "RTSP",
    587: "SMTP", 995: "POP3S", 1863: "MSN",
}

# A keyword that must appear among the top tags for the shape to hold.
EXPECTED_TOKEN = {
    25: {"smtpN", "smtp", "mail", "mailN"},
    110: {"pop", "popN", "mail"},
    143: {"imap", "mail"},
    554: {"streaming"},
    587: {"smtp"},
    995: {"pop", "popN", "pec", "hot", "glbdns"},
    1863: {"messenger", "relay", "voice"},
}


def run(
    seed: int = DEFAULT_SEED, trace: str = "EU1-FTTH", k: int = 9
) -> ExperimentResult:
    result = get_result(trace, seed)
    extractor = ServiceTagExtractor(result.database)
    rows = []
    data = {}
    hits = []
    for port in WELL_KNOWN_PORTS:
        tags = extractor.extract(port, k=k)
        data[port] = [(t.token, t.score) for t in tags]
        keywords = ", ".join(f"({tag.score:.0f}){tag.token}" for tag in tags)
        rows.append([port, keywords or "(no flows)", GROUND_TRUTH[port]])
        top_tokens = {tag.token for tag in tags[:4]}
        hits.append(
            f"{port}:{'OK' if top_tokens & EXPECTED_TOKEN[port] else 'MISS'}"
        )
    rendered = render_table(
        ["Port", "Keywords (score)", "GT"],
        rows,
        title=f"Table 6: keyword extraction on well-known ports ({trace})",
    )
    notes = "Expected service token in top-4: " + " ".join(hits)
    return ExperimentResult(
        exp_id="table6",
        title="Service tags on well-known ports",
        data=data,
        rendered=rendered,
        notes=notes,
        paper_reference="Tab. 6",
    )
