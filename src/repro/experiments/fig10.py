"""Figure 10 — word cloud of services hosted on appspot.com.

Paper: the most prominent appspot "applications" are BitTorrent
trackers (open-tracker, rlskingbt, ...) despite appspot being a web-app
hosting service.
"""

from __future__ import annotations

from repro.analytics.trackers import TrackerActivityAnalysis
from repro.analytics.wordcloud import build_word_cloud, render_word_cloud
from repro.experiments.datasets import get_live
from repro.experiments.result import ExperimentResult


def run(days: int = 18, seed: int = 11, max_words: int = 30) -> ExperimentResult:
    _live, database = get_live(days=days, seed=seed)
    entries = build_word_cloud(database, "appspot.com", max_words=max_words)
    rendered = render_word_cloud(entries)
    classify = TrackerActivityAnalysis._default_classifier
    top10 = entries[:10]
    tracker_in_top = sum(1 for e in top10 if classify(e.word))
    notes = (
        f"Shape check — trackers are prominent in the cloud: "
        f"{tracker_in_top}/10 of the top-weighted words are trackers "
        f"(paper's cloud is dominated by open-tracker/rlskingbt-style "
        f"names)."
    )
    return ExperimentResult(
        exp_id="fig10",
        title="Appspot service word cloud",
        data=[(e.word, e.weight, e.bucket) for e in entries],
        rendered=rendered,
        notes=notes,
        paper_reference="Fig. 10",
    )
