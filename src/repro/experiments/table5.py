"""Table 5 — top-10 second-level domains hosted on Amazon EC2.

Paper: the US and EU top-10 differ (admarvel/mobclix/andomedia appear
only for US users; playfish only for EU users; cloudfront.net tops both
lists).  The reproduced ranking should show the same geography split.
"""

from __future__ import annotations

from repro.analytics.content import ContentDiscovery
from repro.experiments.datasets import DEFAULT_SEED, get_result
from repro.experiments.report import render_table
from repro.experiments.result import ExperimentResult

US_ONLY = {"andomedia.com", "admarvel.com", "mobclix.com"}
EU_FAVOURITE = "playfish.com"


def run(
    seed: int = DEFAULT_SEED,
    us_trace: str = "US-3G",
    eu_trace: str = "EU1-ADSL1",
    k: int = 10,
) -> ExperimentResult:
    rankings = {}
    for label, trace_name in (("US", us_trace), ("EU", eu_trace)):
        result = get_result(trace_name, seed)
        content = ContentDiscovery(
            result.database, result.trace.internet.ipdb
        )
        rankings[label] = content.hosted_domains_of_cdn("amazon", k=k)
    rows = []
    for rank in range(k):
        row = [rank + 1]
        for label in ("US", "EU"):
            shares = rankings[label]
            if rank < len(shares):
                share = shares[rank]
                row.extend([share.domain, f"{share.share:.0%}"])
            else:
                row.extend(["-", "-"])
        rows.append(row)
    rendered = render_table(
        ["Rank", f"US ({us_trace})", "%", f"EU ({eu_trace})", "%"],
        rows,
        title="Table 5: top domains hosted on the Amazon EC2 cloud",
    )
    us_domains = {s.domain for s in rankings["US"]}
    eu_domains = {s.domain for s in rankings["EU"]}
    us_only_found = US_ONLY & us_domains - eu_domains
    notes = (
        f"Geography split — US-only ad networks in US top-10 only: "
        f"{sorted(us_only_found)}; playfish in EU list: "
        f"{EU_FAVOURITE in eu_domains and EU_FAVOURITE not in us_domains}; "
        f"cloudfront common to both: "
        f"{'cloudfront.net' in us_domains and 'cloudfront.net' in eu_domains}"
    )
    return ExperimentResult(
        exp_id="table5",
        title="Top domains hosted on Amazon EC2",
        data={k: [(s.domain, s.share) for s in v] for k, v in rankings.items()},
        rendered=rendered,
        notes=notes,
        paper_reference="Tab. 5",
    )
