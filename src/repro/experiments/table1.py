"""Table 1 — dataset description.

Reproduces the Tab. 1 columns (start, duration, peak DNS response rate,
TCP flows) for the five synthetic traces.  Counts are scaled ~1:400 from
the paper; the *ordering* (EU1-ADSL1 largest ... EU1-FTTH smallest) and
the peak-rate ordering should match.
"""

from __future__ import annotations

from repro.experiments.datasets import DEFAULT_SEED, STANDARD_TRACES, get_trace
from repro.experiments.report import render_table
from repro.experiments.result import ExperimentResult


def run(seed: int = DEFAULT_SEED) -> ExperimentResult:
    rows = []
    for name in STANDARD_TRACES:
        summary = get_trace(name, seed).summary()
        rows.append(summary)
    rendered = render_table(
        ["Trace", "Start [GMT]", "Duration [h]", "Peak DNS/min",
         "#Flows TCP", "DNS responses", "Clients"],
        [
            [
                r["trace"], r["start_gmt"], r["duration_h"],
                f"{r['peak_dns_per_min']}/min", r["tcp_flows"],
                r["dns_responses"], r["clients"],
            ]
            for r in rows
        ],
        title="Table 1: Dataset description (synthetic, scaled ~1:400)",
    )
    flows = {r["trace"]: r["tcp_flows"] for r in rows}
    notes = (
        "Paper ordering by flow count: EU1-ADSL1 > EU2-ADSL > EU1-ADSL2 "
        "> US-3G > EU1-FTTH; reproduced ordering: "
        + (" > ".join(sorted(flows, key=flows.get, reverse=True)))
    )
    return ExperimentResult(
        exp_id="table1",
        title="Dataset description",
        data=rows,
        rendered=rendered,
        notes=notes,
        paper_reference="Tab. 1",
    )
