"""Table 3 — DN-Hunter vs active reverse-DNS lookup.

The paper samples 1,000 serverIPs with sniffer labels (EU1-ADSL2),
reverse-resolves them, and finds only 9% full matches / 36% same-2LD /
26% different / 29% no answer.  The qualitative claim to preserve:
exact matches are the *smallest* informative class, and roughly half of
all lookups are useless (different or unanswered).
"""

from __future__ import annotations

import random

from repro.baselines.reverse_dns import MatchCategory, compare_reverse_lookup
from repro.experiments.datasets import DEFAULT_SEED, get_result
from repro.experiments.report import render_table
from repro.experiments.result import ExperimentResult


def run(
    seed: int = DEFAULT_SEED, trace: str = "EU1-ADSL2", samples: int = 1000
) -> ExperimentResult:
    result = get_result(trace, seed)
    pairs_pool = [
        (flow.fid.server_ip, flow.fqdn)
        for flow in result.database
        if flow.fqdn
    ]
    rng = random.Random(seed)
    # Distinct servers, as the paper samples serverIPs (not flows).
    by_server: dict[int, str] = {}
    for server, fqdn in pairs_pool:
        by_server.setdefault(server, fqdn)
    population = list(by_server.items())
    picked = rng.sample(population, min(samples, len(population)))
    comparison = compare_reverse_lookup(
        picked, result.trace.internet.reverse
    )
    rows = [
        [label, f"{fraction:.0%}"]
        for label, fraction in comparison.as_rows()
    ]
    rendered = render_table(
        ["Outcome", "Share"],
        rows,
        title=(
            f"Table 3: DN-Hunter vs reverse lookup "
            f"({comparison.samples} sampled serverIPs, {trace})"
        ),
    )
    same = comparison.fraction(MatchCategory.SAME_FQDN)
    useless = comparison.fraction(
        MatchCategory.DIFFERENT
    ) + comparison.fraction(MatchCategory.NO_ANSWER)
    notes = (
        f"Shape check — exact matches rare ({same:.0%}; paper 9%), "
        f"different+no-answer large ({useless:.0%}; paper 55%)."
    )
    return ExperimentResult(
        exp_id="table3",
        title="DN-Hunter vs reverse lookup",
        data={c.value: comparison.fraction(c) for c in MatchCategory},
        rendered=rendered,
        notes=notes,
        paper_reference="Tab. 3",
    )
