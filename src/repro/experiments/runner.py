"""Experiment registry and command-line entry point.

``repro-exp list`` shows every experiment; ``repro-exp table5`` runs
one; ``repro-exp all`` sweeps the lot and prints each regenerated
table/figure.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analytics.storage import StorageError
from repro.experiments import (
    dimensioning,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
    table9,
)
from repro.experiments.result import ExperimentResult

REGISTRY = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "table6": table6.run,
    "table7": table7.run,
    "table8": table8.run,
    "table9": table9.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "fig13": fig13.run,
    "fig14": fig14.run,
    "dimensioning": dimensioning.run,
}


def run_experiment(exp_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment by id."""
    try:
        runner = REGISTRY[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {sorted(REGISTRY)}"
        ) from None
    return runner(**kwargs)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-exp",
        description="Regenerate tables/figures of the DN-Hunter paper.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (e.g. table2, fig12), 'list', or 'all'",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override the dataset seed",
    )
    parser.add_argument(
        "--flow-store", metavar="DIR", default=None,
        help="serve experiment databases from the stored flow-store "
             "root at DIR (one store per trace name, as written by "
             "repro-flowstore ingest-trace); traces without a store "
             "fall back to the in-memory build",
    )
    parser.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help="with --flow-store: run per-segment analytics kernels on "
             "an N-thread pool per store (answers are bit-identical "
             "to serial)",
    )
    parser.add_argument(
        "--shards", metavar="BACKEND", default=None,
        choices=("inprocess", "process"),
        help="with --flow-store: open sharded stored datasets "
             "(directories built by repro-flowstore ingest-trace "
             "--shards N) with the given backend — 'inprocess' keeps "
             "all shards in this process, 'process' runs one worker "
             "process per shard (the GIL-free rescue when --parallel "
             "cannot help)",
    )
    args = parser.parse_args(argv)
    if args.parallel is not None:
        if args.flow_store is None:
            parser.error("--parallel requires --flow-store")
        if args.parallel <= 0:
            parser.error("--parallel must be positive")
    if args.shards is not None and args.flow_store is None:
        parser.error("--shards requires --flow-store")
    if args.experiment == "list":
        # Before the stored root is set: listing reads no dataset, and
        # an early return here must not leak the global root past the
        # reset in the finally below.
        for exp_id in REGISTRY:
            print(exp_id)
        return 0
    if args.flow_store is not None:
        from repro.experiments.datasets import set_stored_root

        set_stored_root(
            args.flow_store, parallel=args.parallel,
            shard_backend=args.shards,
        )
    targets = list(REGISTRY) if args.experiment == "all" else [args.experiment]
    try:
        return _run_targets(targets, args)
    finally:
        if args.flow_store is not None:
            # Drops the stored-dataset cache and closes the opened
            # stores (shutting their query thread pools).
            from repro.experiments.datasets import set_stored_root

            set_stored_root(None)


def _run_targets(targets: list[str], args) -> int:
    for exp_id in targets:
        kwargs = {}
        if args.seed is not None and exp_id not in (
            "table8", "fig6", "fig10", "fig11"
        ):
            kwargs["seed"] = args.seed
        started = time.time()
        try:
            result = run_experiment(exp_id, **kwargs)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return 2
        except (OSError, StorageError) as exc:
            # A corrupt --flow-store segment or unreadable store must
            # fail like the other CLIs do — a clear message, not a
            # traceback.  Deliberately narrow: a ValueError from an
            # experiment kernel is a bug and should keep its traceback.
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(result)
        print(f"[{exp_id} completed in {time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
