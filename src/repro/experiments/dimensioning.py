"""Section 6 — dimensioning the FQDN Clist.

Three analyses the paper uses to size the resolver:

* resolver hit efficiency as a function of the Clist size L (the paper
  picks L so the cache covers ~1 hour of responses and reaches ~98%);
* the distribution of answer-list sizes (~40% of responses carry more
  than one address, a few up to 16+);
* the label-confusion rate: flows whose last-written-wins label differs
  from the ground-truth FQDN (<4% in the paper once redirections are
  excluded).
"""

from __future__ import annotations

from collections import Counter

from repro.experiments.datasets import DEFAULT_SEED, get_trace
from repro.experiments.report import render_table
from repro.experiments.result import ExperimentResult
from repro.sniffer.pipeline import SnifferPipeline

L_SWEEP = (100, 500, 1000, 2000, 5000, 20000, 100000)


def resolver_efficiency(trace, clist_size: int) -> float:
    """Run the pipeline at one Clist size; return the overall hit ratio
    for flows with a DNS-resolved ground truth."""
    pipeline = SnifferPipeline(clist_size=clist_size, warmup=300.0)
    pipeline.process_trace(trace)
    hits = total = 0
    for flow in pipeline.tagged_flows:
        if flow.true_fqdn is None:
            continue  # P2P / tunneled flows never had DNS
        total += 1
        if flow.fqdn is not None:
            hits += 1
    return hits / total if total else 0.0


def answer_list_histogram(trace) -> Counter:
    """Answer-list size distribution across the trace's responses."""
    counts: Counter = Counter()
    for observation in trace.observations:
        counts[len(observation.answers)] += 1
    return counts


def resolver_census(trace, clist_size: int = 200_000, pipeline=None) -> dict:
    """Resolver-internals snapshot after one pipeline pass.

    Uses the flat resolver's O(1) introspection (live-entry counter,
    derived overwrites) plus the caching horizon — the quantities Sec. 6
    reasons about when sizing ``L``.  With the seed implementation the
    live-entry count alone was an O(L) scan per probe.

    Pass an already-processed ``pipeline`` to snapshot it instead of
    running the trace again.
    """
    if pipeline is None:
        pipeline = SnifferPipeline(clist_size=clist_size, warmup=0.0)
        pipeline.process_trace(trace)
    else:
        clist_size = pipeline.resolver.clist_size
    resolver = pipeline.resolver
    stats = resolver.stats
    last_ts = max(
        (obs.timestamp for obs in trace.observations), default=0.0
    )
    horizon = resolver.oldest_entry_age(last_ts)
    return {
        "clist_size": clist_size,
        "live_entries": resolver.live_entries,
        "occupancy": resolver.live_entries / clist_size,
        "clients": resolver.client_count,
        "responses": stats.responses,
        "answers": stats.answers,
        "replacements": stats.replacements,
        "overwrites": stats.overwrites,
        "hit_ratio": stats.hit_ratio,
        "caching_horizon_s": horizon if horizon is not None else 0.0,
    }


def confusion_rate(trace, clist_size: int = 200_000, pipeline=None) -> float:
    """Fraction of labeled flows whose label differs from ground truth.

    Pass an already-processed ``pipeline`` to reuse its tagged flows
    instead of running the trace again.
    """
    if pipeline is None:
        pipeline = SnifferPipeline(clist_size=clist_size, warmup=0.0)
        pipeline.process_trace(trace)
    labeled = confused = 0
    for flow in pipeline.tagged_flows:
        if flow.fqdn is None or flow.true_fqdn is None:
            continue
        labeled += 1
        if flow.fqdn.lower() != flow.true_fqdn.lower():
            confused += 1
    return confused / labeled if labeled else 0.0


def run(seed: int = DEFAULT_SEED, trace_name: str = "EU1-ADSL1") -> ExperimentResult:
    trace = get_trace(trace_name, seed)
    # -- L sweep -----------------------------------------------------------
    sweep_rows = []
    efficiencies = {}
    for size in L_SWEEP:
        efficiency = resolver_efficiency(trace, size)
        efficiencies[size] = efficiency
        sweep_rows.append([size, f"{efficiency:.1%}"])
    sweep = render_table(
        ["Clist size L", "resolver efficiency"],
        sweep_rows,
        title=f"Sec. 6: resolver efficiency vs L ({trace_name})",
    )
    # -- answer list sizes ---------------------------------------------------
    histogram = answer_list_histogram(trace)
    total = sum(histogram.values())
    multi = sum(c for size, c in histogram.items() if size > 1) / total
    answer_rows = [
        [size, f"{count / total:.1%}"]
        for size, count in sorted(histogram.items())
    ]
    answers = render_table(
        ["answers per response", "share"],
        answer_rows,
        title="Answer-list size distribution",
    )
    # -- confusion + resolver census (one shared pipeline pass) --------------
    shared_pipeline = SnifferPipeline(clist_size=200_000, warmup=0.0)
    shared_pipeline.process_trace(trace)
    confusion = confusion_rate(trace, pipeline=shared_pipeline)
    census = resolver_census(trace, pipeline=shared_pipeline)
    census_table = render_table(
        ["resolver metric", "value"],
        [
            ["Clist size L", census["clist_size"]],
            ["live entries", census["live_entries"]],
            ["occupancy", f"{census['occupancy']:.1%}"],
            ["clients (N_C)", census["clients"]],
            ["responses inserted", census["responses"]],
            ["last-written-wins replacements", census["replacements"]],
            ["Clist overwrites", census["overwrites"]],
            ["caching horizon (s)", f"{census['caching_horizon_s']:.0f}"],
        ],
        title="Resolver census at L=200k (Sec. 6 sizing view)",
    )
    rendered = "\n\n".join(
        [
            sweep,
            answers,
            census_table,
            f"Label confusion rate: {confusion:.2%}",
        ]
    )
    notes = (
        f"Shape check — efficiency grows monotonically with L and "
        f"saturates ({efficiencies[L_SWEEP[0]]:.0%} -> "
        f"{efficiencies[L_SWEEP[-1]]:.0%}; paper reaches ~98% at 1h "
        f"coverage); multi-answer responses {multi:.0%} (paper ~40%); "
        f"confusion {confusion:.1%} (paper <4%)."
    )
    return ExperimentResult(
        exp_id="dimensioning",
        title="Clist dimensioning (Sec. 6)",
        data={
            "efficiency_vs_l": efficiencies,
            "answer_histogram": dict(histogram),
            "confusion": confusion,
            "resolver_census": census,
        },
        rendered=rendered,
        notes=notes,
        paper_reference="Sec. 6",
    )
