"""Figure 3 — the tangle: serverIPs-per-FQDN and FQDNs-per-serverIP CDFs.

Paper (EU2-ADSL): 82% of FQDNs map to one serverIP, 73% of serverIPs
serve one FQDN, both with heavy tails (hundreds of servers per name and
vice versa).
"""

from __future__ import annotations

from repro.analytics.tangle import (
    fanin_distribution,
    fanout_distribution,
    single_mapping_fractions,
)
from repro.experiments.datasets import DEFAULT_SEED, get_result
from repro.experiments.report import render_cdf
from repro.experiments.result import ExperimentResult

SAMPLE_POINTS = (1, 2, 3, 5, 10, 20, 50, 100)


def run(seed: int = DEFAULT_SEED, trace: str = "EU2-ADSL") -> ExperimentResult:
    result = get_result(trace, seed)
    fanout = fanout_distribution(result.database)
    fanin = fanin_distribution(result.database)
    single_fqdn, single_server = single_mapping_fractions(result.database)
    top = render_cdf(
        [(x, fanout.at(x)) for x in SAMPLE_POINTS],
        title=f"Fig. 3 (top): #serverIPs per FQDN, {trace}",
        x_label="IPs",
    )
    bottom = render_cdf(
        [(x, fanin.at(x)) for x in SAMPLE_POINTS],
        title=f"Fig. 3 (bottom): #FQDNs per serverIP, {trace}",
        x_label="names",
    )
    rendered = top + "\n\n" + bottom
    notes = (
        f"Shape check — single-mapping fractions: FQDN→1 IP "
        f"{single_fqdn:.0%} (paper 82%), IP→1 FQDN {single_server:.0%} "
        f"(paper 73%); max fan-out {fanout.max}, max fan-in {fanin.max} "
        f"(heavy tails)."
    )
    return ExperimentResult(
        exp_id="fig3",
        title="FQDN/serverIP fan-out and fan-in CDFs",
        data={
            "fanout": fanout.points(),
            "fanin": fanin.points(),
            "single_fqdn": single_fqdn,
            "single_server": single_server,
        },
        rendered=rendered,
        notes=notes,
        paper_reference="Fig. 3",
    )
