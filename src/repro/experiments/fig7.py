"""Figure 7 — the linkedin.com domain structure across CDNs (US-3G).

Paper: mediaN → Akamai (2 servers, 17% of flows); media/staticN →
CDNetworks (15 servers, 3%); mediaNplatform → EdgeCast (1 server, 59%);
www and 7 others → LinkedIn's own 3 servers (22%).  The reproduction
must show the same four hosting groups with EdgeCast dominating flows
from a single server.
"""

from __future__ import annotations

from repro.analytics.domain_tree import build_domain_tree
from repro.experiments.datasets import DEFAULT_SEED, get_result
from repro.experiments.result import ExperimentResult


def run(seed: int = DEFAULT_SEED, trace: str = "US-3G") -> ExperimentResult:
    result = get_result(trace, seed)
    tree = build_domain_tree(
        result.database, "linkedin.com", result.trace.internet.ipdb
    )
    rendered = tree.render(max_depth=3)
    shares = {
        group.organization: (group.server_count, tree.flow_share(group.organization))
        for group in tree.groups.values()
    }
    edgecast = shares.get("edgecast", (0, 0.0))
    notes = (
        f"Shape check — four hosting groups {sorted(shares)}; edgecast "
        f"carries the largest flow share from very few servers "
        f"({edgecast[1]:.0%} via {edgecast[0]} server(s); paper 59% via 1); "
        f"akamai/cdnetworks/self shares: "
        + ", ".join(
            f"{org}={share:.0%}({servers} srv)"
            for org, (servers, share) in sorted(shares.items())
        )
    )
    return ExperimentResult(
        exp_id="fig7",
        title="LinkedIn domain structure by CDN",
        data=shares,
        rendered=rendered,
        notes=notes,
        paper_reference="Fig. 7",
    )
