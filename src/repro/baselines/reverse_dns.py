"""Reverse-DNS baseline (Sec. 3.1.3, Table 3).

The experiment: sample server addresses for which the sniffer recovered a
FQDN, perform PTR lookups, and classify the answer against the sniffer's
label.  The paper's result — only 9% full matches, 29% no answer — is
what justifies building DN-Hunter instead of relying on ``dig -x``.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.dns.name import second_level_domain
from repro.dns.server import ReverseZone


class MatchCategory(enum.Enum):
    """Tab. 3 outcome classes."""

    SAME_FQDN = "Same FQDN"
    SAME_SLD = "Same 2nd-level domain"
    DIFFERENT = "Totally different"
    NO_ANSWER = "No-answer"


@dataclass
class ReverseLookupComparison:
    """Aggregated Tab. 3 result."""

    samples: int
    counts: Counter = field(default_factory=Counter)
    examples: dict[MatchCategory, list[tuple[str, Optional[str]]]] = field(
        default_factory=dict
    )

    def fraction(self, category: MatchCategory) -> float:
        """Share of samples in ``category``."""
        return self.counts[category] / self.samples if self.samples else 0.0

    def as_rows(self) -> list[tuple[str, float]]:
        """(label, fraction) rows in the paper's order."""
        return [
            (category.value, self.fraction(category))
            for category in MatchCategory
        ]


def classify_match(
    sniffer_fqdn: str, reverse_name: Optional[str]
) -> MatchCategory:
    """Classify one PTR answer against the sniffer's label."""
    if reverse_name is None:
        return MatchCategory.NO_ANSWER
    sniffer = sniffer_fqdn.lower().rstrip(".")
    reverse = reverse_name.lower().rstrip(".")
    if sniffer == reverse:
        return MatchCategory.SAME_FQDN
    if second_level_domain(sniffer) == second_level_domain(reverse):
        return MatchCategory.SAME_SLD
    return MatchCategory.DIFFERENT


def compare_reverse_lookup(
    pairs: Sequence[tuple[int, str]],
    reverse_zone: ReverseZone,
    keep_examples: int = 3,
) -> ReverseLookupComparison:
    """Run the Tab. 3 experiment.

    Args:
        pairs: (server address, sniffer FQDN) samples — the paper used
            1,000 random servers from EU1-ADSL2.
        reverse_zone: the PTR zone to query.
        keep_examples: how many example pairs to retain per category.
    """
    comparison = ReverseLookupComparison(samples=len(pairs))
    for address, fqdn in pairs:
        reverse_name = reverse_zone.lookup(address)
        category = classify_match(fqdn, reverse_name)
        comparison.counts[category] += 1
        bucket = comparison.examples.setdefault(category, [])
        if len(bucket) < keep_examples:
            bucket.append((fqdn, reverse_name))
    return comparison
