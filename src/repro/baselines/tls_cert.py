"""TLS certificate-inspection baseline (Sec. 5.2.1, Table 4).

A DPI device can read the server name from the certificate exchanged in
the TLS handshake.  The paper shows why this underperforms DN-Hunter:
names are often generic wildcards (``*.google.com``), often belong to the
hosting CDN (``a248.akamai.net`` serving Zynga), and a resumed session
carries no certificate at all.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.dns.name import second_level_domain
from repro.net.flow import FlowRecord, Protocol


class CertCategory(enum.Enum):
    """Tab. 4 outcome classes."""

    EQUAL_FQDN = "Certificate equal FQDN"
    GENERIC = "Generic certificate"
    DIFFERENT = "Totally different certificate"
    NO_CERT = "No certificate"


@dataclass
class CertInspectionComparison:
    """Aggregated Tab. 4 result."""

    samples: int
    counts: Counter = field(default_factory=Counter)

    def fraction(self, category: CertCategory) -> float:
        return self.counts[category] / self.samples if self.samples else 0.0

    def as_rows(self) -> list[tuple[str, float]]:
        return [
            (category.value, self.fraction(category))
            for category in CertCategory
        ]


def matches_wildcard(pattern: str, fqdn: str) -> bool:
    """RFC 6125-style single-label wildcard match (``*.google.com``)."""
    pattern = pattern.lower().rstrip(".")
    fqdn = fqdn.lower().rstrip(".")
    if not pattern.startswith("*."):
        return pattern == fqdn
    suffix = pattern[2:]
    if not fqdn.endswith("." + suffix):
        return False
    # The wildcard covers exactly one label.
    prefix = fqdn[: -(len(suffix) + 1)]
    return "." not in prefix and bool(prefix)


def classify_certificate(
    sniffer_fqdn: str, cert_name: Optional[str]
) -> CertCategory:
    """Classify one certificate server name against DN-Hunter's label."""
    if cert_name is None:
        return CertCategory.NO_CERT
    cert = cert_name.lower().rstrip(".")
    fqdn = sniffer_fqdn.lower().rstrip(".")
    if cert == fqdn:
        return CertCategory.EQUAL_FQDN
    if cert.startswith("*."):
        if matches_wildcard(cert, fqdn) or second_level_domain(
            cert[2:]
        ) == second_level_domain(fqdn):
            return CertCategory.GENERIC
        return CertCategory.DIFFERENT
    if second_level_domain(cert) == second_level_domain(fqdn):
        # Same organization but a different concrete host name — the
        # paper counts these among the 37% that "matched the second-level
        # domain", splitting exact matches (18%) from generic (19%).
        return CertCategory.GENERIC
    return CertCategory.DIFFERENT


def compare_certificate_inspection(
    flows: Iterable[FlowRecord],
) -> CertInspectionComparison:
    """Run the Tab. 4 experiment over tagged TLS flows.

    Only flows that are TLS *and* carry a DN-Hunter label participate —
    the comparison needs both sides.
    """
    counts: Counter = Counter()
    samples = 0
    for flow in flows:
        if flow.protocol is not Protocol.TLS or not flow.fqdn:
            continue
        samples += 1
        counts[classify_certificate(flow.fqdn, flow.cert_name)] += 1
    comparison = CertInspectionComparison(samples=samples)
    comparison.counts = counts
    return comparison
