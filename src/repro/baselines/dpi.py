"""A signature-based DPI engine (the paper's comparison point).

Classic deep packet inspection matches the first payload bytes of a flow
against protocol signatures.  It is the ground-truth source for
cleartext protocols (the paper uses Tstat's DPI) and the strawman that
fails on TLS: an encrypted payload matches the TLS handshake signature
but reveals nothing about the service behind it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.net.flow import FlowRecord, Protocol


@dataclass(frozen=True, slots=True)
class Signature:
    """One DPI rule: regex over the first payload bytes, plus metadata.

    ``specific`` signatures identify a concrete service ("BitTorrent
    tracker announce"); unspecific ones identify only the protocol
    ("TLS handshake") — the distinction Tab. 4 turns on.
    """

    name: str
    protocol: Protocol
    pattern: bytes
    specific: bool = True

    def compiled(self) -> re.Pattern[bytes]:
        return re.compile(self.pattern, re.DOTALL)


DEFAULT_SIGNATURES: tuple[Signature, ...] = (
    Signature("http-request", Protocol.HTTP,
              rb"^(GET|POST|HEAD|PUT|DELETE|OPTIONS) ", specific=True),
    Signature("http-response", Protocol.HTTP, rb"^HTTP/1\.[01] ",
              specific=True),
    Signature("tls-handshake", Protocol.TLS, rb"^\x16\x03[\x00-\x03]",
              specific=False),
    Signature("smtp-banner", Protocol.MAIL, rb"^(220|EHLO|HELO|MAIL FROM)",
              specific=True),
    Signature("pop3-banner", Protocol.MAIL, rb"^(\+OK|USER |PASS )",
              specific=True),
    Signature("imap-banner", Protocol.MAIL, rb"^(\* OK|a\d+ LOGIN)",
              specific=True),
    Signature("rtsp", Protocol.STREAMING, rb"^(RTSP/1\.0|DESCRIBE|SETUP)",
              specific=True),
    Signature("bittorrent-handshake", Protocol.P2P,
              rb"^\x13BitTorrent protocol", specific=True),
    Signature("bittorrent-tracker", Protocol.P2P,
              rb"^GET /announce\?", specific=True),
    Signature("msn", Protocol.CHAT, rb"^(VER \d|USR \d|MSG )",
              specific=True),
    Signature("xmpp", Protocol.CHAT, rb"^<\?xml|^<stream:stream",
              specific=True),
)


@dataclass(slots=True)
class DpiVerdict:
    """Outcome of inspecting one flow."""

    protocol: Protocol
    signature: Optional[str]
    specific: bool

    @property
    def identified(self) -> bool:
        """True when a signature matched at all."""
        return self.signature is not None


class DpiEngine:
    """Match flow payloads against an ordered signature list.

    Signatures are tried in order; ``bittorrent-tracker`` is listed after
    plain HTTP in ``DEFAULT_SIGNATURES`` would shadow it, so the engine
    sorts specific signatures first.
    """

    def __init__(self, signatures: Iterable[Signature] = DEFAULT_SIGNATURES):
        ordered = sorted(signatures, key=lambda s: not s.specific)
        # Specific-before-unspecific, and longer (more precise) patterns
        # before shorter ones within each class.
        self._rules = [(sig, sig.compiled()) for sig in ordered]
        self.stats = {"inspected": 0, "identified": 0, "unknown": 0}

    def inspect_payload(self, payload: bytes) -> DpiVerdict:
        """Classify the first payload bytes of a flow."""
        self.stats["inspected"] += 1
        # The tracker announce is an HTTP GET; give it precedence.
        for sig, pattern in self._rules:
            if sig.name == "bittorrent-tracker" and pattern.match(payload):
                self.stats["identified"] += 1
                return DpiVerdict(sig.protocol, sig.name, sig.specific)
        for sig, pattern in self._rules:
            if pattern.match(payload):
                self.stats["identified"] += 1
                return DpiVerdict(sig.protocol, sig.name, sig.specific)
        self.stats["unknown"] += 1
        return DpiVerdict(Protocol.OTHER, None, False)

    def inspect_flow(self, flow: FlowRecord, payload: bytes) -> DpiVerdict:
        """Classify a flow and stamp its ``protocol`` when identified."""
        verdict = self.inspect_payload(payload)
        if verdict.identified:
            flow.protocol = verdict.protocol
        return verdict

    @property
    def identification_ratio(self) -> float:
        """Fraction of inspected flows any signature matched."""
        total = self.stats["inspected"]
        return self.stats["identified"] / total if total else 0.0
