"""Baseline comparators the paper evaluates DN-Hunter against.

* :mod:`~repro.baselines.reverse_dns` — active PTR lookups on server
  addresses (Tab. 3: only 9% match the FQDN DN-Hunter recovers);
* :mod:`~repro.baselines.tls_cert` — server-name extraction from TLS
  certificates (Tab. 4: 18% exact, 19% generic, 40% different, 23% none);
* :mod:`~repro.baselines.dpi` — a signature-based deep-packet-inspection
  engine: the ground-truth source for cleartext protocols and the tool
  that goes blind on encrypted flows (Sec. 1).
"""

from repro.baselines.reverse_dns import (
    MatchCategory,
    ReverseLookupComparison,
    compare_reverse_lookup,
)
from repro.baselines.tls_cert import (
    CertCategory,
    CertInspectionComparison,
    compare_certificate_inspection,
)
from repro.baselines.dpi import DpiEngine, Signature

__all__ = [
    "MatchCategory",
    "ReverseLookupComparison",
    "compare_reverse_lookup",
    "CertCategory",
    "CertInspectionComparison",
    "compare_certificate_inspection",
    "DpiEngine",
    "Signature",
]
