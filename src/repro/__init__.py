"""repro — a reproduction of DN-Hunter (Bermudez et al., ACM IMC 2012).

DN-Hunter passively correlates DNS responses with layer-4 flows to tag
every flow with the FQDN the client resolved, restoring traffic
visibility in a web where content owners and content hosts are decoupled
("the tangled web").  This package implements the full system —

* ``repro.net`` / ``repro.dns`` — packet and DNS substrates built from
  scratch (wire formats, caches, zones, pcap I/O);
* ``repro.sniffer`` — the real-time component: DNS resolver replica
  (Algorithm 1), flow sniffer, flow tagger, policy enforcer;
* ``repro.analytics`` — the off-line analyzer: spatial discovery,
  content discovery, service-tag extraction (Algorithms 2–4) and the
  measurement analytics behind every figure;
* ``repro.baselines`` — reverse-DNS lookup, TLS certificate inspection
  and DPI comparators;
* ``repro.simulation`` — a synthetic tangled-web internet and client
  workload that stands in for the paper's ISP traces;
* ``repro.experiments`` — one module per table/figure of the paper.

Quickstart::

    from repro.simulation import build_trace
    from repro.sniffer import SnifferPipeline

    trace = build_trace("EU1-FTTH", seed=7)
    pipeline = SnifferPipeline()
    database = pipeline.process_trace(trace)
    print(pipeline.hit_ratio_by_protocol())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
