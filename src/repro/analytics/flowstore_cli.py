"""``repro-flowstore`` — inspect and maintain on-disk flow stores.

Subcommands:

* ``inspect DIR``        — manifest, per-segment rows/labels/bytes and
  totals (validates headers, sizes and CRCs on open);
* ``verify DIR``         — additionally materialize every segment, so
  id-table consistency is checked end to end;
* ``compact DIR``        — merge sealed segments (all of them, or only
  adjacent runs of segments below ``--small-rows``);
* ``ingest-trace NAME DIR`` — build a standard simulation trace, run
  the sniffer pipeline over it and persist the tagged flows into
  ``DIR/NAME``, making the trace usable as a stored dataset source for
  ``repro-exp --flow-store DIR``.

Run as ``python -m repro.analytics.flowstore_cli``.
"""

from __future__ import annotations

import argparse
import sys

from repro.analytics.storage import FlowStore, StorageError


def _open_existing(directory) -> FlowStore:
    """Open a store that must already exist.

    ``FlowStore`` itself creates missing directories (the writer-side
    behaviour); for read/maintenance commands a mistyped path must be
    an error, not a freshly-created empty store reported as healthy.
    """
    from pathlib import Path

    if not Path(directory).is_dir():
        raise StorageError(f"no flow store at {directory}")
    return FlowStore(directory)


def _cmd_inspect(args) -> int:
    store = _open_existing(args.directory)
    stats = store.stats()
    print(f"flow store : {stats['directory']}")
    print(f"format     : v{stats['format']}")
    print(f"rows       : {stats['rows']} "
          f"(sealed {stats['sealed_rows']}, tail {stats['tail_rows']})")
    print(f"fqdns/slds : {stats['fqdns']} / {stats['slds']}")
    print(f"on disk    : {stats['bytes_on_disk']} bytes "
          f"in {len(stats['segments'])} segments")
    if stats["segments"]:
        print("\nsegments:")
        for segment in stats["segments"]:
            print(
                f"  {segment['name']}  rows={segment['rows']:<10d}"
                f"labels={segment['labels']:<8d}bytes={segment['bytes']}"
            )
    return 0


def _cmd_verify(args) -> int:
    store = _open_existing(args.directory)
    total = 0
    for reader in store.segments:
        database = reader.database()
        print(f"  {reader.name}: {len(database)} rows ok")
        total += len(database)
        reader.release()
    print(f"verified {len(store.segments)} segments, {total} rows")
    return 0


def _cmd_compact(args) -> int:
    store = _open_existing(args.directory)
    before = len(store.segments)
    removed = store.compact(small_rows=args.small_rows)
    print(
        f"compacted {before} segments -> {len(store.segments)} "
        f"({removed} files merged away)"
    )
    return 0


def _cmd_ingest_trace(args) -> int:
    import json
    import shutil
    from pathlib import Path

    from repro.experiments.datasets import DEFAULT_CLIST, DEFAULT_SEED, get_trace
    from repro.sniffer.pipeline import SnifferPipeline

    seed = DEFAULT_SEED if args.seed is None else args.seed
    directory = Path(args.directory) / args.trace
    if (directory / "MANIFEST.json").exists():
        # Appending to an existing store would silently double every
        # flow count the experiments read.
        if not args.force:
            print(
                f"error: {directory} already holds a stored dataset; "
                f"re-run with --force to replace it",
                file=sys.stderr,
            )
            return 1
        shutil.rmtree(directory)
    trace = get_trace(args.trace, seed)
    store = FlowStore(directory, spill_rows=args.spill_rows)
    # Sidecar first, marked in-progress: a crash mid-ingest leaves a
    # store with committed segments but only part of the trace, and
    # repro-exp must refuse it rather than compute figures from a
    # fraction of the data.  The marker clears on success below.
    sidecar = directory / "DATASET.json"
    sidecar.write_text(
        json.dumps({"trace": args.trace, "seed": seed, "building": True})
        + "\n",
        encoding="utf-8",
    )
    pipeline = SnifferPipeline(
        clist_size=DEFAULT_CLIST, flow_store=store,
        # Everything streams to disk; keeping the tagged-flow list too
        # would grow the parent unboundedly on multi-day traces.
        retain_flows=False,
    )
    pipeline.process_trace(trace)
    pipeline.close()
    # Sidecar the provenance so repro-exp --flow-store can refuse a
    # store built from a different seed (and clear the building mark).
    sidecar.write_text(
        json.dumps({"trace": args.trace, "seed": seed}) + "\n",
        encoding="utf-8",
    )
    stats = store.stats()
    print(
        f"stored {stats['rows']} tagged flows of {args.trace} "
        f"(seed {seed}) in {len(stats['segments'])} segments at "
        f"{stats['directory']}"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-flowstore",
        description="Inspect and maintain on-disk columnar flow stores.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    inspect = sub.add_parser(
        "inspect", help="summarize a store directory"
    )
    inspect.add_argument("directory", help="flow store directory")
    inspect.set_defaults(func=_cmd_inspect)

    verify = sub.add_parser(
        "verify", help="materialize every segment (full validation)"
    )
    verify.add_argument("directory", help="flow store directory")
    verify.set_defaults(func=_cmd_verify)

    compact = sub.add_parser(
        "compact", help="merge sealed segments"
    )
    compact.add_argument("directory", help="flow store directory")
    compact.add_argument(
        "--small-rows", type=int, default=None, metavar="N",
        help="only merge adjacent runs of segments smaller than N rows "
             "(default: merge everything into one segment)",
    )
    compact.set_defaults(func=_cmd_compact)

    ingest = sub.add_parser(
        "ingest-trace",
        help="sniff a standard simulation trace into DIR/NAME",
    )
    ingest.add_argument("trace", help="trace name (e.g. EU1-FTTH)")
    ingest.add_argument("directory", help="stored-dataset root directory")
    ingest.add_argument(
        "--seed", type=int, default=None, help="dataset seed override"
    )
    ingest.add_argument(
        "--spill-rows", type=int, default=65536,
        help="rows per spilled segment (default 65536)",
    )
    ingest.add_argument(
        "--force", action="store_true",
        help="replace an existing stored dataset instead of refusing",
    )
    ingest.set_defaults(func=_cmd_ingest_trace)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (StorageError, OSError, KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
