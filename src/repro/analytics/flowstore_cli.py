"""``repro-flowstore`` — inspect and maintain on-disk flow stores.

Subcommands:

* ``inspect DIR``        — manifest, per-segment rows/labels/bytes and
  totals (validates headers, sizes and CRCs on open);
* ``stats DIR``          — the same information plus per-segment
  pruning metadata, as machine-readable JSON;
* ``prune-report DIR``   — which segments a query with the given
  predicate (``--t0/--t1``, ``--fqdn``, ``--domain``, ``--server``,
  ``--client``, ``--protocol``) would scan vs skip — metadata
  arithmetic only, nothing is materialized;
* ``verify DIR``         — additionally materialize every segment
  (id-table consistency end to end) and recompute each version-2
  footer's pruning metadata from the columns, failing on a footer
  that lies about its segment; exits non-zero when the store is
  degraded (quarantined segments, unplayable journal records);
  ``--parallel N`` fans the per-segment checks out over a thread
  pool;
* ``compact DIR``        — merge sealed segments (all of them, or only
  adjacent runs of segments below ``--small-rows``); rewrites always
  carry fresh metadata, so compaction also upgrades v1 segments;

Every store-opening command accepts ``--strict`` to hard-fail on a
corrupt segment instead of quarantining it (the library default is
graceful degradation — see :meth:`FlowStore.health`).
* ``ingest-trace NAME DIR`` — build a standard simulation trace, run
  the sniffer pipeline over it and persist the tagged flows into
  ``DIR/NAME``, making the trace usable as a stored dataset source for
  ``repro-exp --flow-store DIR``.

Run as ``python -m repro.analytics.flowstore_cli``.
"""

from __future__ import annotations

import argparse
import sys

from repro.analytics.storage import (
    FlowStore,
    QueryHint,
    SegmentMeta,
    StorageError,
)


def _open_existing(directory, strict: bool = False):
    """Open a store that must already exist.

    ``FlowStore`` itself creates missing directories (the writer-side
    behaviour); for read/maintenance commands a mistyped path must be
    an error, not a freshly-created empty store reported as healthy.
    ``strict=True`` (the ``--strict`` flag) restores hard-fail opens:
    a corrupt segment raises instead of being quarantined.

    A directory carrying ``SHARDS.json`` opens as a
    :class:`repro.analytics.shard.ShardCoordinator` over its shard
    stores; every flat-store subcommand then reports across all
    shards (``prune-report`` without opening any of them).
    """
    from pathlib import Path

    from repro.analytics.shard import SHARDS_NAME, ShardCoordinator

    if not Path(directory).is_dir():
        raise StorageError(f"no flow store at {directory}")
    if (Path(directory) / SHARDS_NAME).exists():
        return ShardCoordinator(directory, strict=strict)
    return FlowStore(directory, strict=strict)


def _print_health(health: dict) -> None:
    """One operator-facing summary line per degradation finding."""
    wal = health["wal"]
    if wal["recovered_rows"]:
        print(
            f"recovered  : {wal['recovered_rows']} rows "
            f"({wal['recovered_batches']} journal records) replayed "
            f"from tail.wal"
        )
    if wal["torn_bytes_dropped"]:
        print(
            f"journal    : dropped {wal['torn_bytes_dropped']} torn "
            f"trailing bytes (unacknowledged write)"
        )
    if wal["skipped_records"]:
        print(
            f"journal    : WARNING {wal['skipped_records']} journal "
            f"records could not be replayed"
        )
    for entry in health["quarantined_segments"]:
        print(
            f"quarantine : {entry['name']} — {entry['reason']}"
        )


def _cmd_inspect(args) -> int:
    store = _open_existing(args.directory, strict=args.strict)
    stats = store.stats()
    versions = stats["segment_versions"]
    suffix = ""
    if versions and set(versions) != {str(stats["format"])}:
        # Mixed or older on-disk versions matter to an operator
        # triaging v1 compat — say so instead of claiming v2.
        breakdown = ", ".join(
            f"{count}x v{version}" for version, count in sorted(
                versions.items()
            )
        )
        suffix = f" (segments: {breakdown}; compact upgrades)"
    print(f"flow store : {stats['directory']}")
    print(f"format     : v{stats['format']}{suffix}")
    if stats.get("sharded"):
        print(f"sharded    : {stats['shards']} shards "
              f"(routing by {stats['by']})")
    print(f"health     : {stats['health']['status']}")
    print(f"rows       : {stats['rows']} "
          f"(sealed {stats['sealed_rows']}, tail {stats['tail_rows']})")
    print(f"fqdns/slds : {stats['fqdns']} / {stats['slds']}")
    print(f"on disk    : {stats['bytes_on_disk']} bytes "
          f"in {len(stats['segments'])} segments")
    print(f"wal epoch  : {stats['wal_epoch']} "
          f"(generation {stats['generation']})")
    if stats["pinned_generations"]:
        pins = ", ".join(
            f"gen {pin['generation']} x{pin['readers']}"
            for pin in stats["pinned_generations"]
        )
        print(f"pinned     : {pins} "
              f"({stats['retired_pending']} retired files held)")
    _print_health(stats["health"])
    if stats["segments"]:
        print("\nsegments:")
        for segment in stats["segments"]:
            where = (
                f"shard-{segment['shard']:02d}/" if "shard" in segment
                else ""
            )
            print(
                f"  {where}{segment['name']}  v{segment['version']}  "
                f"rows={segment['rows']:<10d}"
                f"labels={segment['labels']:<8d}bytes={segment['bytes']}"
            )
    return 0


def _cmd_stats(args) -> int:
    import json

    store = _open_existing(args.directory, strict=args.strict)
    print(json.dumps(store.stats(), indent=2))
    return 0


def _cmd_prune_report(args) -> int:
    store = _open_existing(args.directory, strict=args.strict)
    window = None
    if (args.t0 is None) != (args.t1 is None):
        print("error: --t0 and --t1 must be given together",
              file=sys.stderr)
        return 1
    if args.t0 is not None:
        if args.t0 > args.t1:
            # An inverted window would "prune" every segment — that is
            # a caller bug, not a 100% prune win.
            print("error: --t0 must be <= --t1", file=sys.stderr)
            return 1
        window = (args.t0, args.t1)
    protocol = None
    if args.protocol is not None:
        from repro.sniffer.eventcodec import PROTOCOLS

        names = {proto.name: index for index, proto in enumerate(PROTOCOLS)}
        protocol = names.get(args.protocol.upper())
        if protocol is None:
            print(
                f"error: unknown protocol {args.protocol!r} "
                f"(known: {', '.join(sorted(names))})",
                file=sys.stderr,
            )
            return 1
    hint = QueryHint(
        fqdn=args.fqdn.lower() if args.fqdn else None,
        sld=args.domain.lower() if args.domain else None,
        servers=[args.server] if args.server is not None else None,
        clients=[args.client] if args.client is not None else None,
        window=window,
        protocol=protocol,
    )
    report = store.prune_report(hint)
    total_rows = report["scanned_rows"] + report["pruned_rows"]
    if report.get("sharded"):
        # Manifest-only coordinator report: no segment was opened, so
        # there is no version column and no live-tail row count (the
        # unsealed rows live in each shard's journal, never replayed
        # for a report).
        for segment in report["segments"]:
            verdict = "scan " if segment["scan"] else "prune"
            print(
                f"  shard-{segment['shard']:02d}/{segment['name']}  "
                f"rows={segment['rows']:<10d}{verdict}"
            )
        print(
            f"would scan {report['scanned_segments']} of "
            f"{report['scanned_segments'] + report['pruned_segments']} "
            f"segments across {report['shards']} shards "
            f"({report['scanned_rows']} of {total_rows} sealed rows; "
            f"decided from manifests alone, live tails always scanned)"
        )
        return 0
    for segment in report["segments"]:
        verdict = "scan " if segment["scan"] else "prune"
        print(
            f"  {segment['name']}  v{segment['version']}  "
            f"rows={segment['rows']:<10d}{verdict}"
        )
    print(
        f"would scan {report['scanned_segments']} of "
        f"{report['scanned_segments'] + report['pruned_segments']} "
        f"segments ({report['scanned_rows']} of {total_rows} sealed "
        f"rows; {report['tail_rows']} live tail rows always scanned)"
    )
    return 0


def _verify_segment(reader) -> tuple[str, int, str]:
    """Materialize one segment and cross-check its footer metadata.

    Returns ``(name, rows, problem)`` — ``problem`` is empty when the
    segment is healthy, a description otherwise.  The id-table/enum
    validation happens inside ``database()``; the metadata check then
    recomputes the v2 footer from the materialized columns, so ranges
    or filters that a buggy rewrite narrowed are caught here rather
    than silently dropping rows from pruned queries.
    """
    database = reader.database()
    problem = ""
    if reader.meta is not None and (
        SegmentMeta.from_database(database) != reader.meta
    ):
        problem = "footer metadata does not match segment contents"
    rows = len(database)
    reader.release()
    return reader.name, rows, problem


def _verify_store(directory, strict: bool, parallel: int,
                  prefix: str = "") -> tuple[int, int, int, dict]:
    """Verify one flat store directory end to end.

    Returns ``(n_segments, total_rows, bad, health)``.  On top of the
    per-segment footer recomputation (:func:`_verify_segment`) this
    cross-checks the *promoted* metadata copy each v2 manifest entry
    carries against the segment footer — the copy is what
    manifest-only pruning (sharded ``prune-report``) trusts without
    opening the segment, so a drifted copy must fail verification.
    """
    from pathlib import Path

    from repro.analytics.shard import _manifest_entries

    store = FlowStore(directory, strict=strict)
    if parallel > 1 and len(store.segments) > 1:
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=parallel) as pool:
            results = list(pool.map(_verify_segment, store.segments))
    else:
        results = [_verify_segment(reader) for reader in store.segments]
    promoted = {
        name: meta for name, _rows, meta in _manifest_entries(
            Path(directory)
        )
    }
    total = 0
    bad = 0
    for (name, rows, problem), reader in zip(results, store.segments):
        if not problem and promoted.get(name) != reader.meta:
            problem = (
                "manifest metadata copy does not match segment footer"
            )
        note = "no pruning metadata (v1 segment)" if (
            reader.meta is None
        ) else "metadata ok"
        if problem:
            bad += 1
            print(f"  {prefix}{name}: {rows} rows, ERROR: {problem}")
        else:
            print(f"  {prefix}{name}: {rows} rows ok, {note}")
        total += rows
    health = store.health()
    _print_health(health)
    store.close()
    return len(store.segments), total, bad, health


def _cmd_verify(args) -> int:
    if args.parallel is not None and args.parallel <= 0:
        # Same contract as FlowStore(parallel=...): a zero/negative
        # worker count is an error, not a silent serial run.
        print("error: --parallel must be positive", file=sys.stderr)
        return 1
    from pathlib import Path

    from repro.analytics.shard import SHARDS_NAME, ShardCoordinator

    if not Path(args.directory).is_dir():
        raise StorageError(f"no flow store at {args.directory}")
    parallel = args.parallel or 1
    if (Path(args.directory) / SHARDS_NAME).exists():
        # Sharded root: verify every shard store in turn (each is a
        # complete FlowStore with its own manifest and journal).
        coordinator = ShardCoordinator(args.directory, strict=args.strict)
        targets = [
            (coordinator.shard_directory(index), f"shard-{index:02d}/")
            for index in range(coordinator.shards)
        ]
        coordinator.close()
    else:
        targets = [(args.directory, "")]
    n_segments = total = bad = 0
    quarantined = skipped = 0
    degraded = False
    for directory, prefix in targets:
        if prefix and not Path(directory).is_dir():
            # A shard no ingest has reached yet: an empty store, fine.
            print(f"  {prefix}(empty shard, nothing sealed)")
            continue
        segments, rows, store_bad, health = _verify_store(
            directory, args.strict, parallel, prefix
        )
        n_segments += segments
        total += rows
        bad += store_bad
        degraded = degraded or health["status"] != "ok"
        quarantined += len(health["quarantined_segments"])
        skipped += health["wal"]["skipped_records"]
    if bad:
        print(
            f"error: {bad} of {n_segments} segments failed "
            f"metadata verification",
            file=sys.stderr,
        )
        return 1
    if degraded:
        # The surviving segments verified clean, but sealed data is
        # missing (quarantined segment / unplayable journal record) —
        # a verification pass must not report such a store healthy.
        print(
            f"error: store is degraded "
            f"({quarantined} quarantined "
            f"segments, {skipped} skipped "
            f"journal records)",
            file=sys.stderr,
        )
        return 1
    print(f"verified {n_segments} segments, {total} rows")
    return 0


def _cmd_compact(args) -> int:
    store = _open_existing(args.directory, strict=args.strict)
    if getattr(store, "sharded", False):
        before = len(store.stats()["segments"])
        removed = store.compact(small_rows=args.small_rows)
        after = len(store.stats()["segments"])
        store.close()
        print(
            f"compacted {before} segments -> {after} across "
            f"{store.shards} shards ({removed} files merged away)"
        )
        return 0
    before = len(store.segments)
    removed = store.compact(small_rows=args.small_rows)
    print(
        f"compacted {before} segments -> {len(store.segments)} "
        f"({removed} files merged away)"
    )
    return 0


def _cmd_ingest_trace(args) -> int:
    import json
    import shutil
    from pathlib import Path

    from repro.experiments.datasets import DEFAULT_CLIST, DEFAULT_SEED, get_trace
    from repro.sniffer.pipeline import SnifferPipeline

    from repro.analytics.shard import SHARDS_NAME, ShardCoordinator

    seed = DEFAULT_SEED if args.seed is None else args.seed
    directory = Path(args.directory) / args.trace
    if (directory / "MANIFEST.json").exists() or (
        directory / SHARDS_NAME
    ).exists():
        # Appending to an existing store would silently double every
        # flow count the experiments read.
        if not args.force:
            print(
                f"error: {directory} already holds a stored dataset; "
                f"re-run with --force to replace it",
                file=sys.stderr,
            )
            return 1
        shutil.rmtree(directory)
    trace = get_trace(args.trace, seed)
    if args.shards is not None:
        store = ShardCoordinator(
            directory, shards=args.shards, spill_rows=args.spill_rows
        )
    else:
        store = FlowStore(directory, spill_rows=args.spill_rows)
    # Sidecar first, marked in-progress: a crash mid-ingest leaves a
    # store with committed segments but only part of the trace, and
    # repro-exp must refuse it rather than compute figures from a
    # fraction of the data.  The marker clears on success below.
    sidecar = directory / "DATASET.json"
    sidecar.write_text(
        json.dumps({"trace": args.trace, "seed": seed, "building": True})
        + "\n",
        encoding="utf-8",
    )
    pipeline = SnifferPipeline(
        clist_size=DEFAULT_CLIST, flow_store=store,
        # Everything streams to disk; keeping the tagged-flow list too
        # would grow the parent unboundedly on multi-day traces.
        retain_flows=False,
    )
    pipeline.process_trace(trace)
    pipeline.close()
    # Sidecar the provenance so repro-exp --flow-store can refuse a
    # store built from a different seed (and clear the building mark).
    sidecar.write_text(
        json.dumps({"trace": args.trace, "seed": seed}) + "\n",
        encoding="utf-8",
    )
    stats = store.stats()
    print(
        f"stored {stats['rows']} tagged flows of {args.trace} "
        f"(seed {seed}) in {len(stats['segments'])} segments at "
        f"{stats['directory']}"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-flowstore",
        description="Inspect and maintain on-disk columnar flow stores.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _store_command(name: str, **kwargs):
        command = sub.add_parser(name, **kwargs)
        command.add_argument("directory", help="flow store directory")
        command.add_argument(
            "--strict", action="store_true",
            help="fail the open on a corrupt segment instead of "
                 "quarantining it",
        )
        return command

    inspect = _store_command(
        "inspect", help="summarize a store directory"
    )
    inspect.set_defaults(func=_cmd_inspect)

    stats = _store_command(
        "stats",
        help="store summary with per-segment pruning metadata, as JSON",
    )
    stats.set_defaults(func=_cmd_stats)

    prune_report = _store_command(
        "prune-report",
        help="which segments a query with this predicate would scan",
    )
    prune_report.add_argument(
        "--t0", type=float, default=None,
        help="window start (flow start time, seconds)",
    )
    prune_report.add_argument(
        "--t1", type=float, default=None,
        help="window end (exclusive)",
    )
    prune_report.add_argument(
        "--fqdn", default=None, help="exact label to probe"
    )
    prune_report.add_argument(
        "--domain", default=None, help="second-level domain to probe"
    )
    prune_report.add_argument(
        "--server", type=int, default=None,
        help="server address (u32) to probe",
    )
    prune_report.add_argument(
        "--client", type=int, default=None,
        help="client address (u32) to probe",
    )
    prune_report.add_argument(
        "--protocol", default=None,
        help="layer-7 protocol name to probe (e.g. TLS, HTTP, P2P)",
    )
    prune_report.set_defaults(func=_cmd_prune_report)

    verify = _store_command(
        "verify",
        help="materialize every segment (full validation, including "
             "recomputed pruning metadata); non-zero exit when the "
             "store is degraded",
    )
    verify.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help="verify N segments concurrently (thread pool)",
    )
    verify.set_defaults(func=_cmd_verify)

    compact = _store_command(
        "compact", help="merge sealed segments"
    )
    compact.add_argument(
        "--small-rows", type=int, default=None, metavar="N",
        help="only merge adjacent runs of segments smaller than N rows "
             "(default: merge everything into one segment)",
    )
    compact.set_defaults(func=_cmd_compact)

    ingest = sub.add_parser(
        "ingest-trace",
        help="sniff a standard simulation trace into DIR/NAME",
    )
    ingest.add_argument("trace", help="trace name (e.g. EU1-FTTH)")
    ingest.add_argument("directory", help="stored-dataset root directory")
    ingest.add_argument(
        "--seed", type=int, default=None, help="dataset seed override"
    )
    ingest.add_argument(
        "--spill-rows", type=int, default=65536,
        help="rows per spilled segment (default 65536)",
    )
    ingest.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="persist as an N-shard store (client-address routing) "
             "instead of one flat FlowStore",
    )
    ingest.add_argument(
        "--force", action="store_true",
        help="replace an existing stored dataset instead of refusing",
    )
    ingest.set_defaults(func=_cmd_ingest_trace)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (StorageError, OSError, KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
