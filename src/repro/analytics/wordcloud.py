"""Text word cloud (Fig. 10).

Fig. 10 is a word cloud of the services hosted on appspot.com, sized by
popularity.  In a terminal reproduction the "cloud" is a ranked list
with font-size buckets; the scoring reuses the Alg. 4 log score so one
heavy client does not dominate.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable

from repro.analytics.database import FlowDatabase
from repro.dns.name import DomainName, DomainNameError


@dataclass(frozen=True, slots=True)
class CloudEntry:
    """One cloud word with its weight and display bucket (1=small...5=huge)."""

    word: str
    weight: float
    bucket: int


def _service_name(fqdn: str, domain: str) -> str | None:
    """The service label directly under the hosting domain.

    ``open-tracker.appspot.com`` → ``open-tracker``; names not under
    ``domain`` (or equal to it) return None.
    """
    try:
        name = DomainName(fqdn)
    except DomainNameError:
        return None
    if not name.is_subdomain_of(domain) or name.fqdn == domain.lower():
        return None
    suffix_len = domain.count(".") + 1
    labels = name.labels
    return labels[len(labels) - suffix_len - 1]


def build_word_cloud(
    database: FlowDatabase,
    domain: str,
    max_words: int = 40,
    buckets: int = 5,
) -> list[CloudEntry]:
    """Score every service under ``domain`` and bucket by weight."""
    per_client: dict[str, dict[int, int]] = defaultdict(
        lambda: defaultdict(int)
    )
    # Grouped on the columnar store: the service name is derived once
    # per distinct FQDN, client flow counts come pre-aggregated.
    rows = database.rows_for_domain(domain)
    services: dict[int, str | None] = {}
    for fqdn_id, client, count in database.fqdn_client_counts(rows):
        if fqdn_id in services:
            service = services[fqdn_id]
        else:
            service = services[fqdn_id] = _service_name(
                database.fqdn_label(fqdn_id), domain
            )
        if service is None:
            continue
        per_client[service][client] += count
    weights = {
        service: sum(math.log(count + 1) for count in clients.values())
        for service, clients in per_client.items()
    }
    ranked = sorted(weights.items(), key=lambda kv: (-kv[1], kv[0]))
    ranked = ranked[:max_words]
    if not ranked:
        return []
    top_weight = ranked[0][1]
    entries = []
    for word, weight in ranked:
        bucket = 1 + int((buckets - 1) * (weight / top_weight)) if top_weight else 1
        entries.append(
            CloudEntry(word=word, weight=weight, bucket=min(bucket, buckets))
        )
    return entries


def render_word_cloud(entries: Iterable[CloudEntry]) -> str:
    """ASCII rendering: bigger bucket = more emphasis."""
    marks = {5: "### {} ###", 4: "## {} ##", 3: "# {} #", 2: "+ {} +", 1: "{}"}
    return "  ".join(
        marks[entry.bucket].format(entry.word) for entry in entries
    )
