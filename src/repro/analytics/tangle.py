"""The tangle metrics of Fig. 3: FQDN↔serverIP fan-out and fan-in.

Fig. 3 top: for each FQDN, how many distinct serverIPs deliver it.
Fig. 3 bottom: for each serverIP, how many distinct FQDNs it serves.
Both are reported as CDFs; the paper finds 82% of FQDNs map to one
serverIP and 73% of serverIPs serve one FQDN, with heavy tails.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from collections import defaultdict
from dataclasses import dataclass

from repro.analytics.database import FlowDatabase


@dataclass(frozen=True, slots=True)
class Cdf:
    """An empirical CDF over positive integer counts.

    Pure stdlib on purpose: every operation is a scalar probe of an
    already-sorted tuple (``bisect`` territory), so the class works
    unchanged on the CI leg that strips numpy out.
    """

    values: tuple[int, ...]

    @classmethod
    def from_counts(cls, counts: list[int]) -> "Cdf":
        return cls(values=tuple(sorted(counts)))

    def at(self, x: float) -> float:
        """P(value <= x)."""
        if not self.values:
            return 0.0
        return bisect_right(self.values, x) / len(self.values)

    def percentile(self, q: float) -> int:
        """The smallest value v with CDF(v) >= q."""
        if not self.values:
            raise ValueError("empty CDF")
        if not 0 < q <= 1:
            raise ValueError("q must be in (0, 1]")
        index = math.ceil(q * len(self.values)) - 1
        return self.values[max(index, 0)]

    @property
    def max(self) -> int:
        return self.values[-1] if self.values else 0

    def points(self) -> list[tuple[int, float]]:
        """(value, CDF) pairs at each distinct value, for plotting."""
        values = self.values
        return [
            (value, bisect_right(values, value) / len(values))
            for value in dict.fromkeys(values)
        ]


def fanout_distribution(database: FlowDatabase) -> Cdf:
    """Fig. 3 top: distinct serverIP count per FQDN."""
    # One deduped (FQDN, server) pass over the columns; every interned
    # FQDN has at least one flow, so counting pairs per label covers
    # exactly database.fqdns().
    counts: dict[int, int] = defaultdict(int)
    for fqdn_id, _server, _flows in database.fqdn_server_counts():
        counts[fqdn_id] += 1
    return Cdf.from_counts(list(counts.values()))


def fanin_distribution(database: FlowDatabase) -> Cdf:
    """Fig. 3 bottom: distinct FQDN count per serverIP."""
    per_server: dict[int, int] = defaultdict(int)
    for _fqdn_id, server, _flows in database.fqdn_server_counts():
        per_server[server] += 1
    return Cdf.from_counts(list(per_server.values()))


def single_mapping_fractions(database: FlowDatabase) -> tuple[float, float]:
    """(fraction of FQDNs on one serverIP, fraction of serverIPs with one
    FQDN) — the headline numbers the paper quotes for Fig. 3 (82%/73%)."""
    fanout = fanout_distribution(database)
    fanin = fanin_distribution(database)
    return fanout.at(1), fanin.at(1)
