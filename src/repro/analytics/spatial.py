"""Spatial Discovery of Servers (Sec. 4.1, Algorithm 2).

Given a FQDN (or a whole organization), report every server address that
delivered its content, grouped by the CDN/cloud operating each address,
with flow shares — the data behind Fig. 7/8/9 of the paper.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Optional

from repro.analytics.database import FlowDatabase
from repro.dns.name import second_level_domain
from repro.orgdb.ipdb import IpOrganizationDb

SELF_LABEL = "SELF"
UNKNOWN_LABEL = "unknown"


@dataclass(slots=True)
class CdnShare:
    """One hosting organization's share of a domain's traffic."""

    organization: str
    servers: set[int] = field(default_factory=set)
    flows: int = 0

    @property
    def server_count(self) -> int:
        return len(self.servers)


@dataclass(slots=True)
class SpatialReport:
    """Output of Algorithm 2 for one target domain.

    ``per_fqdn`` maps each FQDN under the organization to its server
    set; ``per_cdn`` groups servers and flow counts by hosting
    organization (content owner itself = ``SELF``).
    """

    target: str
    organization: str
    server_set: set[int] = field(default_factory=set)
    per_fqdn: dict[str, set[int]] = field(default_factory=dict)
    per_cdn: dict[str, CdnShare] = field(default_factory=dict)
    total_flows: int = 0

    def flow_share(self, organization: str) -> float:
        """Fraction of the domain's flows served by ``organization``."""
        share = self.per_cdn.get(organization)
        if share is None or self.total_flows == 0:
            return 0.0
        return share.flows / self.total_flows

    def ranked_cdns(self) -> list[CdnShare]:
        """Hosting organizations by descending flow count."""
        return sorted(
            self.per_cdn.values(), key=lambda s: (-s.flows, s.organization)
        )


class SpatialDiscovery:
    """Algorithm 2 over the flow database plus the IP→org database.

    Args:
        database: labeled flow store.
        ipdb: address→organization mapping (the MaxMind substitute).
            When an address maps to the content owner's own organization
            name it is reported as ``SELF``, matching Fig. 9.
    """

    def __init__(
        self, database: FlowDatabase, ipdb: Optional[IpOrganizationDb] = None
    ):
        self.database = database
        self.ipdb = ipdb

    def _owner_of(self, address: int, content_org: str) -> str:
        if self.ipdb is None:
            return UNKNOWN_LABEL
        owner = self.ipdb.lookup(address)
        if owner is None:
            return UNKNOWN_LABEL
        if owner.lower() == content_org.lower():
            return SELF_LABEL
        return owner

    def discover(self, target: str) -> SpatialReport:
        """Run Algorithm 2 for ``target`` (a FQDN or a 2LD).

        Lines 4-5: extract the 2LD and pull the organization's row set;
        lines 6-9: per-FQDN server sets; the CDN grouping implements the
        "which CDNs handle the queries" analysis of Sec. 4.1/5.3.  All
        grouping happens on the columnar store — the IP→org database is
        probed once per distinct server, not once per flow.
        """
        organization = second_level_domain(target)
        database = self.database
        rows = database.rows_for_domain(organization)
        report = SpatialReport(target=target, organization=organization)
        org_short = organization.split(".")[0]
        per_fqdn: dict[str, set[int]] = defaultdict(set)
        for fqdn_id, server, _count in database.fqdn_server_counts(rows):
            per_fqdn[database.fqdn_label(fqdn_id)].add(server)
        report.per_fqdn = dict(per_fqdn)
        for server, count in database.server_flow_counts(rows).items():
            report.server_set.add(server)
            owner = self._owner_of(server, org_short)
            share = report.per_cdn.get(owner)
            if share is None:
                share = CdnShare(organization=owner)
                report.per_cdn[owner] = share
            share.servers.add(server)
            share.flows += count
            report.total_flows += count
        return report

    def server_access_matrix(
        self, target: str
    ) -> dict[str, dict[int, float]]:
        """Fig. 9 view: per hosting org, per serverIP flow fraction.

        The gray level of each cell in Fig. 9 is the fraction of the
        domain's flows a particular serverIP carried.
        """
        report = self.discover(target)
        matrix: dict[str, dict[int, float]] = {}
        if report.total_flows == 0:
            return matrix
        organization = report.organization.split(".")[0]
        rows = self.database.rows_for_domain(report.organization)
        for server, count in self.database.server_flow_counts(rows).items():
            owner = self._owner_of(server, organization)
            matrix.setdefault(owner, {})[server] = (
                count / report.total_flows
            )
        return matrix

    def track_changes(
        self, fqdn: str, bin_seconds: float = 600.0
    ) -> list[tuple[float, set[int]]]:
        """Server set per time bin for one FQDN — the "track over time"
        capability of Sec. 4.1 (and the anomaly-detection feed)."""
        bins: dict[int, set[int]] = defaultdict(set)
        for bin_index, server in self.database.server_bins_for_fqdn(
            fqdn, bin_seconds
        ):
            bins[bin_index].add(server)
        return [
            (index * bin_seconds, servers)
            for index, servers in sorted(bins.items())
        ]
