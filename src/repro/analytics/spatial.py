"""Spatial Discovery of Servers (Sec. 4.1, Algorithm 2).

Given a FQDN (or a whole organization), report every server address that
delivered its content, grouped by the CDN/cloud operating each address,
with flow shares — the data behind Fig. 7/8/9 of the paper.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Optional

from repro.analytics.database import FlowDatabase
from repro.dns.name import second_level_domain
from repro.orgdb.ipdb import IpOrganizationDb

SELF_LABEL = "SELF"
UNKNOWN_LABEL = "unknown"


@dataclass(slots=True)
class CdnShare:
    """One hosting organization's share of a domain's traffic."""

    organization: str
    servers: set[int] = field(default_factory=set)
    flows: int = 0

    @property
    def server_count(self) -> int:
        return len(self.servers)


@dataclass(slots=True)
class SpatialReport:
    """Output of Algorithm 2 for one target domain.

    ``per_fqdn`` maps each FQDN under the organization to its server
    set; ``per_cdn`` groups servers and flow counts by hosting
    organization (content owner itself = ``SELF``).
    """

    target: str
    organization: str
    server_set: set[int] = field(default_factory=set)
    per_fqdn: dict[str, set[int]] = field(default_factory=dict)
    per_cdn: dict[str, CdnShare] = field(default_factory=dict)
    total_flows: int = 0

    def flow_share(self, organization: str) -> float:
        """Fraction of the domain's flows served by ``organization``."""
        share = self.per_cdn.get(organization)
        if share is None or self.total_flows == 0:
            return 0.0
        return share.flows / self.total_flows

    def ranked_cdns(self) -> list[CdnShare]:
        """Hosting organizations by descending flow count."""
        return sorted(
            self.per_cdn.values(), key=lambda s: (-s.flows, s.organization)
        )


class SpatialDiscovery:
    """Algorithm 2 over the flow database plus the IP→org database.

    Args:
        database: labeled flow store.
        ipdb: address→organization mapping (the MaxMind substitute).
            When an address maps to the content owner's own organization
            name it is reported as ``SELF``, matching Fig. 9.
    """

    def __init__(
        self, database: FlowDatabase, ipdb: Optional[IpOrganizationDb] = None
    ):
        self.database = database
        self.ipdb = ipdb

    def _owner_of(self, address: int, content_org: str) -> str:
        if self.ipdb is None:
            return UNKNOWN_LABEL
        owner = self.ipdb.lookup(address)
        if owner is None:
            return UNKNOWN_LABEL
        if owner.lower() == content_org.lower():
            return SELF_LABEL
        return owner

    def discover(self, target: str) -> SpatialReport:
        """Run Algorithm 2 for ``target`` (a FQDN or a 2LD).

        Lines 4-5: extract the 2LD and pull every flow of the
        organization; lines 6-9: per-FQDN server sets; the CDN grouping
        implements the "which CDNs handle the queries" analysis of
        Sec. 4.1/5.3.
        """
        organization = second_level_domain(target)
        flows = self.database.query_by_domain(organization)
        report = SpatialReport(target=target, organization=organization)
        org_short = organization.split(".")[0]
        per_fqdn: dict[str, set[int]] = defaultdict(set)
        for flow in flows:
            server = flow.fid.server_ip
            report.server_set.add(server)
            per_fqdn[flow.fqdn.lower()].add(server)
            owner = self._owner_of(server, org_short)
            share = report.per_cdn.get(owner)
            if share is None:
                share = CdnShare(organization=owner)
                report.per_cdn[owner] = share
            share.servers.add(server)
            share.flows += 1
            report.total_flows += 1
        report.per_fqdn = dict(per_fqdn)
        return report

    def server_access_matrix(
        self, target: str
    ) -> dict[str, dict[int, float]]:
        """Fig. 9 view: per hosting org, per serverIP flow fraction.

        The gray level of each cell in Fig. 9 is the fraction of the
        domain's flows a particular serverIP carried.
        """
        report = self.discover(target)
        matrix: dict[str, dict[int, float]] = {}
        if report.total_flows == 0:
            return matrix
        counts: dict[str, dict[int, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        organization = report.organization.split(".")[0]
        for flow in self.database.query_by_domain(report.organization):
            owner = self._owner_of(flow.fid.server_ip, organization)
            counts[owner][flow.fid.server_ip] += 1
        for owner, servers in counts.items():
            matrix[owner] = {
                server: count / report.total_flows
                for server, count in servers.items()
            }
        return matrix

    def track_changes(
        self, fqdn: str, bin_seconds: float = 600.0
    ) -> list[tuple[float, set[int]]]:
        """Server set per time bin for one FQDN — the "track over time"
        capability of Sec. 4.1 (and the anomaly-detection feed)."""
        flows = self.database.query_by_fqdn(fqdn)
        bins: dict[int, set[int]] = defaultdict(set)
        for flow in flows:
            bins[int(flow.start // bin_seconds)].add(flow.fid.server_ip)
        return [
            (index * bin_seconds, servers)
            for index, servers in sorted(bins.items())
        ]
