"""Automatic Service Tag Extraction (Sec. 4.3, Algorithm 4, Equation 1).

Given a layer-4 port, rank the sub-domain tokens of the FQDNs observed on
that port.  The score damps heavy single clients logarithmically:

    score(X) = sum over clients c of log(N_X(c) + 1)

where ``N_X(c)`` is the number of flows from client ``c`` whose label
contains token ``X``.  Tables 6 and 7 of the paper are outputs of this
module.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass

from repro.analytics.database import FlowDatabase
from repro.analytics.tokens import tokenize_fqdn


@dataclass(frozen=True, slots=True)
class TagScore:
    """One ranked token: the tag text and its Eq. 1 score."""

    token: str
    score: float
    client_count: int
    flow_count: int


class ServiceTagExtractor:
    """Algorithm 4 over a :class:`FlowDatabase`.

    Args:
        database: labeled flow store.
        use_log_score: when False, rank by raw flow counts instead of
            Eq. 1 — the ablation showing why the log matters (a single
            chatty client otherwise hijacks the port's tag).
    """

    def __init__(self, database: FlowDatabase, use_log_score: bool = True):
        self.database = database
        self.use_log_score = use_log_score

    def extract(self, dst_port: int, k: int = 10) -> list[TagScore]:
        """Return the top-``k`` tags for ``dst_port`` ranked by score."""
        database = self.database
        rows = database.rows_for_port(dst_port)
        # token -> client -> flow count  (N_X(c) of Eq. 1), grouped by
        # interned label so tokenization runs once per distinct FQDN.
        per_client: dict[str, dict[int, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        token_sets: dict[int, set[str]] = {}
        for fqdn_id, client, count in database.fqdn_client_counts(rows):
            tokens = token_sets.get(fqdn_id)
            if tokens is None:
                tokens = token_sets[fqdn_id] = set(
                    tokenize_fqdn(database.fqdn_label(fqdn_id))
                )
            for token in tokens:
                per_client[token][client] += count
        scored: list[TagScore] = []
        for token, clients in per_client.items():
            if self.use_log_score:
                score = sum(
                    math.log(count + 1) for count in clients.values()
                )
            else:
                score = float(sum(clients.values()))
            scored.append(
                TagScore(
                    token=token,
                    score=score,
                    client_count=len(clients),
                    flow_count=sum(clients.values()),
                )
            )
        scored.sort(key=lambda tag: (-tag.score, tag.token))
        return scored[:k]

    def extract_all_ports(
        self, k: int = 5, min_flows: int = 10
    ) -> dict[int, list[TagScore]]:
        """Tag every port with at least ``min_flows`` flows."""
        out: dict[int, list[TagScore]] = {}
        for port in self.database.ports():
            if len(self.database.rows_for_port(port)) >= min_flows:
                tags = self.extract(port, k=k)
                if tags:
                    out[port] = tags
        return out

    def top_fraction(
        self, dst_port: int, fraction: float = 0.95
    ) -> list[TagScore]:
        """Tokens whose cumulative score reaches ``fraction`` of the total.

        The paper notes the score distribution is very skewed; this
        selection rule ("the subset that sums to the n-th percentile")
        typically returns only a handful of tokens.
        """
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        ranked = self.extract(dst_port, k=10**9)
        total = sum(tag.score for tag in ranked)
        if total == 0:
            return []
        out: list[TagScore] = []
        cumulative = 0.0
        for tag in ranked:
            out.append(tag)
            cumulative += tag.score
            if cumulative >= fraction * total:
                break
        return out
