"""Sharded Flow Database: a scatter-gather coordinator over N FlowStores.

One :class:`FlowStore` scales until a single directory's segment scan —
or a single Python process — becomes the bottleneck.  This module
splits the store horizontally instead: a :class:`ShardRouter` assigns
every ingested event to one of *N* shards (by client address, the
paper's natural per-user partition, or by time), each shard is a full
:class:`FlowStore` — WAL, quarantine, snapshot pins and footer
metadata all intact — and a :class:`ShardCoordinator` fans every query
out to all shards and merges the partial results **bit-identically**
to one flat store holding the same rows.

Topology::

    ShardCoordinator(root/)           SHARDS.json   (fixed topology)
      |- shard-00/                    a complete FlowStore
      |    |- MANIFEST.json  tail.wal  seg-*.fseg  quarantine/
      |- shard-01/
      |- ...

Two execution backends share one op protocol (:func:`_shard_execute`):

* ``backend="inprocess"`` keeps all N stores in this process — the
  default, zero extra moving parts;
* ``backend="process"`` runs one OS process per shard over a duplex
  pipe (the ``repro.sniffer.fanout`` discipline), which doubles as a
  process-pool rescue for ``parallel=N`` deployments where the GIL —
  or a missing numpy — makes the flat store's thread pool useless.

Merge contract
--------------

The coordinator's global row space is the shard-major concatenation
``shard-00 rows ++ shard-01 rows ++ ...``.  Every query result equals
the same query against one flat ``FlowStore`` that ingested the rows
in that shard-major order (the differential suite in
``tests/test_shard_differential.py`` enforces this property, with and
without numpy).  Two sharding-specific caveats:

* global row indices are positions in the concatenation, so they are
  stable only while no ingest runs (a flat store only ever appends at
  the end; a sharded one grows every shard's slice in place);
* interned fqdn/sld ids follow *query-time* first-appearance order
  over the shard-major label tables, which equals the flat store's
  order once the store is quiescent.  Under interleaved multi-round
  ingest the id *assignment* may differ while every id↔label mapping
  stays consistent — compare name-keyed surfaces in that regime.

Manifest-only pruning
---------------------

``prune_report`` answers "which segments would this hint scan" from
the shards' ``MANIFEST.json`` files alone: the v2 manifest carries a
verified copy of every segment footer's pruning metadata
(:meth:`SegmentMeta.from_manifest`), so the report opens **zero**
segment files — the backend is not even started.  That is what makes
the report safe to run against a store another process is serving.
"""

from __future__ import annotations

import json
import multiprocessing
import threading
from array import array
from bisect import bisect_right
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

from repro.analytics import database as _dbmod
from repro.analytics.database import FlowDatabase
from repro.analytics.storage import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    FlowStore,
    QueryHint,
    SegmentMeta,
    StorageError,
    _le_np,
    _StoreReadMixin,
    _write_file_atomic,
)
from repro.net.flow import DnsObservation, FlowRecord, Protocol
from repro.sniffer.eventcodec import PROTOCOLS, BatchEncoder, decode_events
from repro.sniffer.sharding import shard_of

SHARDS_NAME = "SHARDS.json"
SHARDS_FORMAT = 1

#: Default bucket width (seconds) for ``by="time"`` routing — one hour,
#: the granularity of the paper's per-hour traffic breakdowns.
DEFAULT_TIME_WINDOW = 3600.0

_ROUTING_KEYS = ("client", "time")


class ShardError(StorageError):
    """A shard backend failed structurally (dead worker, bad reply)."""


# ---------------------------------------------------------------------------
# routing


class ShardRouter:
    """Deterministic event→shard assignment.

    ``by="client"`` routes on the low client-address byte
    (:func:`repro.sniffer.sharding.shard_of` — the same hash the live
    capture fan-out uses, so a sniffer shard and a store shard can be
    pinned one-to-one).  ``by="time"`` routes on the flow start (DNS:
    observation timestamp) bucketed into ``time_window``-second strides.
    """

    __slots__ = ("shards", "by", "time_window")

    def __init__(self, shards: int, by: str = "client",
                 time_window: float = DEFAULT_TIME_WINDOW):
        if not isinstance(shards, int) or shards < 1:
            raise StorageError(f"shards must be a positive int, not {shards!r}")
        if by not in _ROUTING_KEYS:
            raise StorageError(
                f"unknown routing key {by!r} (expected one of {_ROUTING_KEYS})"
            )
        if not time_window > 0:
            raise StorageError("time_window must be positive")
        self.shards = shards
        self.by = by
        self.time_window = float(time_window)

    def shard_for(self, event) -> int:
        """Shard index of one :class:`FlowRecord` / :class:`DnsObservation`."""
        if self.by == "client":
            client_ip = (
                event.fid.client_ip if isinstance(event, FlowRecord)
                else event.client_ip
            )
            return shard_of(client_ip, self.shards)
        timestamp = (
            event.start if isinstance(event, FlowRecord) else event.timestamp
        )
        return int(timestamp // self.time_window) % self.shards

    def split_flows(self, flows: Iterable[FlowRecord]) -> list[list[FlowRecord]]:
        """Partition a flow iterable into per-shard lists, order kept."""
        out: list[list[FlowRecord]] = [[] for _ in range(self.shards)]
        for flow in flows:
            out[self.shard_for(flow)].append(flow)
        return out

    def split_batch(self, payload) -> list[bytes]:
        """Re-encode one eventcodec batch into per-shard batches.

        Event order within a shard is preserved; an empty shard gets a
        valid zero-event batch (``ingest_batch`` of it is a no-op).
        """
        encoders = [BatchEncoder() for _ in range(self.shards)]
        for event in decode_events(payload):
            encoders[self.shard_for(event)].add(event)
        return [encoder.take() for encoder in encoders]

    def config(self) -> dict:
        return {
            "format": SHARDS_FORMAT,
            "shards": self.shards,
            "by": self.by,
            "time_window": self.time_window,
        }


# ---------------------------------------------------------------------------
# the per-shard op protocol (shared by both backends)

# Ops dispatched straight to the FlowStore method of the same name with
# the request args.  Anything not listed here (and not in _SPECIAL_OPS)
# is rejected — the worker never getattr()s an arbitrary request string.
_PLAIN_OPS = frozenset({
    # ingest / lifecycle
    "add_all", "ingest_batch", "flush", "compact", "stats", "health",
    # row-index views
    "rows_for_fqdn", "rows_for_domain", "rows_for_port", "rows_in_window",
    "tagged_rows",
    # record queries
    "query_by_fqdn", "query_by_domain", "query_by_port", "query_in_window",
    # aggregate views
    "servers_for_fqdn", "servers_for_domain", "fqdns_for_servers",
    "fqdns_for_rows", "servers", "ports", "count_by_protocol", "time_span",
    "server_bins_for_fqdn",
    # grouped aggregations (fqdn ids in results are shard-local;
    # the coordinator remaps them through its per-shard id maps)
    "fqdn_server_counts", "fqdn_client_counts", "fqdn_flow_byte_totals",
    "server_flow_counts", "fqdn_first_seen", "fqdn_bin_pairs",
    "server_fqdn_bin_triples",
})


def _op_server_row_chunks(store: FlowStore, order: Sequence[int]) -> dict:
    """Per-server local row chunks for an already-deduped address list.

    ``rows_for_servers`` is server-major and ``server_flow_counts``
    counts the same predicate, so the flat concatenation splits back
    into exact per-server chunks without any private kernel.
    """
    rows = store.rows_for_servers(order)
    counts = store.server_flow_counts()
    chunks: dict[int, array] = {}
    position = 0
    for server in order:
        n = counts.get(server, 0)
        if n:
            chunks[server] = rows[position:position + n]
        position += n
    return chunks


def _op_server_record_chunks(store: FlowStore, order: Sequence[int]) -> dict:
    records = store.query_by_servers(order)
    counts = store.server_flow_counts()
    chunks: dict[int, list[FlowRecord]] = {}
    position = 0
    for server in order:
        n = counts.get(server, 0)
        if n:
            chunks[server] = records[position:position + n]
        position += n
    return chunks


def _op_domain_bin_pairs(store: FlowStore, sld: str,
                         bin_seconds: float) -> set[tuple[int, int]]:
    """Deduped ``(bin_index, server_ip)`` pairs for one 2LD — the
    mergeable primitive behind ``unique_servers_per_bin`` (distinct
    counts cannot merge across shards; the pairs can).  The binning
    matches ``FlowDatabase.bin_server_pairs`` (floor division on the
    stored start)."""
    return {
        (int(record.start // bin_seconds), record.fid.server_ip)
        for record in store.query_by_domain(sld)
    }


_SPECIAL_OPS = {
    "ping": lambda store: None,
    "tagged_count": lambda store: store.tagged_count,
    "all_records": lambda store: list(store),
    "server_row_chunks": _op_server_row_chunks,
    "server_record_chunks": _op_server_record_chunks,
    "domain_bin_pairs": _op_domain_bin_pairs,
}


def _shard_execute(store: FlowStore, op: str, args: tuple,
                   known_fqdns: int, known_slds: int) -> dict:
    """Run one op against one shard store and describe the outcome.

    Every reply piggybacks the shard's label-table growth since the
    coordinator's last sync (``known_fqdns``/``known_slds`` are the
    lengths it has already absorbed) plus the current row count — the
    coordinator needs both to remap shard-local ids and to place the
    shard's slice in the global row space.  The label capture runs
    *after* the op, so any label the op itself interned (a live tail
    sync) is already included.
    """
    handler = _SPECIAL_OPS.get(op)
    if handler is not None:
        result = handler(store, *args)
    elif op in _PLAIN_OPS:
        result = getattr(store, op)(*args)
    else:
        raise StorageError(f"unknown shard op {op!r}")
    fqdns = store.fqdns()
    slds = store.slds()
    return {
        "result": result,
        "new_fqdns": fqdns[known_fqdns:],
        "new_slds": slds[known_slds:],
        "n_rows": len(store),
    }


# ---------------------------------------------------------------------------
# backends


class _InProcessBackend:
    """All N shard stores live in this process; requests run serially
    in shard order (each store still applies its own ``parallel``
    thread pool to its own segments)."""

    kind = "inprocess"

    def __init__(self, directories: Sequence[Path], store_kwargs: dict):
        self.stores: list[FlowStore] = []
        try:
            for directory in directories:
                self.stores.append(FlowStore(directory, **store_kwargs))
        except BaseException:
            self.close()
            raise

    def request_all(self, requests: Sequence[tuple]) -> list[dict]:
        return [
            _shard_execute(store, *request)
            for store, request in zip(self.stores, requests)
        ]

    def close(self) -> None:
        for store in self.stores:
            store.close()
        self.stores = []


def _shard_worker_main(conn, directory: str, store_kwargs: dict) -> None:
    """One shard's process: open the store, answer ops until EOF/stop.

    Startup is handshaked — ``("ready", None)`` or ``("fatal", msg)`` —
    so an open failure (e.g. ``strict=True`` over a quarantined shard)
    surfaces as a :class:`ShardError` in the parent instead of a bare
    dead pipe.  A ``None`` request is the stop signal: seal the tail,
    close the store, acknowledge, exit.
    """
    store = None
    try:
        try:
            store = FlowStore(directory, **store_kwargs)
        except Exception as exc:
            conn.send(("fatal", f"{type(exc).__name__}: {exc}"))
            return
        conn.send(("ready", None))
        while True:
            try:
                request = conn.recv()
            except EOFError:
                return
            if request is None:
                store.close()
                store = None
                try:
                    conn.send(("ok", None))
                except OSError:
                    pass
                return
            op, args, known_fqdns, known_slds = request
            try:
                reply = (
                    "ok", _shard_execute(store, op, args,
                                         known_fqdns, known_slds),
                )
            except Exception as exc:
                reply = ("err", f"{type(exc).__name__}: {exc}")
            conn.send(reply)
    finally:
        if store is not None:
            try:
                store.close()
            except Exception:
                pass
        conn.close()


class _ProcessBackend:
    """One OS process per shard over a duplex pipe (the ``fanout``
    worker discipline): pickled ``(op, args, known_fqdns, known_slds)``
    requests down, ``("ok", reply)`` / ``("err", message)`` up.

    ``fork`` is preferred when available so a worker inherits the
    parent's runtime state (notably ``repro.analytics.database._np``
    gating — the no-numpy differential legs depend on it)."""

    kind = "process"

    def __init__(self, directories: Sequence[Path], store_kwargs: dict,
                 start_method: Optional[str] = None):
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        ctx = multiprocessing.get_context(start_method)
        self._procs: list = []
        self._conns: list = []
        try:
            for index, directory in enumerate(directories):
                parent, child = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=_shard_worker_main,
                    args=(child, str(directory), dict(store_kwargs)),
                    name=f"flowstore-shard-{index:02d}",
                    daemon=True,
                )
                proc.start()
                child.close()
                self._procs.append(proc)
                self._conns.append(parent)
            for index, conn in enumerate(self._conns):
                try:
                    status, payload = conn.recv()
                except EOFError:
                    raise self._dead(index) from None
                if status != "ready":
                    raise ShardError(f"shard {index}: {payload}")
        except BaseException:
            self.close()
            raise

    def _dead(self, index: int) -> ShardError:
        exitcode = self._procs[index].exitcode
        return ShardError(
            f"shard worker {index} died (exitcode {exitcode})"
        )

    def request_all(self, requests: Sequence[tuple]) -> list[dict]:
        for conn, request in zip(self._conns, requests):
            try:
                conn.send(request)
            except OSError as exc:
                raise ShardError(f"shard pipe broken: {exc}") from exc
        replies: list = []
        first_error: Optional[str] = None
        # Drain every pipe before raising, so one failed shard cannot
        # desynchronize the request/reply framing of the others.
        for index, conn in enumerate(self._conns):
            try:
                status, payload = conn.recv()
            except EOFError:
                raise self._dead(index) from None
            if status == "err":
                if first_error is None:
                    first_error = f"shard {index}: {payload}"
                replies.append(None)
            else:
                replies.append(payload)
        if first_error is not None:
            raise ShardError(first_error)
        return replies

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(None)
                try:
                    conn.recv()
                except EOFError:
                    pass
            except OSError:
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=5)
        self._procs = []
        self._conns = []


_BACKENDS = {"inprocess": _InProcessBackend, "process": _ProcessBackend}


# ---------------------------------------------------------------------------
# serve-layer duck typing


class _Gauge:
    """``len()``-able stand-in for the private collections the serve
    layer's metric lambdas read off a flat :class:`FlowStore`
    (``_tail``, ``_segments``, ``_quarantined``, ``_retired``).
    Refreshed from the per-shard payloads on every ``stats()`` /
    ``health()`` fan, so ``/metrics`` lags at most one scrape's
    ``/health`` poll."""

    __slots__ = ("n",)

    def __init__(self) -> None:
        self.n = 0

    def __len__(self) -> int:
        return self.n


class CoordinatorSnapshot:
    """The coordinator's answer to :meth:`FlowStore.pin`.

    A flat store's snapshot freezes the segment list; the coordinator
    delegates every read to the live coordinator instead — each fanned
    query still executes over per-shard :meth:`_view` captures, so a
    single query is internally consistent, but two reads through one
    snapshot may observe different generations if ingest runs between
    them.  That weaker isolation is exactly what the serve layer's
    per-request pin can tolerate (one query per pin).
    """

    __slots__ = ("_coordinator", "cancel_token")

    def __init__(self, coordinator: "ShardCoordinator"):
        self._coordinator = coordinator
        self.cancel_token = None

    def __getattr__(self, name):
        return getattr(self._coordinator, name)

    def __len__(self) -> int:
        return len(self._coordinator)

    def __iter__(self):
        return iter(self._coordinator)

    @property
    def released(self) -> bool:
        return False

    def close(self) -> None:
        return None

    def __enter__(self) -> "CoordinatorSnapshot":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# the coordinator


class ShardCoordinator:
    """Scatter-gather façade over N shard FlowStores (see module doc).

    Construction is cheap and lazy: shard stores (or worker processes)
    start on the first fanned operation, so metadata-only paths —
    :meth:`prune_report` above all — never open a single segment file.
    The public query surface mirrors :class:`_StoreReadMixin` method
    for method and merges per-shard partials with the same arithmetic
    the flat store applies to per-segment partials.
    """

    #: Duck-typing discriminator for callers (CLI, serve) that treat a
    #: flat FlowStore and a coordinator through one variable.
    sharded = True

    def __init__(self, directory, shards: Optional[int] = None,
                 by: Optional[str] = None,
                 time_window: Optional[float] = None,
                 backend: str = "inprocess",
                 start_method: Optional[str] = None,
                 spill_rows: Optional[int] = None,
                 spill_bytes: Optional[int] = None,
                 cache_segments: bool = True,
                 parallel: Optional[int] = None,
                 prune: bool = True,
                 wal: bool = True, wal_sync: bool = True,
                 strict: bool = False):
        if backend not in _BACKENDS:
            raise StorageError(
                f"unknown shard backend {backend!r} "
                f"(expected one of {tuple(_BACKENDS)})"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.router = self._load_or_create_topology(shards, by, time_window)
        self.shards = self.router.shards
        self.backend_kind = backend
        self.prune = bool(prune)
        self._start_method = start_method
        self._store_kwargs = {
            "spill_rows": spill_rows,
            "spill_bytes": spill_bytes,
            "cache_segments": cache_segments,
            "parallel": parallel,
            "prune": prune,
            "wal": wal,
            "wal_sync": wal_sync,
            "strict": strict,
        }
        self._backend = None
        self._closed = False
        self._lock = threading.RLock()
        # Coordinator-global label tables: one FlowDatabase used purely
        # as an interner, fed shard-major so quiescent id order matches
        # the flat oracle's.  _fqdn_maps[k][local_id] -> global id.
        self._interns = FlowDatabase()
        self._fqdn_maps: list[list[int]] = [[] for _ in range(self.shards)]
        self._sld_maps: list[list[int]] = [[] for _ in range(self.shards)]
        self._known_fqdns = [0] * self.shards
        self._known_slds = [0] * self.shards
        self._rows = [0] * self.shards
        # Serve-layer gauges (see _Gauge) and live metric dicts — the
        # /metrics registration captures these objects once, so they
        # must be stable and refreshed in place.
        self._tail = _Gauge()
        self._segments = _Gauge()
        self._quarantined = _Gauge()
        self._retired = _Gauge()
        self._pins: dict = {}
        self._scan_stats = {
            "queries": 0, "segments_scanned": 0, "segments_pruned": 0,
        }
        self._wal_report: dict = {}
        self._generation = 0
        self._wal_epoch = 0

    # -- topology ----------------------------------------------------------

    def _load_or_create_topology(self, shards, by, time_window) -> ShardRouter:
        path = self.directory / SHARDS_NAME
        if path.exists():
            try:
                config = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError) as exc:
                raise StorageError(
                    f"unreadable shard topology {path}: {exc}"
                ) from exc
            if (
                not isinstance(config, dict)
                or config.get("format") != SHARDS_FORMAT
            ):
                raise StorageError(f"unsupported shard topology {path}")
            router = ShardRouter(
                config.get("shards"), config.get("by", "client"),
                config.get("time_window", DEFAULT_TIME_WINDOW),
            )
            # The on-disk topology is authoritative: rows were routed
            # with it, so opening with different parameters would
            # silently misroute every future ingest.
            if shards is not None and shards != router.shards:
                raise StorageError(
                    f"store at {self.directory} has {router.shards} "
                    f"shards, not {shards}"
                )
            if by is not None and by != router.by:
                raise StorageError(
                    f"store at {self.directory} routes by "
                    f"{router.by!r}, not {by!r}"
                )
            return router
        if shards is None:
            raise StorageError(
                f"no shard topology at {path}; pass shards=N to create one"
            )
        router = ShardRouter(
            shards, by if by is not None else "client",
            time_window if time_window is not None else DEFAULT_TIME_WINDOW,
        )
        payload = json.dumps(router.config(), indent=2) + "\n"
        _write_file_atomic(path, payload.encode("utf-8"), "shard topology")
        return router

    def shard_directory(self, index: int) -> Path:
        return self.directory / f"shard-{index:02d}"

    # -- fan plumbing ------------------------------------------------------

    def _ensure_backend(self):
        if self._closed:
            raise StorageError("coordinator is closed")
        if self._backend is None:
            directories = [
                self.shard_directory(k) for k in range(self.shards)
            ]
            factory = _BACKENDS[self.backend_kind]
            if self.backend_kind == "process":
                self._backend = factory(
                    directories, self._store_kwargs, self._start_method
                )
            else:
                self._backend = factory(directories, self._store_kwargs)
        return self._backend

    def _absorb(self, index: int, reply: dict) -> None:
        """Fold one shard reply's label growth and row count into the
        coordinator tables (shard-major callers preserve global
        first-appearance order)."""
        self._rows[index] = reply["n_rows"]
        interns = self._interns
        fqdn_map = self._fqdn_maps[index]
        for name in reply["new_fqdns"]:
            fqdn_map.append(interns._intern_fqdn(name))
        self._known_fqdns[index] += len(reply["new_fqdns"])
        sld_map = self._sld_maps[index]
        for name in reply["new_slds"]:
            # Every sld enters the interner through some fqdn above,
            # so the lookup cannot miss for store-produced tables.
            sld_id = interns._sld_ids.get(name)
            if sld_id is None:  # pragma: no cover - defensive
                sld_id = len(interns._sld_names)
                interns._sld_ids[name] = sld_id
                interns._sld_names.append(name)
                interns._by_sld[sld_id] = array("I")
                interns._sld_fqdns.append(array("i"))
            sld_map.append(sld_id)
        self._known_slds[index] += len(reply["new_slds"])

    def _fan(self, op: str, args: tuple = (),
             per_shard_args: Optional[Sequence[tuple]] = None) -> list:
        """Send one op to every shard, absorb replies in shard order,
        return the per-shard results (shard order)."""
        with self._lock:
            backend = self._ensure_backend()
            requests = [
                (
                    op,
                    per_shard_args[k] if per_shard_args is not None else args,
                    self._known_fqdns[k],
                    self._known_slds[k],
                )
                for k in range(self.shards)
            ]
            replies = backend.request_all(requests)
            results = []
            for index, reply in enumerate(replies):
                self._absorb(index, reply)
                results.append(reply["result"])
            return results

    def _bases(self) -> list[int]:
        bases, total = [], 0
        for n_rows in self._rows:
            bases.append(total)
            total += n_rows
        return bases

    def _split_global_rows(self, rows) -> list[array]:
        """Partition global row indices into per-shard local rows
        (the sharded analogue of ``_StoreReadMixin._split_rows``)."""
        bases = self._bases()
        ends = [bases[k] + self._rows[k] for k in range(self.shards)]
        out = [array("I") for _ in range(self.shards)]
        if rows is None or not len(rows):
            return out
        np = _dbmod._np
        if np is not None:
            taken = (
                np.frombuffer(rows, np.uint32)
                if isinstance(rows, array)
                else np.asarray(rows, np.uint32)
            )
            which = np.searchsorted(
                np.asarray(bases, np.int64), taken, side="right"
            ) - 1
            for index in range(self.shards):
                mask = which == index
                if mask.any():
                    local = taken[mask] - bases[index]
                    out[index].frombytes(_le_np(local, np.uint32))
            return out
        for row in rows:
            index = bisect_right(bases, row) - 1
            if 0 <= index < len(bases) and row < ends[index]:
                out[index].append(row - bases[index])
        return out

    def _fan_rows(self, op: str, rows) -> list:
        """Fan a grouped aggregation that takes an optional global row
        set: ``rows=None`` fans as-is, otherwise each shard gets its
        local slice of the split."""
        if rows is None:
            return self._fan(op, (None,))
        split = self._split_global_rows(rows)
        return self._fan(op, per_shard_args=[(split[k],)
                                             for k in range(self.shards)])

    def _concat_offset(self, parts: Sequence) -> array:
        """Shard-major concatenation of per-shard local row arrays,
        offset into the global row space."""
        bases = self._bases()
        out = array("I")
        for index, part in enumerate(parts):
            _StoreReadMixin._extend_offset(out, part, bases[index])
        return out

    # -- ingestion ---------------------------------------------------------

    def add(self, flow: FlowRecord) -> None:
        """Insert one flow into its home shard."""
        target = self.router.shard_for(flow)
        self._fan("add_all", per_shard_args=[
            ([flow] if k == target else [],) for k in range(self.shards)
        ])

    def add_all(self, flows: Iterable[FlowRecord]) -> None:
        """Route and insert a flow iterable (one fan, order kept
        within each shard)."""
        split = self.router.split_flows(flows)
        self._fan("add_all", per_shard_args=[(split[k],)
                                             for k in range(self.shards)])

    def ingest_batch(self, payload) -> int:
        """Split one eventcodec batch across the shards; returns the
        total number of flows ingested."""
        payloads = self.router.split_batch(payload)
        counts = self._fan("ingest_batch", per_shard_args=[
            (payloads[k],) for k in range(self.shards)
        ])
        return sum(counts)

    def flush(self) -> list:
        """Seal every shard's tail; per-shard new segment names
        (``None`` where a tail was empty)."""
        return self._fan("flush")

    def compact(self, small_rows: Optional[int] = None) -> int:
        """Compact every shard; total segments removed."""
        return sum(self._fan("compact", (small_rows,)))

    def close(self) -> None:
        with self._lock:
            if self._backend is not None:
                self._backend.close()
                self._backend = None
            self._closed = True

    def __enter__(self) -> "ShardCoordinator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- pinning (serve-layer surface) -------------------------------------

    def pin(self) -> CoordinatorSnapshot:
        return CoordinatorSnapshot(self)

    def unpin(self, snapshot: CoordinatorSnapshot) -> None:
        return None

    # -- interned label tables --------------------------------------------

    def fqdn_label(self, fqdn_id: int) -> str:
        return self._interns._fqdn_names[fqdn_id]

    def sld_label(self, sld_id: int) -> str:
        return self._interns._sld_names[sld_id]

    def sld_of_fqdn(self, fqdn_id: int) -> int:
        return self._interns._fqdn_sld[fqdn_id]

    def fqdns(self) -> list[str]:
        """All distinct labels, shard-major first-appearance order."""
        self._fan("ping")
        with self._lock:
            return list(self._interns._fqdn_names)

    def slds(self) -> list[str]:
        self._fan("ping")
        with self._lock:
            return list(self._interns._sld_names)

    def fqdns_for_domain(self, sld: str) -> set[str]:
        self._fan("ping")
        with self._lock:
            interns = self._interns
            sld_id = interns._sld_ids.get(sld.lower())
            if sld_id is None:
                return set()
            names = interns._fqdn_names
            return {
                names[fqdn_id] for fqdn_id in interns._sld_fqdns[sld_id]
            }

    def servers(self) -> list[int]:
        seen: dict[int, None] = {}
        for part in self._fan("servers"):
            for server in part:
                if server not in seen:
                    seen[server] = None
        return list(seen)

    def ports(self) -> list[int]:
        seen: dict[int, None] = {}
        for part in self._fan("ports"):
            for port in part:
                if port not in seen:
                    seen[port] = None
        return list(seen)

    # -- row-index views ---------------------------------------------------

    def rows_for_fqdn(self, fqdn: str) -> Sequence[int]:
        return self._concat_offset(self._fan("rows_for_fqdn", (fqdn,)))

    def rows_for_domain(self, sld: str) -> Sequence[int]:
        return self._concat_offset(self._fan("rows_for_domain", (sld,)))

    def rows_for_port(self, dst_port: int) -> Sequence[int]:
        return self._concat_offset(self._fan("rows_for_port", (dst_port,)))

    def rows_in_window(self, t0: float, t1: float) -> Sequence[int]:
        return self._concat_offset(self._fan("rows_in_window", (t0, t1)))

    def tagged_rows(self) -> Sequence[int]:
        return self._concat_offset(self._fan("tagged_rows"))

    def rows_for_servers(self, servers: Iterable[int]) -> Sequence[int]:
        """Server-major concatenated global rows (flat-store order:
        probe order outermost, then shard-major row order within one
        server)."""
        order = list(dict.fromkeys(servers))
        parts = self._fan("server_row_chunks", (order,))
        bases = self._bases()
        out = array("I")
        for server in order:
            for index, part in enumerate(parts):
                chunk = part.get(server)
                if chunk is not None:
                    _StoreReadMixin._extend_offset(out, chunk, bases[index])
        return out

    # -- record queries ----------------------------------------------------

    def _concat_lists(self, parts: Sequence[list]) -> list:
        out: list = []
        for part in parts:
            out.extend(part)
        return out

    def query_by_fqdn(self, fqdn: str) -> list[FlowRecord]:
        return self._concat_lists(self._fan("query_by_fqdn", (fqdn,)))

    def query_by_domain(self, sld: str) -> list[FlowRecord]:
        return self._concat_lists(self._fan("query_by_domain", (sld,)))

    def query_by_port(self, dst_port: int) -> list[FlowRecord]:
        return self._concat_lists(self._fan("query_by_port", (dst_port,)))

    def query_in_window(self, t0: float, t1: float) -> list[FlowRecord]:
        return self._concat_lists(self._fan("query_in_window", (t0, t1)))

    def query_by_servers(self, servers: Iterable[int]) -> list[FlowRecord]:
        order = list(dict.fromkeys(servers))
        parts = self._fan("server_record_chunks", (order,))
        out: list[FlowRecord] = []
        for server in order:
            for part in parts:
                chunk = part.get(server)
                if chunk is not None:
                    out.extend(chunk)
        return out

    # -- aggregate views ---------------------------------------------------

    def servers_for_fqdn(self, fqdn: str) -> set[int]:
        out: set[int] = set()
        for part in self._fan("servers_for_fqdn", (fqdn,)):
            out |= part
        return out

    def servers_for_domain(self, sld: str) -> set[int]:
        out: set[int] = set()
        for part in self._fan("servers_for_domain", (sld,)):
            out |= part
        return out

    def fqdns_for_servers(self, servers: Iterable[int]) -> set[str]:
        order = list(dict.fromkeys(servers))
        out: set[str] = set()
        for part in self._fan("fqdns_for_servers", (order,)):
            out |= part
        return out

    def fqdns_for_rows(self, rows) -> set[str]:
        out: set[str] = set()
        for part in self._fan_rows("fqdns_for_rows", rows):
            out |= part
        return out

    # -- grouped aggregations ----------------------------------------------

    def _merged_triples(self, op: str, rows) -> list[tuple]:
        """Sharded analogue of ``_StoreReadMixin._merged_pairs``:
        remap shard-local fqdn ids, then the same dict-sum merge."""
        parts = self._fan_rows(op, rows)
        merged: dict[tuple[int, int], int] = {}
        for index, part in enumerate(parts):
            fqdn_map = self._fqdn_maps[index]
            for fqdn_id, value, count in part:
                key = (fqdn_map[fqdn_id], value)
                merged[key] = merged.get(key, 0) + count
        return [
            (fqdn_id, value, count)
            for (fqdn_id, value), count in sorted(merged.items())
        ]

    def fqdn_server_counts(self, rows=None) -> list[tuple[int, int, int]]:
        return self._merged_triples("fqdn_server_counts", rows)

    def fqdn_client_counts(self, rows=None) -> list[tuple[int, int, int]]:
        return self._merged_triples("fqdn_client_counts", rows)

    def fqdn_flow_byte_totals(
        self, rows=None
    ) -> list[tuple[int, int, int, int]]:
        parts = self._fan_rows("fqdn_flow_byte_totals", rows)
        merged: dict[int, list[int]] = {}
        for index, part in enumerate(parts):
            fqdn_map = self._fqdn_maps[index]
            for fqdn_id, flows, up, down in part:
                global_id = fqdn_map[fqdn_id]
                bucket = merged.get(global_id)
                if bucket is None:
                    merged[global_id] = [flows, up, down]
                else:
                    bucket[0] += flows
                    bucket[1] += up
                    bucket[2] += down
        return [
            (fqdn_id, flows, up, down)
            for fqdn_id, (flows, up, down) in sorted(merged.items())
        ]

    def server_flow_counts(self, rows=None) -> dict[int, int]:
        merged: dict[int, int] = {}
        for part in self._fan_rows("server_flow_counts", rows):
            for server, count in part.items():
                merged[server] = merged.get(server, 0) + count
        return dict(sorted(merged.items()))

    def unique_servers_per_bin(
        self, sld: str, bin_seconds: float
    ) -> list[tuple[float, int]]:
        pairs: set[tuple[int, int]] = set()
        for part in self._fan("domain_bin_pairs", (sld, bin_seconds)):
            pairs.update(part)
        if not pairs:
            return []
        per_bin: dict[int, int] = {}
        for bin_index, _server in pairs:
            per_bin[bin_index] = per_bin.get(bin_index, 0) + 1
        lo, hi = min(per_bin), max(per_bin)
        return [
            (index * bin_seconds, per_bin.get(index, 0))
            for index in range(lo, hi + 1)
        ]

    def server_bins_for_fqdn(
        self, fqdn: str, bin_seconds: float
    ) -> list[tuple[int, int]]:
        pairs: set[tuple[int, int]] = set()
        for part in self._fan("server_bins_for_fqdn", (fqdn, bin_seconds)):
            pairs.update(part)
        return sorted(pairs)

    def fqdn_bin_pairs(
        self, bin_seconds: float, rows=None
    ) -> list[tuple[int, int]]:
        if rows is None:
            parts = self._fan("fqdn_bin_pairs", (bin_seconds, None))
        else:
            split = self._split_global_rows(rows)
            parts = self._fan("fqdn_bin_pairs", per_shard_args=[
                (bin_seconds, split[k]) for k in range(self.shards)
            ])
        pairs: set[tuple[int, int]] = set()
        for index, part in enumerate(parts):
            fqdn_map = self._fqdn_maps[index]
            pairs.update(
                (fqdn_map[fqdn_id], bin_index) for fqdn_id, bin_index in part
            )
        return sorted(pairs)

    def fqdn_first_seen(self, rows=None) -> dict[int, float]:
        parts = self._fan_rows("fqdn_first_seen", rows)
        merged: dict[int, float] = {}
        for index, part in enumerate(parts):
            fqdn_map = self._fqdn_maps[index]
            for fqdn_id, start in part.items():
                global_id = fqdn_map[fqdn_id]
                if global_id not in merged or start < merged[global_id]:
                    merged[global_id] = start
        return dict(sorted(merged.items()))

    def server_fqdn_bin_triples(
        self, bin_seconds: float, rows=None
    ) -> list[tuple[int, int, int]]:
        if rows is None:
            parts = self._fan("server_fqdn_bin_triples", (bin_seconds, None))
        else:
            split = self._split_global_rows(rows)
            parts = self._fan("server_fqdn_bin_triples", per_shard_args=[
                (bin_seconds, split[k]) for k in range(self.shards)
            ])
        triples: set[tuple[int, int, int]] = set()
        for index, part in enumerate(parts):
            fqdn_map = self._fqdn_maps[index]
            triples.update(
                (server, fqdn_map[fqdn_id], bin_index)
                for server, fqdn_id, bin_index in part
            )
        return sorted(triples)

    def sld_flow_stats(self, rows) -> list[tuple[int, int, int]]:
        parts = self._fan_rows("fqdn_flow_byte_totals", rows)
        per_fqdn: dict[int, int] = {}
        for index, part in enumerate(parts):
            fqdn_map = self._fqdn_maps[index]
            for fqdn_id, flows, _up, _down in part:
                global_id = fqdn_map[fqdn_id]
                per_fqdn[global_id] = per_fqdn.get(global_id, 0) + flows
        sld_map = self._interns._fqdn_sld
        flow_counts: dict[int, int] = {}
        fqdn_counts: dict[int, int] = {}
        for fqdn_id, flows in per_fqdn.items():
            sld_id = sld_map[fqdn_id]
            flow_counts[sld_id] = flow_counts.get(sld_id, 0) + flows
            fqdn_counts[sld_id] = fqdn_counts.get(sld_id, 0) + 1
        return [
            (sld_id, count, fqdn_counts[sld_id])
            for sld_id, count in sorted(flow_counts.items())
        ]

    # -- whole-store scans / summaries -------------------------------------

    def __len__(self) -> int:
        self._fan("ping")
        return sum(self._rows)

    def __iter__(self) -> Iterator[FlowRecord]:
        for part in self._fan("all_records"):
            yield from part

    @property
    def tagged_count(self) -> int:
        return sum(self._fan("tagged_count"))

    def count_by_protocol(self) -> dict[Protocol, int]:
        totals: dict[Protocol, int] = {}
        for part in self._fan("count_by_protocol"):
            for protocol, count in part.items():
                totals[protocol] = totals.get(protocol, 0) + count
        return {
            protocol: totals[protocol]
            for protocol in PROTOCOLS
            if totals.get(protocol)
        }

    def time_span(self) -> tuple[float, float]:
        parts = self._fan("time_span")
        lo = float("inf")
        hi = float("-inf")
        total = 0
        for index, span in enumerate(parts):
            n_rows = self._rows[index]
            total += n_rows
            if n_rows:
                if span[0] < lo:
                    lo = span[0]
                if span[1] > hi:
                    hi = span[1]
        if not total:
            return (0.0, 0.0)
        return (lo, hi)

    # -- health / stats / prune reporting ----------------------------------

    def _merge_wal(self, reports: Sequence[dict]) -> dict:
        """Key-wise sum of the numeric journal-recovery counters (bools
        OR together; non-numeric detail stays per-shard)."""
        wal: dict = {"enabled": self._store_kwargs["wal"],
                     "epoch": 0, "shards": self.shards}
        for report in reports:
            for key, value in report.items():
                if key == "enabled":
                    continue
                if key == "epoch":
                    wal["epoch"] = max(wal["epoch"], value)
                elif isinstance(value, bool):
                    wal[key] = bool(wal.get(key)) or value
                elif isinstance(value, (int, float)):
                    wal[key] = wal.get(key, 0) + value
        return wal

    def _refresh_gauges(self, *, tail_rows=None, segments=None,
                        quarantined=None, retired=None, generation=None,
                        wal_epoch=None, scan_stats=None, wal=None) -> None:
        if tail_rows is not None:
            self._tail.n = tail_rows
        if segments is not None:
            self._segments.n = segments
        if quarantined is not None:
            self._quarantined.n = quarantined
        if retired is not None:
            self._retired.n = retired
        if generation is not None:
            self._generation = generation
        if wal_epoch is not None:
            self._wal_epoch = wal_epoch
        if scan_stats is not None:
            self._scan_stats.clear()
            self._scan_stats.update(scan_stats)
        if wal is not None:
            self._wal_report.clear()
            self._wal_report.update(wal)

    def health(self) -> dict:
        """Aggregated self-diagnosis: degraded if *any* shard is."""
        parts = self._fan("health")
        quarantined = []
        for index, part in enumerate(parts):
            for entry in part["quarantined_segments"]:
                quarantined.append(dict(entry, shard=index))
        wal = self._merge_wal([part["wal"] for part in parts])
        degraded = any(part["status"] != "ok" for part in parts)
        self._refresh_gauges(
            quarantined=len(quarantined), wal_epoch=wal["epoch"], wal=wal,
        )
        return {
            "status": "degraded" if degraded else "ok",
            "sharded": True,
            "shards": self.shards,
            "strict": self._store_kwargs["strict"],
            "quarantined_segments": quarantined,
            "wal": wal,
            "tmp_files_swept": sum(p["tmp_files_swept"] for p in parts),
            "per_shard": [part["status"] for part in parts],
        }

    def stats(self) -> dict:
        """Aggregate inspection summary plus the full per-shard
        payloads (``repro-flowstore stats`` on a sharded root)."""
        parts = self._fan("stats")
        segments = []
        versions: dict[str, int] = {}
        for index, part in enumerate(parts):
            for entry in part["segments"]:
                segments.append(dict(entry, shard=index))
            for version, count in part["segment_versions"].items():
                versions[version] = versions.get(version, 0) + count
        scan_stats = {
            key: sum(part["scan_stats"].get(key, 0) for part in parts)
            for key in ("queries", "segments_scanned", "segments_pruned")
        }
        quarantined_entries = []
        for index, part in enumerate(parts):
            for entry in part["health"]["quarantined_segments"]:
                quarantined_entries.append(dict(entry, shard=index))
        quarantined = len(quarantined_entries)
        wal = self._merge_wal([part["health"]["wal"] for part in parts])
        degraded = any(part["health"]["status"] != "ok" for part in parts)
        sealed_rows = sum(part["sealed_rows"] for part in parts)
        tail_rows = sum(part["tail_rows"] for part in parts)
        generation = sum(part["generation"] for part in parts)
        wal_epoch = max(part["wal_epoch"] for part in parts)
        self._refresh_gauges(
            tail_rows=tail_rows, segments=len(segments),
            quarantined=quarantined,
            retired=sum(part["retired_pending"] for part in parts),
            generation=generation, wal_epoch=wal_epoch,
            scan_stats=scan_stats, wal=wal,
        )
        with self._lock:
            fqdns = len(self._interns._fqdn_names)
            slds = len(self._interns._sld_names)
        return {
            "directory": str(self.directory),
            "format": FORMAT_VERSION,
            "sharded": True,
            "shards": self.shards,
            "by": self.router.by,
            "backend": self.backend_kind,
            "segment_versions": versions,
            "parallel": self._store_kwargs["parallel"],
            "prune": self.prune,
            "health": {
                "status": "degraded" if degraded else "ok",
                "strict": self._store_kwargs["strict"],
                "quarantined_segments": quarantined_entries,
                "wal": wal,
                "tmp_files_swept": sum(
                    part["health"]["tmp_files_swept"] for part in parts
                ),
            },
            "segments": segments,
            "sealed_rows": sealed_rows,
            "tail_rows": tail_rows,
            "rows": sealed_rows + tail_rows,
            "fqdns": fqdns,
            "slds": slds,
            "bytes_on_disk": sum(part["bytes_on_disk"] for part in parts),
            "wal_epoch": wal_epoch,
            "generation": generation,
            "pinned_generations": [],
            "retired_pending": sum(
                part["retired_pending"] for part in parts
            ),
            "scan_stats": scan_stats,
            "per_shard": parts,
        }

    def prune_report(self, hint: QueryHint) -> dict:
        """Which sealed segments (across all shards) a query carrying
        ``hint`` would scan — decided from manifest bytes alone.

        Unlike every other coordinator read this never starts the
        backend: the v2 manifest's verified footer copy
        (:meth:`SegmentMeta.from_manifest`) feeds ``hint.admits``
        directly, so no segment file — not even a header — is opened.
        ``tail_rows`` is therefore ``None``: unsealed rows live in the
        journal, which the report never replays.
        """
        per_shard = []
        segments_flat = []
        scanned_rows = pruned_rows = 0
        for index in range(self.shards):
            entries = _manifest_entries(self.shard_directory(index))
            segments = []
            for name, n_rows, meta in entries:
                admitted = not self.prune or hint.admits(meta)
                segments.append({
                    "name": name, "rows": n_rows,
                    "scan": admitted, "shard": index,
                })
                if admitted:
                    scanned_rows += n_rows
                else:
                    pruned_rows += n_rows
            per_shard.append({
                "directory": str(self.shard_directory(index)),
                "shard": index,
                "segments": segments,
                "scanned_segments": sum(1 for s in segments if s["scan"]),
                "pruned_segments": sum(
                    1 for s in segments if not s["scan"]
                ),
            })
            segments_flat.extend(segments)
        return {
            "directory": str(self.directory),
            "sharded": True,
            "shards": self.shards,
            "prune": self.prune,
            "segments": segments_flat,
            "scanned_segments": sum(1 for s in segments_flat if s["scan"]),
            "pruned_segments": sum(
                1 for s in segments_flat if not s["scan"]
            ),
            "scanned_rows": scanned_rows,
            "pruned_rows": pruned_rows,
            "tail_rows": None,
            "per_shard": per_shard,
        }


def _manifest_entries(directory: Path) -> list[tuple[str, int, object]]:
    """``(name, rows, SegmentMeta|None)`` per sealed segment, straight
    from one shard's ``MANIFEST.json`` (no store, no segment I/O).

    A missing manifest is an empty (or never-started) shard.  v1
    manifests list bare names — no row counts, no metadata — so their
    segments report zero rows and never prune.
    """
    path = directory / MANIFEST_NAME
    try:
        raw = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return []
    except OSError as exc:
        raise StorageError(f"cannot read {path}: {exc}") from exc
    try:
        manifest = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise StorageError(f"malformed manifest {path}: {exc}") from exc
    if not isinstance(manifest, dict) or not isinstance(
        manifest.get("segments"), list
    ):
        raise StorageError(f"unsupported manifest {path}")
    entries: list[tuple[str, int, object]] = []
    for entry in manifest["segments"]:
        if isinstance(entry, str):
            entries.append((entry, 0, None))
            continue
        if not isinstance(entry, dict) or not isinstance(
            entry.get("name"), str
        ):
            raise StorageError(f"bad segment entry {entry!r} in {path}")
        rows = entry.get("rows", 0)
        entries.append((
            entry["name"],
            rows if isinstance(rows, int) else 0,
            SegmentMeta.from_manifest(entry.get("meta")),
        ))
    return entries
