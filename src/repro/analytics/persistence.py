"""Labeled-flow database persistence (the Fig. 1 "Flow Database").

The real-time sniffer streams tagged flows to disk; the off-line
analyzer loads them later.  JSON-lines keeps the format inspectable and
append-friendly; every field of :class:`FlowRecord` round-trips.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Iterator

from repro.analytics.database import FlowDatabase
from repro.net.flow import FiveTuple, FlowRecord, Protocol, TransportProto

FORMAT_VERSION = 1


def flow_to_dict(flow: FlowRecord) -> dict:
    """One flow as a plain JSON-serializable dict."""
    return {
        "v": FORMAT_VERSION,
        "client": flow.fid.client_ip,
        "server": flow.fid.server_ip,
        "sport": flow.fid.src_port,
        "dport": flow.fid.dst_port,
        "proto": int(flow.fid.proto),
        "start": flow.start,
        "end": flow.end,
        "l7": flow.protocol.value,
        "up": flow.bytes_up,
        "down": flow.bytes_down,
        "pkts": flow.packets,
        "fqdn": flow.fqdn,
        "cert": flow.cert_name,
        "truth": flow.true_fqdn,
    }


def flow_from_dict(data: dict) -> FlowRecord:
    """Inverse of :func:`flow_to_dict`; validates the version marker."""
    version = data.get("v")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported flow record version {version!r}")
    return FlowRecord(
        fid=FiveTuple(
            client_ip=data["client"],
            server_ip=data["server"],
            src_port=data["sport"],
            dst_port=data["dport"],
            proto=TransportProto(data["proto"]),
        ),
        start=data["start"],
        end=data["end"],
        protocol=Protocol(data["l7"]),
        bytes_up=data["up"],
        bytes_down=data["down"],
        packets=data["pkts"],
        fqdn=data["fqdn"],
        cert_name=data["cert"],
        true_fqdn=data["truth"],
    )


def dump_flows(flows: Iterable[FlowRecord], fileobj: IO[str]) -> int:
    """Write flows as JSON lines; returns the count written."""
    count = 0
    for flow in flows:
        fileobj.write(json.dumps(flow_to_dict(flow), separators=(",", ":")))
        fileobj.write("\n")
        count += 1
    return count


def load_flows(fileobj: IO[str]) -> Iterator[FlowRecord]:
    """Stream flows back from a JSON-lines file."""
    for line_number, line in enumerate(fileobj, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"malformed flow record on line {line_number}"
            ) from exc
        yield flow_from_dict(data)


def save_database(database: FlowDatabase, path: str) -> int:
    """Persist a whole database to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        return dump_flows(database, handle)


def load_database(path: str) -> FlowDatabase:
    """Load a database previously saved with :func:`save_database`."""
    with open(path, "r", encoding="utf-8") as handle:
        return FlowDatabase.from_flows(load_flows(handle))
