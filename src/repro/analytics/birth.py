"""Birth processes of unique entities (Fig. 6).

Fig. 6 tracks, over an 18-day live deployment, the cumulative number of
unique FQDNs, second-level domains and serverIPs ever observed.  The
paper's finding: serverIPs and 2LDs saturate within days while FQDNs keep
growing (~100k new per day) — content grows, infrastructure doesn't.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.dns.name import second_level_domain
from repro.net.flow import FlowRecord


@dataclass
class BirthProcess:
    """Cumulative-unique counter sampled on fixed time bins."""

    bin_seconds: float = 3600.0
    _seen: set = field(default_factory=set)
    _series: list[tuple[float, int]] = field(default_factory=list)
    _current_bin: int | None = None

    def observe(self, timestamp: float, key) -> None:
        """Feed one observation; bins must arrive in time order."""
        bin_index = int(timestamp // self.bin_seconds)
        if self._current_bin is None:
            self._current_bin = bin_index
        while bin_index > self._current_bin:
            self._series.append(
                (self._current_bin * self.bin_seconds, len(self._seen))
            )
            self._current_bin += 1
        self._seen.add(key)

    def series(self) -> list[tuple[float, int]]:
        """(bin start, cumulative unique count), closing the open bin."""
        out = list(self._series)
        if self._current_bin is not None:
            out.append((self._current_bin * self.bin_seconds, len(self._seen)))
        return out

    @property
    def total(self) -> int:
        return len(self._seen)

    def growth_rate(self, window_bins: int = 24) -> float:
        """New uniques per bin over the trailing ``window_bins`` bins.

        Measures whether the process has saturated: near zero for
        serverIPs/2LDs, large for FQDNs in the paper's deployment.
        """
        series = self.series()
        if len(series) < 2:
            return 0.0
        window = series[-window_bins - 1:]
        span = len(window) - 1
        return (window[-1][1] - window[0][1]) / span if span else 0.0


@dataclass
class EntityBirthTracker:
    """The three Fig. 6 birth processes driven from tagged flows."""

    bin_seconds: float = 3600.0

    def __post_init__(self) -> None:
        self.fqdns = BirthProcess(bin_seconds=self.bin_seconds)
        self.slds = BirthProcess(bin_seconds=self.bin_seconds)
        self.servers = BirthProcess(bin_seconds=self.bin_seconds)

    def observe_flow(self, flow: FlowRecord) -> None:
        """Feed one tagged flow (untagged flows only count the server)."""
        self.servers.observe(flow.start, flow.fid.server_ip)
        if flow.fqdn:
            fqdn = flow.fqdn.lower()
            self.fqdns.observe(flow.start, fqdn)
            self.slds.observe(flow.start, second_level_domain(fqdn))

    def observe_all(self, flows: Iterable[FlowRecord]) -> None:
        for flow in flows:
            self.observe_flow(flow)

    def summary(self) -> dict[str, int]:
        """Total unique counts for the three entity kinds."""
        return {
            "fqdn": self.fqdns.total,
            "sld": self.slds.total,
            "server_ip": self.servers.total,
        }
