"""On-disk segmented columnar storage for the Flow Database.

The columnar engine of :mod:`repro.analytics.database` is memory-only:
a restart loses the dataset, and the multi-day vantage-point captures
the paper analyses (Tab. 2 traces span up to 3 days) do not fit one
process forever.  This module adds the durable layer underneath it —
an **append-only directory of segment files** plus a merge-on-read
query engine:

* :func:`write_segment` / :class:`SegmentWriter` — seal one in-memory
  :class:`~repro.analytics.database.FlowDatabase` (its ``FlowColumns``
  plus the per-row label/cert/true-fqdn strings, interned into string
  tables) into a single versioned, CRC-checked segment file;
* :class:`SegmentReader` — validate and lazily materialize one segment
  back into an in-memory columnar database (columns are rebuilt with
  ``frombytes``, ids re-interned, indexes regrouped — no per-row
  object churn on the numpy path);
* :class:`FlowStore` — the durable store: an ordered list of sealed
  segments plus a live in-memory *tail*.  ``add()`` / ``ingest_batch``
  land in the tail; when the tail crosses the configured row/byte
  budget it is spilled to a new segment.  Every method of the
  ``FlowDatabase`` query surface is served by running the query
  **per segment** and merging (grouped aggregations merge-sum by
  globally interned id; record queries concatenate in row order, so
  results are identical to one big in-memory store), and
  :meth:`FlowStore.compact` rewrites runs of small segments into one,
  re-interning string-table ids.

``FlowDatabase(spill_dir=..., spill_rows=...)`` constructs a
:class:`FlowStore` directly, so callers opt into durability with two
keyword arguments and keep the exact same query surface.

Segment file format (version 1, all integers little-endian)::

    header     <4sHHIIIIIQ   magic b"FSG1", version, flags,
                             n_rows, n_labels, n_certs, n_trues,
                             crc32(payload), payload_len
    directory  17 x u64      byte length of each payload block
    payload    17 blocks, in order:
      0-10   numeric columns  client_ip u32, server_ip u32,
                              src_port u16, dst_port u16, transport u8,
                              start f64, end f64, protocol u8,
                              bytes_up u64, bytes_down u64, packets u32
      11-13  id columns i32   label_id, cert_id, true_id
                              (-1 encodes None)
      14-16  string tables    distinct label / cert_name / true_fqdn
                              strings in first-appearance order, each
                              entry u32 length + UTF-8 bytes

A torn write can never corrupt the store: segments are written to a
temp file, fsynced and atomically renamed, and only then recorded in
``MANIFEST.json`` (itself replaced atomically).  A segment file not in
the manifest is an uncommitted orphan and is ignored on open; a
truncated or bit-flipped segment fails the size/CRC validation in
:meth:`SegmentReader.open` and the open raises :class:`StorageError`
without leaving partial state behind.

Like the in-memory engine, everything here uses numpy when importable
and falls back to pure-Python loops over the same blocks otherwise —
the gate is read dynamically from :mod:`repro.analytics.database` so
the two layers always agree on which path is active.
"""

from __future__ import annotations

import json
import os
import re
import struct
import sys
import zlib
from array import array
from bisect import bisect_right
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

from repro.analytics import database as _dbmod
from repro.analytics.database import FlowDatabase, _TRANSPORTS
from repro.net.flow import FlowRecord, Protocol
from repro.sniffer.eventcodec import PROTOCOLS

MAGIC = b"FSG1"
FORMAT_VERSION = 1
MANIFEST_NAME = "MANIFEST.json"
SEGMENT_SUFFIX = ".fseg"

#: Default spill threshold: ~256k rows per segment (~13 MB of columns).
DEFAULT_SPILL_ROWS = 1 << 18

_HEADER = struct.Struct("<4sHHIIIIIQ")
_BLOCK_LEN = struct.Struct("<Q")
_STR_LEN = struct.Struct("<I")

#: The eleven fixed-width value columns, in block order (matches the
#: ``FlowColumns`` attribute of the same name).  Append only —
#: reordering breaks previously-written segments.
_NUMERIC_COLUMNS = (
    ("client_ip", "I"), ("server_ip", "I"),
    ("src_port", "H"), ("dst_port", "H"),
    ("transport", "B"), ("start", "d"), ("end", "d"),
    ("protocol", "B"),
    ("bytes_up", "Q"), ("bytes_down", "Q"), ("packets", "I"),
)
_N_NUMERIC = len(_NUMERIC_COLUMNS)
_N_ID = 3          # label_id, cert_id, true_id
_N_TABLES = 3      # labels, certs, trues
_N_BLOCKS = _N_NUMERIC + _N_ID + _N_TABLES

#: Fixed column bytes per in-memory row (the 11 value columns plus the
#: fqdn_id column) — the per-row term of :meth:`FlowStore.tail_bytes`.
_ROW_BYTES = sum(
    array(code).itemsize for _name, code in _NUMERIC_COLUMNS
) + array("i").itemsize

_SEGMENT_RE = re.compile(r"^seg-(\d{8})\.fseg$")


class StorageError(ValueError):
    """A segment file or store directory is malformed or corrupted."""


def _le(arr: array) -> bytes:
    """Little-endian bytes of an array (byteswap on BE hosts)."""
    if sys.byteorder != "little":  # pragma: no cover - x86/arm are LE
        arr = arr[:]
        arr.byteswap()
    return arr.tobytes()


def _from_le(typecode: str, raw) -> array:
    """Array from little-endian bytes (byteswap on BE hosts)."""
    arr = array(typecode)
    arr.frombytes(raw)
    if sys.byteorder != "little":  # pragma: no cover - x86/arm are LE
        arr.byteswap()
    return arr


def _le_np(values, dtype) -> bytes:
    """Little-endian bytes of a numpy array (the ``array.frombytes``
    feed used by every numpy-path column/index builder here)."""
    np = _dbmod._np
    if sys.byteorder != "little":  # pragma: no cover - x86/arm are LE
        return values.astype(_np_le_dtype(dtype)).tobytes()
    return np.ascontiguousarray(values, dtype).tobytes()


def _np_le_dtype(dtype) -> str:  # pragma: no cover - BE hosts only
    return _dbmod._np.dtype(dtype).newbyteorder("<").str


def _encode_table(table: Sequence[bytes]) -> bytes:
    """String-table blob: u32 length prefix + UTF-8 bytes per entry."""
    blob = bytearray()
    for raw in table:
        blob += _STR_LEN.pack(len(raw))
        blob += raw
    return bytes(blob)


def _intern_rows(values: Sequence[Optional[str]]) -> tuple[array, bytes, int]:
    """Intern one per-row optional-string column for the file format.

    Returns ``(ids, table_blob, n_entries)`` — an ``i32`` id per row
    (``-1`` for None) into a table of distinct strings in
    first-appearance order, encoded as u32-length-prefixed UTF-8.
    """
    ids = array("i")
    index: dict[str, int] = {}
    table: list[bytes] = []
    append = ids.append
    for value in values:
        if value is None:
            append(-1)
            continue
        entry = index.get(value)
        if entry is None:
            entry = index[value] = len(table)
            table.append(value.encode("utf-8"))
        append(entry)
    return ids, _encode_table(table), len(table)


def _parse_table(raw, count: int, what: str) -> tuple[str, ...]:
    """Decode one string-table block back into a tuple of strings."""
    out: list[str] = []
    pos = 0
    total = len(raw)
    for _ in range(count):
        if pos + _STR_LEN.size > total:
            raise StorageError(f"truncated {what} table")
        (length,) = _STR_LEN.unpack_from(raw, pos)
        pos += _STR_LEN.size
        if pos + length > total:
            raise StorageError(f"truncated {what} table entry")
        try:
            out.append(bytes(raw[pos:pos + length]).decode("utf-8"))
        except UnicodeDecodeError as exc:
            raise StorageError(f"bad UTF-8 in {what} table: {exc}") from exc
        pos += length
    if pos != total:
        raise StorageError(f"{what} table has trailing bytes")
    return tuple(out)


def _fsync_directory(directory: Path) -> None:
    """Best-effort directory fsync so renames survive a crash."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def _write_segment_file(
    path: Path,
    n_rows: int,
    blocks: list[bytes],
    n_labels: int,
    n_certs: int,
    n_trues: int,
) -> None:
    """Serialize pre-built payload blocks atomically to ``path``."""
    assert len(blocks) == _N_BLOCKS
    payload_len = sum(len(block) for block in blocks)
    crc = 0
    for block in blocks:
        crc = zlib.crc32(block, crc)
    header = _HEADER.pack(
        MAGIC, FORMAT_VERSION, 0, n_rows,
        n_labels, n_certs, n_trues, crc, payload_len,
    )
    directory = b"".join(_BLOCK_LEN.pack(len(block)) for block in blocks)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(header)
        handle.write(directory)
        for block in blocks:
            handle.write(block)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_directory(path.parent)


def write_segment(path, database: FlowDatabase) -> int:
    """Seal an in-memory columnar database into one segment file.

    Returns the number of rows written.  The write is atomic: the
    segment appears under its final name only after a successful
    ``fsync`` + rename, so a crash mid-write leaves at most a
    ``*.tmp`` file that readers never look at.
    """
    path = Path(path)
    cols = database.columns
    n_rows = len(cols)
    blocks: list[bytes] = [
        _le(getattr(cols, name)) for name, _code in _NUMERIC_COLUMNS
    ]
    label_ids, label_blob, n_labels = _intern_rows(database._raw_fqdns)
    cert_ids, cert_blob, n_certs = _intern_rows(database._cert_names)
    true_ids, true_blob, n_trues = _intern_rows(database._true_fqdns)
    blocks += [_le(label_ids), _le(cert_ids), _le(true_ids)]
    blocks += [label_blob, cert_blob, true_blob]
    _write_segment_file(path, n_rows, blocks, n_labels, n_certs, n_trues)
    return n_rows


class SegmentWriter:
    """Names and writes sequence-numbered segment files in a directory.

    The writer only produces files; committing them to the store's
    manifest is the :class:`FlowStore`'s job (that ordering is what
    makes a torn spill invisible to readers).
    """

    def __init__(self, directory):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def next_name(self) -> str:
        """Next free sequence-numbered segment file name.

        Scans the directory (not the manifest) so an uncommitted orphan
        from a crashed spill is never silently overwritten with
        unrelated rows — it just burns one sequence number.
        """
        highest = 0
        for entry in self.directory.iterdir():
            match = _SEGMENT_RE.match(entry.name)
            if match:
                highest = max(highest, int(match.group(1)))
        return f"seg-{highest + 1:08d}{SEGMENT_SUFFIX}"

    def write(self, database: FlowDatabase) -> str:
        """Seal ``database`` into the next segment file; returns its name."""
        name = self.next_name()
        write_segment(self.directory / name, database)
        return name


class SegmentReader:
    """One validated on-disk segment, lazily materializable.

    :meth:`open` reads and fully validates the file (header sanity,
    per-block sizes against ``n_rows``, whole-payload CRC32, string
    tables) and keeps only the small parts resident — the tables and
    the block offsets.  :meth:`database` re-reads the column blocks and
    rebuilds an in-memory :class:`FlowDatabase` on first use, cached
    until :meth:`release`.

    A cold open+query therefore reads each segment twice (validate,
    then materialize).  That is deliberate: holding the open-time bytes
    until a query *might* need them would pin the whole store in memory
    at open — the opposite of what spilling exists for — and the second
    read is a page-cache hit right after the first.
    """

    __slots__ = (
        "path", "n_rows", "n_labels", "n_certs", "n_trues",
        "labels", "certs", "trues", "crc", "file_size",
        "_lengths", "_offsets", "_database", "_summary", "fqdn_map",
    )

    def __init__(self):
        self._database = None
        self._summary = None
        self.fqdn_map: Optional[array] = None

    @property
    def name(self) -> str:
        return self.path.name

    @classmethod
    def open(cls, path) -> "SegmentReader":
        """Validate the segment at ``path``; raises :class:`StorageError`
        on any truncation, corruption or version mismatch."""
        path = Path(path)
        try:
            data = path.read_bytes()
        except OSError as exc:
            raise StorageError(f"cannot read segment {path}: {exc}") from exc
        if len(data) < _HEADER.size + _N_BLOCKS * _BLOCK_LEN.size:
            raise StorageError(f"segment {path.name}: truncated header")
        (magic, version, _flags, n_rows, n_labels, n_certs, n_trues,
         crc, payload_len) = _HEADER.unpack_from(data, 0)
        if magic != MAGIC:
            raise StorageError(f"segment {path.name}: bad magic {magic!r}")
        if version != FORMAT_VERSION:
            raise StorageError(
                f"segment {path.name}: unsupported version {version}"
            )
        lengths = []
        pos = _HEADER.size
        for _ in range(_N_BLOCKS):
            (length,) = _BLOCK_LEN.unpack_from(data, pos)
            lengths.append(length)
            pos += _BLOCK_LEN.size
        body = pos
        if sum(lengths) != payload_len or body + payload_len != len(data):
            raise StorageError(
                f"segment {path.name}: size mismatch (truncated or "
                f"trailing bytes)"
            )
        for index, (name, code) in enumerate(_NUMERIC_COLUMNS):
            expected = n_rows * array(code).itemsize
            if lengths[index] != expected:
                raise StorageError(
                    f"segment {path.name}: column {name} is "
                    f"{lengths[index]} bytes, expected {expected}"
                )
        for offset in range(_N_ID):
            if lengths[_N_NUMERIC + offset] != n_rows * 4:
                raise StorageError(
                    f"segment {path.name}: id column {offset} has wrong size"
                )
        if zlib.crc32(memoryview(data)[body:]) != crc:
            raise StorageError(f"segment {path.name}: payload CRC mismatch")
        offsets = []
        cursor = body
        for length in lengths:
            offsets.append(cursor)
            cursor += length
        view = memoryview(data)
        table_base = _N_NUMERIC + _N_ID
        tables = []
        for index, (count, what) in enumerate(
            ((n_labels, "label"), (n_certs, "cert"), (n_trues, "true-fqdn"))
        ):
            block = table_base + index
            start = offsets[block]
            tables.append(_parse_table(
                view[start:start + lengths[block]], count, what
            ))
        reader = cls()
        reader.path = path
        reader.n_rows = n_rows
        reader.n_labels = n_labels
        reader.n_certs = n_certs
        reader.n_trues = n_trues
        reader.labels, reader.certs, reader.trues = tables
        reader.crc = crc
        reader.file_size = len(data)
        reader._lengths = lengths
        reader._offsets = offsets
        return reader

    # -- block access ------------------------------------------------------

    def read_blocks(self) -> list[bytes]:
        """Re-read all payload blocks (compaction's raw input)."""
        data = self._read_validated()
        return [
            data[offset:offset + length]
            for offset, length in zip(self._offsets, self._lengths)
        ]

    def _read_validated(self) -> bytes:
        try:
            data = Path(self.path).read_bytes()
        except OSError as exc:
            raise StorageError(
                f"cannot read segment {self.path}: {exc}"
            ) from exc
        if len(data) != self.file_size or zlib.crc32(
            memoryview(data)[_HEADER.size + _N_BLOCKS * _BLOCK_LEN.size:]
        ) != self.crc:
            raise StorageError(
                f"segment {self.name} changed on disk since open"
            )
        return data

    def _read_block(self, index: int) -> bytes:
        """One payload block by seek+read (sizes/CRC validated at open)."""
        with open(self.path, "rb") as handle:
            handle.seek(self._offsets[index])
            data = handle.read(self._lengths[index])
        if len(data) != self._lengths[index]:
            raise StorageError(f"segment {self.name} truncated since open")
        return data

    def summary(self) -> dict:
        """Cheap per-segment statistics — ``min_start``/``max_end``,
        the protocol histogram and the tagged-row count — from the four
        relevant column blocks only.  Nothing is materialized or
        cached beyond the small result, so whole-store stats
        (``time_span``, ``count_by_protocol``, ``tagged_count``) never
        force a multi-GB store resident.  Served straight from the
        in-memory form when the segment happens to be resident."""
        if self._database is not None:
            db = self._database
            return {
                "min_start": db._min_start,
                "max_end": db._max_end,
                "protocol_counts": list(db._protocol_counts),
                "tagged_rows": len(db._tagged),
            }
        if self._summary is None:
            self._summary = self._compute_summary()
        return self._summary

    def _compute_summary(self) -> dict:
        n = self.n_rows
        if not n:
            return {
                "min_start": float("inf"), "max_end": float("-inf"),
                "protocol_counts": [0] * len(PROTOCOLS), "tagged_rows": 0,
            }
        starts = _from_le("d", self._read_block(5))     # start column
        ends = _from_le("d", self._read_block(6))       # end column
        protocols = self._read_block(7)                 # protocol column
        label_ids = _from_le("i", self._read_block(_N_NUMERIC))
        # A row is tagged iff its label is truthy — id -1 (None) and
        # entries holding "" both count as untagged, exactly as the
        # materialized database derives fqdn_id.
        untagged_entries = [
            index for index, text in enumerate(self.labels) if not text
        ]
        np = _dbmod._np
        if np is not None:
            counts = np.bincount(
                np.frombuffer(protocols, np.uint8),
                minlength=len(PROTOCOLS),
            ).tolist()
            if len(counts) > len(PROTOCOLS):
                raise StorageError("protocol index out of range")
            ids = np.frombuffer(label_ids, np.int32)
            tagged = int((ids >= 0).sum())
            if untagged_entries:
                tagged -= int(np.isin(ids, untagged_entries).sum())
            min_start = float(np.frombuffer(starts, np.float64).min())
            max_end = float(np.frombuffer(ends, np.float64).max())
        else:
            counts = [0] * len(PROTOCOLS)
            for value in protocols:
                if value >= len(PROTOCOLS):
                    raise StorageError("protocol index out of range")
                counts[value] += 1
            skip = set(untagged_entries)
            tagged = sum(
                1 for value in label_ids
                if value >= 0 and value not in skip
            )
            min_start = min(starts)
            max_end = max(ends)
        return {
            "min_start": min_start, "max_end": max_end,
            "protocol_counts": counts, "tagged_rows": tagged,
        }

    # -- materialization ---------------------------------------------------

    def database(self) -> FlowDatabase:
        """The segment as an in-memory columnar database (cached)."""
        if self._database is None:
            self._database = self._build_database()
        return self._database

    def release(self) -> None:
        """Drop the cached in-memory form; rebuilt on next query."""
        self._database = None

    @property
    def resident(self) -> bool:
        return self._database is not None

    def _build_database(self) -> FlowDatabase:
        data = self._read_validated()
        offsets, lengths = self._offsets, self._lengths

        def block(index: int):
            return memoryview(data)[
                offsets[index]:offsets[index] + lengths[index]
            ]

        db = FlowDatabase()
        cols = db.columns
        for index, (name, code) in enumerate(_NUMERIC_COLUMNS):
            getattr(cols, name)[:] = _from_le(code, block(index))
        n = self.n_rows
        label_ids = _from_le("i", block(_N_NUMERIC))
        cert_ids = _from_le("i", block(_N_NUMERIC + 1))
        true_ids = _from_le("i", block(_N_NUMERIC + 2))
        self._validate_ids(label_ids, self.n_labels, "label")
        self._validate_ids(cert_ids, self.n_certs, "cert")
        self._validate_ids(true_ids, self.n_trues, "true-fqdn")
        self._validate_enums(cols)
        # Local interning: table order reproduces first-appearance
        # order of each distinct lowered label over the segment's rows,
        # so the rebuilt id tables match what the live store held.
        local_of_label = array("i")
        for text in self.labels:
            local_of_label.append(
                db._intern_fqdn(text.lower()) if text else -1
            )
        np = _dbmod._np
        if np is not None and n:
            ids = np.frombuffer(label_ids, np.int32)
            if self.n_labels:
                lut = np.frombuffer(local_of_label, np.int32)
                fqdn_ids = np.where(
                    ids >= 0, lut[np.maximum(ids, 0)], np.int32(-1)
                ).astype(np.int32)
            else:
                fqdn_ids = np.full(n, -1, np.int32)
            cols.fqdn_id.frombytes(_le_np(fqdn_ids, np.int32))
        else:
            append = cols.fqdn_id.append
            for entry in label_ids:
                append(local_of_label[entry] if entry >= 0 else -1)
        labels, certs, trues = self.labels, self.certs, self.trues
        db._raw_fqdns = [
            labels[entry] if entry >= 0 else None for entry in label_ids
        ]
        db._cert_names = [
            certs[entry] if entry >= 0 else None for entry in cert_ids
        ]
        db._true_fqdns = [
            trues[entry] if entry >= 0 else None for entry in true_ids
        ]
        db._records = [None] * n
        self._rebuild_stats_and_indexes(db)
        return db

    @staticmethod
    def _validate_ids(ids: array, count: int, what: str) -> None:
        np = _dbmod._np
        if not len(ids):
            return
        if np is not None:
            column = np.frombuffer(ids, np.int32)
            lo, hi = int(column.min()), int(column.max())
        else:
            lo, hi = min(ids), max(ids)
        if lo < -1 or hi >= count:
            raise StorageError(f"{what} id out of table range")

    def _validate_enums(self, cols) -> None:
        """Protocol/transport bytes must be materializable values."""
        n = len(cols.start)
        if not n:
            return
        np = _dbmod._np
        if np is not None:
            protocols = np.frombuffer(cols.protocol, np.uint8)
            if int(protocols.max()) >= len(PROTOCOLS):
                raise StorageError("protocol index out of range")
            transports = np.frombuffer(cols.transport, np.uint8)
            if not np.isin(transports, list(_TRANSPORTS)).all():
                raise StorageError("invalid transport protocol number")
            return
        n_protocols = len(PROTOCOLS)
        for value in cols.protocol:
            if value >= n_protocols:
                raise StorageError("protocol index out of range")
        for value in cols.transport:
            if value not in _TRANSPORTS:
                raise StorageError("invalid transport protocol number")

    def _rebuild_stats_and_indexes(self, db: FlowDatabase) -> None:
        cols = db.columns
        n = len(cols)
        if not n:
            return
        np = _dbmod._np
        if np is not None:
            protocols = np.frombuffer(cols.protocol, np.uint8)
            counts = np.bincount(protocols, minlength=len(PROTOCOLS))
            for index, count in enumerate(counts.tolist()):
                db._protocol_counts[index] += count
            starts = np.frombuffer(cols.start, np.float64)
            ends = np.frombuffer(cols.end, np.float64)
            db._min_start = float(starts.min())
            db._max_end = float(ends.max())
            rows = np.arange(n, dtype=np.uint32)
            servers = np.frombuffer(cols.server_ip, np.uint32)
            ports = np.frombuffer(cols.dst_port, np.uint16)
            db._extend_index(db._by_server, servers, rows)
            db._extend_index(db._by_port, ports.astype(np.uint32), rows)
            ids = np.frombuffer(cols.fqdn_id, np.int32)
            mask = ids >= 0
            if mask.any():
                tagged_rows = rows[mask]
                tagged_ids = ids[mask]
                db._tagged.frombytes(_le_np(tagged_rows, np.uint32))
                db._extend_index(db._by_fqdn, tagged_ids, tagged_rows)
                sld_map = np.frombuffer(db._fqdn_sld, np.int32)
                db._extend_index(
                    db._by_sld, sld_map[tagged_ids], tagged_rows
                )
            return
        by_server, by_port = db._by_server, db._by_port
        by_fqdn, by_sld = db._by_fqdn, db._by_sld
        fqdn_sld = db._fqdn_sld
        tagged = db._tagged
        protocol_counts = db._protocol_counts
        min_start, max_end = db._min_start, db._max_end
        server_col, port_col = cols.server_ip, cols.dst_port
        start_col, end_col = cols.start, cols.end
        fqdn_col, proto_col = cols.fqdn_id, cols.protocol
        for row in range(n):
            protocol_counts[proto_col[row]] += 1
            start = start_col[row]
            end = end_col[row]
            if start < min_start:
                min_start = start
            if end > max_end:
                max_end = end
            index = by_server.get(server_col[row])
            if index is None:
                index = by_server[server_col[row]] = array("I")
            index.append(row)
            index = by_port.get(port_col[row])
            if index is None:
                index = by_port[port_col[row]] = array("I")
            index.append(row)
            fqdn_id = fqdn_col[row]
            if fqdn_id >= 0:
                by_fqdn[fqdn_id].append(row)
                by_sld[fqdn_sld[fqdn_id]].append(row)
                tagged.append(row)
        db._min_start, db._max_end = min_start, max_end


def _map_local_fqdns(interns: FlowDatabase, labels: Sequence[str]) -> array:
    """Local→global fqdn-id map for a segment's label table.

    Replays the table through the global intern tables exactly as
    :meth:`SegmentReader._build_database` replays it through the local
    ones, so index ``k`` of the result is the global id of the
    segment's local fqdn id ``k``.
    """
    fqdn_map = array("i")
    seen: set[str] = set()
    for text in labels:
        if not text:
            continue
        lowered = text.lower()
        if lowered not in seen:
            seen.add(lowered)
            fqdn_map.append(interns._intern_fqdn(lowered))
    return fqdn_map


def _merge_segment_files(
    readers: Sequence[SegmentReader], path: Path
) -> None:
    """Rewrite several adjacent segments as one (compaction's kernel).

    Numeric blocks concatenate verbatim; string tables merge with
    first-appearance dedupe and the id columns are rewritten through
    the resulting lookup tables.  Row order — and therefore every
    query result — is preserved.  Blocks are assembled in memory, so
    one compaction holds roughly the merged file size transiently.
    """
    all_blocks = [reader.read_blocks() for reader in readers]
    merged: list[bytes] = [
        b"".join(blocks[index] for blocks in all_blocks)
        for index in range(_N_NUMERIC)
    ]
    np = _dbmod._np
    table_counts = []
    for offset, attr in enumerate(("labels", "certs", "trues")):
        index: dict[str, int] = {}
        table: list[bytes] = []
        id_parts: list[bytes] = []
        for reader, blocks in zip(readers, all_blocks):
            lut = array("i")
            for text in getattr(reader, attr):
                entry = index.get(text)
                if entry is None:
                    entry = index[text] = len(table)
                    table.append(text.encode("utf-8"))
                lut.append(entry)
            ids = _from_le("i", blocks[_N_NUMERIC + offset])
            if np is not None and len(ids):
                values = np.frombuffer(ids, np.int32)
                if len(lut):
                    lut_np = np.frombuffer(lut, np.int32)
                    remapped = np.where(
                        values >= 0,
                        lut_np[np.maximum(values, 0)],
                        np.int32(-1),
                    ).astype(np.int32)
                else:
                    remapped = np.full(len(ids), -1, np.int32)
                out = array("i")
                out.frombytes(_le_np(remapped, np.int32))
            else:
                out = array("i", (
                    lut[value] if value >= 0 else -1 for value in ids
                ))
            id_parts.append(_le(out))
        merged.append(b"".join(id_parts))
        table_counts.append((len(table), _encode_table(table)))
    merged += [blob for _count, blob in table_counts]
    _write_segment_file(
        path,
        sum(reader.n_rows for reader in readers),
        merged,
        table_counts[0][0], table_counts[1][0], table_counts[2][0],
    )


class FlowStore:
    """Durable Flow Database: sealed segments plus a live in-memory tail.

    ``FlowStore(directory)`` opens (or creates) a store.  Ingestion
    (:meth:`add`, :meth:`add_all`, :meth:`ingest_batch`) lands in an
    in-memory :class:`FlowDatabase` tail and spills to a new segment
    whenever the tail reaches ``spill_rows`` rows (or, if given,
    ``spill_bytes`` of column/label data).  :meth:`flush` seals the
    tail explicitly; :meth:`compact` merges segment runs.

    Every read method of the in-memory ``FlowDatabase`` is available
    and answers over *all* rows — sealed and live alike: string-keyed
    queries run per segment and concatenate in row order; id-keyed
    grouped aggregations run per segment on local ids, remap through
    per-segment id maps onto one global intern table (built from the
    segment string tables in segment order, which reproduces global
    first-appearance order) and merge.  The analytics layer therefore
    runs unchanged on a store that never held the dataset in one piece.
    """

    def __init__(
        self,
        directory,
        spill_rows: Optional[int] = None,
        spill_bytes: Optional[int] = None,
        cache_segments: bool = True,
    ):
        if spill_rows is None:
            spill_rows = DEFAULT_SPILL_ROWS
        if spill_rows <= 0:
            raise ValueError("spill_rows must be positive")
        if spill_bytes is not None and spill_bytes <= 0:
            raise ValueError("spill_bytes must be positive")
        self.directory = Path(directory)
        self.spill_rows = spill_rows
        self.spill_bytes = spill_bytes
        #: True (default) keeps materialized segments cached for the
        #: next query — right when the dataset fits and queries repeat
        #: (the experiments sweep).  False streams every whole-store
        #: pass load→merge→release, holding one segment at a time —
        #: right for larger-than-memory stores.
        self.cache_segments = cache_segments
        self._writer = SegmentWriter(self.directory)
        self._interns = FlowDatabase()   # global id tables only (0 rows)
        self._segments: list[SegmentReader] = []
        self._tail = FlowDatabase()
        self._tail_map = array("i")      # tail-local fqdn id -> global
        self._tail_label_bytes = 0       # incremental tail_bytes() state
        self._tail_label_count = 0
        for name in self._read_manifest():
            reader = SegmentReader.open(self.directory / name)
            reader.fqdn_map = _map_local_fqdns(self._interns, reader.labels)
            self._segments.append(reader)

    # -- manifest ----------------------------------------------------------

    def _read_manifest(self) -> list[str]:
        path = self.directory / MANIFEST_NAME
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return []
        except OSError as exc:
            raise StorageError(f"cannot read {path}: {exc}") from exc
        try:
            manifest = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise StorageError(f"malformed manifest {path}: {exc}") from exc
        if (
            not isinstance(manifest, dict)
            or manifest.get("format") != FORMAT_VERSION
            or not isinstance(manifest.get("segments"), list)
        ):
            raise StorageError(f"unsupported manifest {path}")
        names = manifest["segments"]
        for name in names:
            if (
                not isinstance(name, str)
                or not _SEGMENT_RE.match(name)
            ):
                raise StorageError(f"bad segment name {name!r} in manifest")
        return names

    def _write_manifest(self) -> None:
        payload = json.dumps({
            "format": FORMAT_VERSION,
            "segments": [reader.name for reader in self._segments],
        }, indent=2) + "\n"
        path = self.directory / MANIFEST_NAME
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        _fsync_directory(self.directory)

    # -- ingestion / spilling ---------------------------------------------

    def add(self, flow: FlowRecord) -> None:
        """Insert one flow record (spills when the budget is crossed)."""
        self._tail.add(flow)
        self._maybe_spill()

    def add_all(self, flows: Iterable[FlowRecord]) -> None:
        """Insert many flow records."""
        # self._tail rebinds on spill — re-fetch it every iteration.
        for flow in flows:
            self._tail.add(flow)
            self._maybe_spill()

    def ingest_batch(self, payload) -> int:
        """Absorb one eventcodec tagged-flow batch (see
        :meth:`FlowDatabase.ingest_batch`); spills past the budget."""
        count = self._tail.ingest_batch(payload)
        self._maybe_spill()
        return count

    def tail_bytes(self) -> int:
        """Approximate byte weight of the live tail (columns + labels).

        O(1) amortized — ``_maybe_spill`` calls this per inserted flow
        when a byte budget is set, so the label-byte total is tracked
        incrementally (the intern table is append-only) instead of
        re-summed over every distinct FQDN each time.
        """
        names = self._tail._fqdn_names
        while self._tail_label_count < len(names):
            self._tail_label_bytes += len(names[self._tail_label_count])
            self._tail_label_count += 1
        return len(self._tail) * _ROW_BYTES + self._tail_label_bytes

    def _maybe_spill(self) -> None:
        tail = self._tail
        if not len(tail):
            return
        if len(tail) >= self.spill_rows or (
            self.spill_bytes is not None
            and self.tail_bytes() >= self.spill_bytes
        ):
            self.flush()

    def flush(self) -> Optional[str]:
        """Seal the live tail into a new segment; returns its file name
        (None when the tail is empty).

        The sealed tail is *released*, not cached: spilling is what
        bounds resident memory on a multi-day ingest, so the rows now
        live on disk only and rematerialize lazily if queried."""
        tail = self._tail
        if not len(tail):
            return None
        self._sync_tail_map()
        name = self._writer.write(tail)
        # Deliberate read-back: re-opening the file we just wrote
        # verifies the write end to end (size + CRC over what actually
        # hit the filesystem) before the manifest commits it — one
        # extra sequential read per sealed segment, page-cache warm.
        reader = SegmentReader.open(self.directory / name)
        reader.fqdn_map = self._tail_map
        self._segments.append(reader)
        self._write_manifest()
        self._tail = FlowDatabase()
        self._tail_map = array("i")
        self._tail_label_bytes = 0
        self._tail_label_count = 0
        return name

    def close(self) -> None:
        """Seal any live rows.  The store object stays usable."""
        self.flush()

    def __enter__(self) -> "FlowStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- maintenance -------------------------------------------------------

    @property
    def segments(self) -> tuple[SegmentReader, ...]:
        return tuple(self._segments)

    def release_segments(self) -> None:
        """Drop every cached in-memory segment materialization."""
        for reader in self._segments:
            reader.release()

    def compact(self, small_rows: Optional[int] = None) -> int:
        """Merge segment runs into single segments; returns the number
        of segment files removed.

        With ``small_rows=None`` every sealed segment merges into one.
        Otherwise only *adjacent* runs of two or more segments, each
        smaller than ``small_rows`` rows, are rewritten (adjacency
        preserves global row order, which the query surface relies
        on).  String-table ids are re-interned into the merged tables;
        the old files are unlinked only after the new segment is
        committed to the manifest.
        """
        self.flush()
        segments = self._segments
        if small_rows is None:
            runs = [(0, len(segments))] if len(segments) >= 2 else []
        else:
            runs = []
            start = None
            for index, reader in enumerate(segments):
                if reader.n_rows < small_rows:
                    if start is None:
                        start = index
                    continue
                if start is not None and index - start >= 2:
                    runs.append((start, index))
                start = None
            if start is not None and len(segments) - start >= 2:
                runs.append((start, len(segments)))
        removed = 0
        for start, stop in reversed(runs):
            run = segments[start:stop]
            name = self._writer.next_name()
            _merge_segment_files(run, self.directory / name)
            merged = SegmentReader.open(self.directory / name)
            merged.fqdn_map = _map_local_fqdns(self._interns, merged.labels)
            segments[start:stop] = [merged]
            self._write_manifest()
            for reader in run:
                try:
                    reader.path.unlink()
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass
            removed += len(run) - 1
        return removed

    def stats(self) -> dict:
        """Inspection summary (the ``repro-flowstore inspect`` payload)."""
        self._sync_tail_map()  # fqdns/slds counts must include the tail
        segments = [
            {
                "name": reader.name,
                "rows": reader.n_rows,
                "labels": reader.n_labels,
                "bytes": reader.file_size,
                "resident": reader.resident,
            }
            for reader in self._segments
        ]
        return {
            "directory": str(self.directory),
            "format": FORMAT_VERSION,
            "segments": segments,
            "sealed_rows": sum(reader.n_rows for reader in self._segments),
            "tail_rows": len(self._tail),
            "rows": len(self),
            "fqdns": len(self._interns._fqdn_names),
            "slds": len(self._interns._sld_names),
            "bytes_on_disk": sum(
                reader.file_size for reader in self._segments
            ),
        }

    # -- merge plumbing ----------------------------------------------------

    def _sync_tail_map(self) -> None:
        names = self._tail._fqdn_names
        tail_map = self._tail_map
        intern = self._interns._intern_fqdn
        while len(tail_map) < len(names):
            tail_map.append(intern(names[len(tail_map)]))

    def _source_bounds(self) -> tuple[list[int], list[int]]:
        """Per-source (base, end) global row ranges — derived from the
        segment headers alone, so no segment is materialized."""
        bases: list[int] = []
        ends: list[int] = []
        base = 0
        for reader in self._segments:
            bases.append(base)
            base += reader.n_rows
            ends.append(base)
        if len(self._tail):
            bases.append(base)
            ends.append(base + len(self._tail))
        return bases, ends

    def _each(self):
        """Yield ``(base_row, database, local→global fqdn map)`` per
        source in row order.

        Sealed segments materialize on demand.  With
        ``cache_segments=False`` a segment this pass materialized is
        released again as soon as the consumer advances — a whole-store
        query then holds one segment in memory at a time instead of
        pinning the full dataset.
        """
        self._sync_tail_map()
        base = 0
        for reader in self._segments:
            was_resident = reader.resident
            yield base, reader.database(), reader.fqdn_map
            if not self.cache_segments and not was_resident:
                reader.release()
            base += reader.n_rows
        if len(self._tail):
            yield base, self._tail, self._tail_map

    @staticmethod
    def _extend_offset(out: array, rows, base: int) -> None:
        """Append ``rows + base`` to ``out`` (vectorized when possible)."""
        if not len(rows):
            return
        np = _dbmod._np
        if np is not None:
            taken = (
                np.frombuffer(rows, np.uint32)
                if isinstance(rows, array)
                else np.asarray(rows, np.uint32)
            )
            out.frombytes(_le_np(taken + base, np.uint32))
            return
        out.extend(row + base for row in rows)

    def _split_rows(self, rows) -> list[array]:
        """Partition global row indices into per-source local rows
        (bounds come from the headers; nothing is materialized)."""
        bases, ends = self._source_bounds()
        out = [array("I") for _ in bases]
        if rows is None or not len(rows):
            return out
        np = _dbmod._np
        if np is not None:
            taken = (
                np.frombuffer(rows, np.uint32)
                if isinstance(rows, array)
                else np.asarray(rows, np.uint32)
            )
            which = np.searchsorted(
                np.asarray(bases, np.int64), taken, side="right"
            ) - 1
            for index in range(len(bases)):
                mask = which == index
                if mask.any():
                    local = taken[mask] - bases[index]
                    out[index].frombytes(_le_np(local, np.uint32))
            return out
        for row in rows:
            index = bisect_right(bases, row) - 1
            if 0 <= index < len(bases) and row < ends[index]:
                out[index].append(row - bases[index])
        return out

    def _sources_with_rows(self, rows):
        """Yield ``(db, fqdn_map, local_rows)`` per source — the shared
        scaffold of every grouped-aggregation merge.  With ``rows``
        given, sources that hold none of the selected rows are skipped
        (``local_rows`` is their split); with ``rows=None`` every
        source is visited with ``local_rows=None`` (its own default
        row set)."""
        split = self._split_rows(rows) if rows is not None else None
        for index, (_base, db, fqdn_map) in enumerate(self._each()):
            local_rows = split[index] if split is not None else None
            if split is not None and not len(local_rows):
                continue
            yield db, fqdn_map, local_rows

    def _merged_pairs(self, method_name: str, rows) -> list[tuple]:
        """Shared merge core of the (fqdn_id, value, count) groupers."""
        merged: dict[tuple[int, int], int] = {}
        for db, fqdn_map, local_rows in self._sources_with_rows(rows):
            for fqdn_id, value, count in getattr(db, method_name)(
                local_rows
            ):
                key = (fqdn_map[fqdn_id], value)
                merged[key] = merged.get(key, 0) + count
        return [
            (fqdn_id, value, count)
            for (fqdn_id, value), count in sorted(merged.items())
        ]

    # -- interned label tables --------------------------------------------

    def fqdn_label(self, fqdn_id: int) -> str:
        """The lowercased FQDN behind a (global) interned id."""
        self._sync_tail_map()
        return self._interns._fqdn_names[fqdn_id]

    def sld_label(self, sld_id: int) -> str:
        """The second-level domain behind a (global) interned id."""
        self._sync_tail_map()
        return self._interns._sld_names[sld_id]

    def sld_of_fqdn(self, fqdn_id: int) -> int:
        """Global sld id of a global FQDN id."""
        self._sync_tail_map()
        return self._interns._fqdn_sld[fqdn_id]

    def fqdns(self) -> list[str]:
        """All distinct labels, in global first-appearance order."""
        self._sync_tail_map()
        return list(self._interns._fqdn_names)

    def slds(self) -> list[str]:
        """All distinct second-level domains seen."""
        self._sync_tail_map()
        return list(self._interns._sld_names)

    def servers(self) -> list[int]:
        """All distinct server addresses, first-appearance order."""
        seen: dict[int, None] = {}
        for _base, db, _m in self._each():
            for server in db._by_server:
                if server not in seen:
                    seen[server] = None
        return list(seen)

    def ports(self) -> list[int]:
        """All distinct destination ports, first-appearance order."""
        seen: dict[int, None] = {}
        for _base, db, _m in self._each():
            for port in db._by_port:
                if port not in seen:
                    seen[port] = None
        return list(seen)

    def fqdns_for_domain(self, sld: str) -> set[str]:
        """Distinct FQDNs under one second-level domain."""
        self._sync_tail_map()
        interns = self._interns
        sld_id = interns._sld_ids.get(sld.lower())
        if sld_id is None:
            return set()
        names = interns._fqdn_names
        return {names[fqdn_id] for fqdn_id in interns._sld_fqdns[sld_id]}

    # -- row-index views ---------------------------------------------------

    def rows_for_fqdn(self, fqdn: str) -> Sequence[int]:
        """Global row indices of flows labeled exactly ``fqdn``."""
        out = array("I")
        for base, db, _m in self._each():
            self._extend_offset(out, db.rows_for_fqdn(fqdn), base)
        return out

    def rows_for_domain(self, sld: str) -> Sequence[int]:
        """Global row indices of flows under 2LD ``sld``."""
        out = array("I")
        for base, db, _m in self._each():
            self._extend_offset(out, db.rows_for_domain(sld), base)
        return out

    def rows_for_port(self, dst_port: int) -> Sequence[int]:
        """Global row indices of flows to ``dst_port``."""
        out = array("I")
        for base, db, _m in self._each():
            self._extend_offset(out, db.rows_for_port(dst_port), base)
        return out

    def rows_for_servers(self, servers: Iterable[int]) -> Sequence[int]:
        """Concatenated global row indices for an address set (deduped,
        grouped by server exactly like the in-memory store).

        Iteration is source-major (one streaming pass) but the output
        stays server-major: per-server chunks are gathered per source
        and concatenated in probe order afterwards.
        """
        order = list(dict.fromkeys(servers))
        chunks: dict[int, array] = {server: array("I") for server in order}
        for base, db, _m in self._each():
            by_server = db._by_server
            for server in order:
                index = by_server.get(server)
                if index is not None:
                    self._extend_offset(chunks[server], index, base)
        out = array("I")
        for server in order:
            out.extend(chunks[server])
        return out

    def tagged_rows(self) -> Sequence[int]:
        """Global row indices of every labeled flow."""
        out = array("I")
        for base, db, _m in self._each():
            self._extend_offset(out, db._tagged, base)
        return out

    # -- record queries ----------------------------------------------------

    def query_by_fqdn(self, fqdn: str) -> list[FlowRecord]:
        """Flows labeled exactly ``fqdn``, in global row order."""
        out: list[FlowRecord] = []
        for _base, db, _m in self._each():
            out.extend(db.query_by_fqdn(fqdn))
        return out

    def query_by_domain(self, sld: str) -> list[FlowRecord]:
        """Flows whose label falls under 2LD ``sld``."""
        out: list[FlowRecord] = []
        for _base, db, _m in self._each():
            out.extend(db.query_by_domain(sld))
        return out

    def query_by_servers(self, servers: Iterable[int]) -> list[FlowRecord]:
        """Flows to any address in ``servers`` (duplicates ignored);
        source-major pass, server-major output (see
        :meth:`rows_for_servers`)."""
        order = list(dict.fromkeys(servers))
        chunks: dict[int, list[FlowRecord]] = {
            server: [] for server in order
        }
        for _base, db, _m in self._each():
            by_server = db._by_server
            for server in order:
                index = by_server.get(server)
                if index is not None:
                    chunks[server].extend(db._materialize(index))
        out: list[FlowRecord] = []
        for server in order:
            out.extend(chunks[server])
        return out

    def query_by_port(self, dst_port: int) -> list[FlowRecord]:
        """Flows to destination port ``dst_port``."""
        out: list[FlowRecord] = []
        for _base, db, _m in self._each():
            out.extend(db.query_by_port(dst_port))
        return out

    # -- aggregate views ---------------------------------------------------

    def servers_for_fqdn(self, fqdn: str) -> set[int]:
        """Distinct serverIPs observed delivering ``fqdn``."""
        out: set[int] = set()
        for _base, db, _m in self._each():
            out |= db.servers_for_fqdn(fqdn)
        return out

    def servers_for_domain(self, sld: str) -> set[int]:
        """Distinct serverIPs observed for the whole organization."""
        out: set[int] = set()
        for _base, db, _m in self._each():
            out |= db.servers_for_domain(sld)
        return out

    def fqdns_for_servers(self, servers: Iterable[int]) -> set[str]:
        """Distinct labels delivered by the given server addresses."""
        servers = list(dict.fromkeys(servers))
        out: set[str] = set()
        for _base, db, _m in self._each():
            out |= db.fqdns_for_servers(servers)
        return out

    def fqdns_for_rows(self, rows) -> set[str]:
        """Distinct labels among the flows of a global row-index set."""
        out: set[str] = set()
        for db, _fqdn_map, local_rows in self._sources_with_rows(rows):
            out |= db.fqdns_for_rows(local_rows)
        return out

    # -- grouped aggregations ----------------------------------------------

    def fqdn_server_counts(self, rows=None) -> list[tuple[int, int, int]]:
        """Deduped ``(fqdn_id, server_ip, flow_count)`` groups (global
        ids), merged across segments."""
        return self._merged_pairs("fqdn_server_counts", rows)

    def fqdn_client_counts(self, rows=None) -> list[tuple[int, int, int]]:
        """Deduped ``(fqdn_id, client_ip, flow_count)`` groups."""
        return self._merged_pairs("fqdn_client_counts", rows)

    def fqdn_flow_byte_totals(
        self, rows=None
    ) -> list[tuple[int, int, int, int]]:
        """Per-label ``(fqdn_id, flows, bytes_up, bytes_down)`` totals."""
        merged: dict[int, list[int]] = {}
        for db, fqdn_map, local_rows in self._sources_with_rows(rows):
            for fqdn_id, flows, up, down in db.fqdn_flow_byte_totals(
                local_rows
            ):
                bucket = merged.get(fqdn_map[fqdn_id])
                if bucket is None:
                    merged[fqdn_map[fqdn_id]] = [flows, up, down]
                else:
                    bucket[0] += flows
                    bucket[1] += up
                    bucket[2] += down
        return [
            (fqdn_id, flows, up, down)
            for fqdn_id, (flows, up, down) in sorted(merged.items())
        ]

    def server_flow_counts(self, rows=None) -> dict[int, int]:
        """Flow count per serverIP over ``rows`` (default: all flows)."""
        merged: dict[int, int] = {}
        for db, _fqdn_map, local_rows in self._sources_with_rows(rows):
            for server, count in db.server_flow_counts(local_rows).items():
                merged[server] = merged.get(server, 0) + count
        return dict(sorted(merged.items()))

    def unique_servers_per_bin(
        self, sld: str, bin_seconds: float
    ) -> list[tuple[float, int]]:
        """Fig. 4 series: distinct serverIPs per time bin for one 2LD,
        gap-filled — deduped across segments before counting."""
        pairs: set[tuple[int, int]] = set()
        for _base, db, _m in self._each():
            rows = db.rows_for_domain(sld)
            if len(rows):
                pairs.update(db.bin_server_pairs(rows, bin_seconds))
        if not pairs:
            return []
        per_bin: dict[int, int] = {}
        for bin_index, _server in pairs:
            per_bin[bin_index] = per_bin.get(bin_index, 0) + 1
        lo, hi = min(per_bin), max(per_bin)
        return [
            (index * bin_seconds, per_bin.get(index, 0))
            for index in range(lo, hi + 1)
        ]

    def server_bins_for_fqdn(
        self, fqdn: str, bin_seconds: float
    ) -> list[tuple[int, int]]:
        """Deduped ``(bin_index, server_ip)`` pairs for one FQDN."""
        pairs: set[tuple[int, int]] = set()
        for _base, db, _m in self._each():
            pairs.update(db.server_bins_for_fqdn(fqdn, bin_seconds))
        return sorted(pairs)

    def fqdn_bin_pairs(
        self, bin_seconds: float, rows=None
    ) -> list[tuple[int, int]]:
        """Deduped ``(fqdn_id, bin_index)`` activity pairs (global ids)."""
        pairs: set[tuple[int, int]] = set()
        for db, fqdn_map, local_rows in self._sources_with_rows(rows):
            for fqdn_id, bin_index in db.fqdn_bin_pairs(
                bin_seconds, local_rows
            ):
                pairs.add((fqdn_map[fqdn_id], bin_index))
        return sorted(pairs)

    def fqdn_first_seen(self, rows=None) -> dict[int, float]:
        """Earliest flow start per (global) interned label."""
        merged: dict[int, float] = {}
        for db, fqdn_map, local_rows in self._sources_with_rows(rows):
            for fqdn_id, start in db.fqdn_first_seen(local_rows).items():
                global_id = fqdn_map[fqdn_id]
                if global_id not in merged or start < merged[global_id]:
                    merged[global_id] = start
        return dict(sorted(merged.items()))

    def server_fqdn_bin_triples(
        self, bin_seconds: float, rows=None
    ) -> list[tuple[int, int, int]]:
        """Deduped ``(server_ip, fqdn_id, bin_index)`` triples."""
        triples: set[tuple[int, int, int]] = set()
        for db, fqdn_map, local_rows in self._sources_with_rows(rows):
            for server, fqdn_id, bin_index in db.server_fqdn_bin_triples(
                bin_seconds, local_rows
            ):
                triples.add((server, fqdn_map[fqdn_id], bin_index))
        return sorted(triples)

    def sld_flow_stats(self, rows) -> list[tuple[int, int, int]]:
        """Per-organization ``(sld_id, flows, distinct_fqdns)`` over the
        labeled flows of ``rows`` (global sld ids)."""
        per_fqdn: dict[int, int] = {}
        for db, fqdn_map, local_rows in self._sources_with_rows(rows):
            for fqdn_id, flows, _up, _down in db.fqdn_flow_byte_totals(
                local_rows
            ):
                global_id = fqdn_map[fqdn_id]
                per_fqdn[global_id] = per_fqdn.get(global_id, 0) + flows
        sld_map = self._interns._fqdn_sld
        flow_counts: dict[int, int] = {}
        fqdn_counts: dict[int, int] = {}
        for fqdn_id, flows in per_fqdn.items():
            sld_id = sld_map[fqdn_id]
            flow_counts[sld_id] = flow_counts.get(sld_id, 0) + flows
            fqdn_counts[sld_id] = fqdn_counts.get(sld_id, 0) + 1
        return [
            (sld_id, count, fqdn_counts[sld_id])
            for sld_id, count in sorted(flow_counts.items())
        ]

    # -- stats -------------------------------------------------------------

    def __len__(self) -> int:
        return sum(
            reader.n_rows for reader in self._segments
        ) + len(self._tail)

    def __iter__(self) -> Iterator[FlowRecord]:
        for _base, db, _m in self._each():
            yield from db

    @property
    def tagged_count(self) -> int:
        """Number of flows carrying a label (segment summaries + live
        tail — no segment is materialized for this)."""
        return sum(
            reader.summary()["tagged_rows"] for reader in self._segments
        ) + self._tail.tagged_count

    def count_by_protocol(self) -> dict[Protocol, int]:
        """Flow counts per layer-7 protocol (summaries + live tail)."""
        totals = list(self._tail._protocol_counts)
        for reader in self._segments:
            for index, count in enumerate(
                reader.summary()["protocol_counts"]
            ):
                totals[index] += count
        return {
            PROTOCOLS[index]: count
            for index, count in enumerate(totals)
            if count
        }

    def time_span(self) -> tuple[float, float]:
        """(earliest start, latest end) across all rows (summaries +
        live tail)."""
        if not len(self):
            return (0.0, 0.0)
        lo = float("inf")
        hi = float("-inf")
        for reader in self._segments:
            summary = reader.summary()
            if summary["min_start"] < lo:
                lo = summary["min_start"]
            if summary["max_end"] > hi:
                hi = summary["max_end"]
        if len(self._tail):
            start, end = self._tail.time_span()
            if start < lo:
                lo = start
            if end > hi:
                hi = end
        return (lo, hi)
