"""On-disk segmented columnar storage for the Flow Database.

The columnar engine of :mod:`repro.analytics.database` is memory-only:
a restart loses the dataset, and the multi-day vantage-point captures
the paper analyses (Tab. 2 traces span up to 3 days) do not fit one
process forever.  This module adds the durable layer underneath it —
an **append-only directory of segment files** plus a merge-on-read
query engine:

* :func:`write_segment` / :class:`SegmentWriter` — seal one in-memory
  :class:`~repro.analytics.database.FlowDatabase` (its ``FlowColumns``
  plus the per-row label/cert/true-fqdn strings, interned into string
  tables) into a single versioned, CRC-checked segment file;
* :class:`SegmentReader` — validate and lazily materialize one segment
  back into an in-memory columnar database (columns are rebuilt with
  ``frombytes``, ids re-interned, indexes regrouped — no per-row
  object churn on the numpy path);
* :class:`FlowStore` — the durable store: an ordered list of sealed
  segments plus a live in-memory *tail*.  ``add()`` / ``ingest_batch``
  land in the tail; when the tail crosses the configured row/byte
  budget it is spilled to a new segment.  Every method of the
  ``FlowDatabase`` query surface is served by running the query
  **per segment** and merging (grouped aggregations merge-sum by
  globally interned id; record queries concatenate in row order, so
  results are identical to one big in-memory store), and
  :meth:`FlowStore.compact` rewrites runs of small segments into one,
  re-interning string-table ids.

``FlowDatabase(spill_dir=..., spill_rows=...)`` constructs a
:class:`FlowStore` directly, so callers opt into durability with two
keyword arguments and keep the exact same query surface.

Two levers keep whole-store queries off segments that cannot matter:

* **Pruning metadata** — every sealed segment carries a footer block
  (:class:`SegmentMeta`): min/max flow start/end, client/server
  address ranges, a layer-7 protocol bitmask and compact presence
  filters over the segment's distinct FQDNs and second-level domains.
  Label-, domain-, server- and time-window-keyed queries skip — never
  materialize — segments whose metadata proves they cannot contribute
  (``FlowStore(prune=False)`` restores the scan-everything behaviour;
  answers are identical either way, which the property suite in
  ``tests/test_storage_pruning.py`` holds it to).
* **Parallel per-segment kernels** — ``FlowStore(parallel=N)`` fans
  the surviving per-segment query/aggregation kernels out over a
  thread pool (the kernels spend their time in numpy reductions,
  ``frombytes`` bulk copies and file reads, all of which release the
  GIL) and merges the partials in segment order under the global
  intern table, so results are bit-identical to the serial pass.

Segment file format (version 2; version-1 files — identical but
without block 17 — still open; all integers little-endian)::

    header     <4sHHIIIIIQ   magic b"FSG1", version, flags,
                             n_rows, n_labels, n_certs, n_trues,
                             crc32(payload), payload_len
    directory  18 x u64      byte length of each payload block
                             (17 x u64 in version 1)
    payload    18 blocks, in order:
      0-10   numeric columns  client_ip u32, server_ip u32,
                              src_port u16, dst_port u16, transport u8,
                              start f64, end f64, protocol u8,
                              bytes_up u64, bytes_down u64, packets u32
      11-13  id columns i32   label_id, cert_id, true_id
                              (-1 encodes None)
      14-16  string tables    distinct label / cert_name / true_fqdn
                              strings in first-appearance order, each
                              entry u32 length + UTF-8 bytes
      17     pruning metadata <ddddIIIIIHH  min_start, max_start,
                              min_end, max_end, min_client, max_client,
                              min_server, max_server, protocol_mask,
                              fqdn_filter_len, sld_filter_len —
                              followed by the two filter bitmaps
                              (version 2 only)

The presence filters are Bloom filters over the segment's *distinct*
lowercased FQDNs / 2LDs: a power-of-two bitmap sized at ~8 bits per
entry (64 bits minimum, 32768 bits cap), two CRC32-derived probes per
entry.  A membership test can answer a false "maybe" (the segment is
scanned needlessly) but never a false "no" — pruning is sound by
construction, and ``repro-flowstore verify`` recomputes the whole
footer from the materialized columns to catch a segment whose
metadata lies (e.g. after a buggy external rewrite).

A torn write can never corrupt the store: segments are written to a
temp file, fsynced and atomically renamed, and only then recorded in
``MANIFEST.json`` (itself replaced atomically).  The manifest carries
a full promoted copy of each segment's pruning metadata — ranges,
protocol mask **and** the presence-filter bitmaps (base64) — so the
shard coordinator (:mod:`repro.analytics.shard`) can evaluate
``QueryHint.admits`` against a shard from manifest bytes alone,
without opening any segment file.  The CRC-covered footer stays
authoritative for the store's own per-segment pruning decisions, and
``repro-flowstore verify`` cross-checks the promoted copy against a
recomputed footer exactly as it checks the footer itself.
A segment file not in the manifest is an uncommitted orphan and is
ignored on open; a truncated or bit-flipped segment (or metadata
block) fails the size/CRC validation in :meth:`SegmentReader.open`.
By default such a segment is *quarantined* — moved aside, logged,
recorded in the manifest and reported by :meth:`FlowStore.health` —
and the store opens and serves every surviving row;
``FlowStore(strict=True)`` restores the hard-fail
:class:`StorageError`.

The live tail is crash-safe too: with the (default-on) write-ahead
tail journal, every acknowledged ``add``/``ingest_batch`` is durably
appended to ``tail.wal`` as a CRC-framed eventcodec batch *before*
it lands in memory, and a surviving journal is replayed at open —
torn trailing records dropped by frame CRC, everything before them
recovered bit-identically.  Sealing the tail bumps a ``wal_epoch``
counter in the manifest and only then replaces the journal, so a
crash anywhere in the seal can neither lose nor double-count a row
(see :class:`TailJournal`).  The fault-injection harness in
``tests/test_storage_crash.py`` proves this by crashing a
spill+compact+WAL workload at every single write/fsync/rename.

Like the in-memory engine, everything here uses numpy when importable
and falls back to pure-Python loops over the same blocks otherwise —
the gate is read dynamically from :mod:`repro.analytics.database` so
the two layers always agree on which path is active.
"""

from __future__ import annotations

import base64
import binascii
import errno
import json
import logging
import math
import os
import re
import struct
import sys
import threading
import time
import zlib
from array import array
from bisect import bisect_right
from itertools import islice
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

from repro.analytics import database as _dbmod
from repro.analytics.database import FlowDatabase, _TRANSPORTS
from repro.dns.name import second_level_domain
from repro.net.flow import FlowRecord, Protocol
from repro.sniffer.eventcodec import PROTOCOLS, BatchEncoder

logger = logging.getLogger("repro.analytics.storage")

MAGIC = b"FSG1"
#: Current on-disk format: version 2 adds the pruning-metadata footer
#: block.  Version-1 segments and manifests still open read-only-
#: compatibly (they simply carry no metadata and are never pruned).
FORMAT_VERSION = 2
FORMAT_VERSION_V1 = 1
MANIFEST_NAME = "MANIFEST.json"
SEGMENT_SUFFIX = ".fseg"
#: Write-ahead tail journal file (see :class:`TailJournal`) and the
#: subdirectory quarantined segment files are moved into.
WAL_NAME = "tail.wal"
QUARANTINE_DIR = "quarantine"

WAL_VERSION = 1
_WAL_MAGIC = b"FWAL"
#: Journal header: magic, version, store WAL epoch (see the epoch
#: protocol on :class:`TailJournal`).
_WAL_HEADER = struct.Struct("<4sHQ")
#: Journal record frame: payload length, crc32(payload); the payload
#: is one eventcodec tagged-flow batch.
_WAL_FRAME = struct.Struct("<II")

#: Default spill threshold: ~256k rows per segment (~13 MB of columns).
DEFAULT_SPILL_ROWS = 1 << 18

_HEADER = struct.Struct("<4sHHIIIIIQ")
_BLOCK_LEN = struct.Struct("<Q")
_STR_LEN = struct.Struct("<I")
_META_FIXED = struct.Struct("<ddddIIIIIHH")

#: Presence-filter sizing: ~8 bits per distinct entry, power-of-two
#: bitmap between 64 bits and 32768 bits (4 KB cap per filter).
_FILTER_MIN_BITS = 64
_FILTER_MAX_BITS = 1 << 15
#: Salt appended to the value for the second Bloom probe.  The second
#: hash must differ in *input bytes*, not just CRC seed: CRC32 is
#: affine in its init value, so crc32(x, seed) == crc32(x) ^ C(len(x))
#: — seed-derived probes collide together for equal-length keys
#: (exactly how FQDN sets cluster) and would degrade the filter to an
#: effective single probe.
_FILTER_SALT = b"\x01"

#: The eleven fixed-width value columns, in block order (matches the
#: ``FlowColumns`` attribute of the same name).  Append only —
#: reordering breaks previously-written segments.
_NUMERIC_COLUMNS = (
    ("client_ip", "I"), ("server_ip", "I"),
    ("src_port", "H"), ("dst_port", "H"),
    ("transport", "B"), ("start", "d"), ("end", "d"),
    ("protocol", "B"),
    ("bytes_up", "Q"), ("bytes_down", "Q"), ("packets", "I"),
)
_N_NUMERIC = len(_NUMERIC_COLUMNS)
_N_ID = 3          # label_id, cert_id, true_id
_N_TABLES = 3      # labels, certs, trues
_N_BLOCKS_V1 = _N_NUMERIC + _N_ID + _N_TABLES
_META_BLOCK = _N_BLOCKS_V1          # block 17: pruning metadata (v2)
_N_BLOCKS = _N_BLOCKS_V1 + 1


def _block_count(version: int) -> int:
    return _N_BLOCKS_V1 if version == FORMAT_VERSION_V1 else _N_BLOCKS

#: Fixed column bytes per in-memory row (the 11 value columns plus the
#: fqdn_id column) — the per-row term of :meth:`FlowStore.tail_bytes`.
_ROW_BYTES = sum(
    array(code).itemsize for _name, code in _NUMERIC_COLUMNS
) + array("i").itemsize

_SEGMENT_RE = re.compile(r"^seg-(\d{8})\.fseg$")


class StorageError(ValueError):
    """A segment file or store directory is malformed or corrupted."""


class PresenceFilter:
    """Compact may-contain filter over a set of strings (Bloom, k=2).

    Sound for pruning: :meth:`__contains__` can return a false
    "maybe" (a needless scan) but never a false "no" (a dropped row).
    The bitmap is a power of two between 64 and 32768 bits sized at
    ~8 bits per distinct entry, probed twice per value with
    CRC32-derived hashes — deterministic across processes and runs,
    so two filters built from the same value set are byte-identical
    regardless of iteration order.
    """

    __slots__ = ("data", "_mask")

    def __init__(self, data: bytes = b""):
        if data:
            length = len(data)
            if length < _FILTER_MIN_BITS // 8 or length & (length - 1):
                raise StorageError(
                    f"presence filter length {length} is not a "
                    f"power-of-two byte count"
                )
        self.data = data
        self._mask = len(data) * 8 - 1

    @classmethod
    def build(cls, values: Iterable[str]) -> "PresenceFilter":
        encoded = [value.encode("utf-8") for value in values]
        if not encoded:
            return cls(b"")
        nbits = _FILTER_MIN_BITS
        while nbits < 8 * len(encoded) and nbits < _FILTER_MAX_BITS:
            nbits <<= 1
        mask = nbits - 1
        bits = bytearray(nbits // 8)
        for raw in encoded:
            for h in (zlib.crc32(raw), zlib.crc32(raw + _FILTER_SALT)):
                h &= mask
                bits[h >> 3] |= 1 << (h & 7)
        return cls(bytes(bits))

    def __contains__(self, value: str) -> bool:
        data = self.data
        if not data:
            return False
        raw = value.encode("utf-8")
        mask = self._mask
        for h in (zlib.crc32(raw), zlib.crc32(raw + _FILTER_SALT)):
            h &= mask
            if not data[h >> 3] & (1 << (h & 7)):
                return False
        return True

    def __eq__(self, other) -> bool:
        return isinstance(other, PresenceFilter) and self.data == other.data

    def __len__(self) -> int:
        return len(self.data)


class SegmentMeta:
    """Per-segment pruning metadata (the version-2 footer block).

    Value ranges over the segment's rows plus presence filters over
    its distinct labels; an empty segment encodes inverted ranges
    (``min > max``) and empty filters, so every predicate prunes it.
    Both construction paths — :meth:`from_database` at seal time and
    :meth:`from_blocks` at compaction time — produce identical
    metadata for identical content, which ``repro-flowstore verify``
    relies on to detect a footer that lies about its segment.
    """

    __slots__ = (
        "min_start", "max_start", "min_end", "max_end",
        "min_client", "max_client", "min_server", "max_server",
        "protocol_mask", "fqdn_filter", "sld_filter",
    )

    def __init__(self):
        self.min_start = self.min_end = float("inf")
        self.max_start = self.max_end = float("-inf")
        self.min_client = self.min_server = 0xFFFFFFFF
        self.max_client = self.max_server = 0
        self.protocol_mask = 0
        self.fqdn_filter = PresenceFilter()
        self.sld_filter = PresenceFilter()

    # -- construction ------------------------------------------------------

    @classmethod
    def from_database(cls, database: FlowDatabase) -> "SegmentMeta":
        """Compute the metadata of an in-memory columnar database."""
        meta = cls()
        cols = database.columns
        if len(cols):
            meta.min_start, meta.max_start = _finite_bounds(cols.start)
            meta.min_end, meta.max_end = _finite_bounds(cols.end)
            np = _dbmod._np
            if np is not None:
                clients = np.frombuffer(cols.client_ip, np.uint32)
                servers = np.frombuffer(cols.server_ip, np.uint32)
                meta.min_client = int(clients.min())
                meta.max_client = int(clients.max())
                meta.min_server = int(servers.min())
                meta.max_server = int(servers.max())
            else:
                meta.min_client = min(cols.client_ip)
                meta.max_client = max(cols.client_ip)
                meta.min_server = min(cols.server_ip)
                meta.max_server = max(cols.server_ip)
            mask = 0
            for index, count in enumerate(database._protocol_counts):
                if count:
                    mask |= 1 << index
            meta.protocol_mask = mask
        meta.fqdn_filter = PresenceFilter.build(database._fqdn_names)
        meta.sld_filter = PresenceFilter.build(database._sld_names)
        return meta

    @classmethod
    def from_blocks(
        cls, blocks: Sequence[bytes], labels: Sequence[str]
    ) -> "SegmentMeta":
        """Compute metadata from raw column blocks plus the label
        table (compaction's path — no database is materialized).
        Byte-identical to :meth:`from_database` of the same content."""
        meta = cls()
        starts = _from_le("d", blocks[5])
        if len(starts):
            meta.min_start, meta.max_start = _finite_bounds(starts)
            meta.min_end, meta.max_end = _finite_bounds(
                _from_le("d", blocks[6])
            )
            np = _dbmod._np
            if np is not None:
                # Compaction can merge multi-million-row segments;
                # full-column Python min/max passes would dominate it.
                clients = np.frombuffer(blocks[0], np.dtype("<u4"))
                servers = np.frombuffer(blocks[1], np.dtype("<u4"))
                meta.min_client = int(clients.min())
                meta.max_client = int(clients.max())
                meta.min_server = int(servers.min())
                meta.max_server = int(servers.max())
                seen = np.unique(
                    np.frombuffer(blocks[7], np.uint8)
                ).tolist()
            else:
                clients = _from_le("I", blocks[0])
                servers = _from_le("I", blocks[1])
                meta.min_client = min(clients)
                meta.max_client = max(clients)
                meta.min_server = min(servers)
                meta.max_server = max(servers)
                seen = set(blocks[7])
            mask = 0
            for value in seen:
                mask |= 1 << value
            meta.protocol_mask = mask
        lowered: dict[str, None] = {}
        for text in labels:
            if text:
                lowered.setdefault(text.lower())
        meta.fqdn_filter = PresenceFilter.build(lowered)
        meta.sld_filter = PresenceFilter.build(
            dict.fromkeys(second_level_domain(name) for name in lowered)
        )
        return meta

    # -- serialization -----------------------------------------------------

    def encode(self) -> bytes:
        return _META_FIXED.pack(
            self.min_start, self.max_start, self.min_end, self.max_end,
            self.min_client, self.max_client,
            self.min_server, self.max_server,
            self.protocol_mask,
            len(self.fqdn_filter.data), len(self.sld_filter.data),
        ) + self.fqdn_filter.data + self.sld_filter.data

    @classmethod
    def decode(cls, raw) -> "SegmentMeta":
        if len(raw) < _META_FIXED.size:
            raise StorageError("truncated metadata block")
        (min_start, max_start, min_end, max_end,
         min_client, max_client, min_server, max_server,
         protocol_mask, fqdn_len, sld_len) = _META_FIXED.unpack_from(raw, 0)
        if _META_FIXED.size + fqdn_len + sld_len != len(raw):
            raise StorageError("truncated metadata block")
        meta = cls()
        meta.min_start, meta.max_start = min_start, max_start
        meta.min_end, meta.max_end = min_end, max_end
        meta.min_client, meta.max_client = min_client, max_client
        meta.min_server, meta.max_server = min_server, max_server
        meta.protocol_mask = protocol_mask
        pos = _META_FIXED.size
        meta.fqdn_filter = PresenceFilter(bytes(raw[pos:pos + fqdn_len]))
        pos += fqdn_len
        meta.sld_filter = PresenceFilter(bytes(raw[pos:pos + sld_len]))
        return meta

    def to_manifest(self) -> dict:
        """JSON-safe copy of the full footer for ``MANIFEST.json`` /
        ``stats`` — ranges, mask, **and** the presence-filter bitmaps
        (base64).  The CRC-covered footer remains the authoritative
        copy for the store's own pruning; the manifest copy exists so
        the shard coordinator can evaluate :meth:`QueryHint.admits`
        from manifest bytes alone, without opening a single segment
        file.  ``repro-flowstore verify`` recomputes this promoted
        copy against the data exactly as it recomputes footers, so a
        manifest that lies about its segment goes degraded."""

        def _f(value: float):
            return value if math.isfinite(value) else None

        return {
            "min_start": _f(self.min_start),
            "max_start": _f(self.max_start),
            "min_end": _f(self.min_end),
            "max_end": _f(self.max_end),
            "min_client": self.min_client,
            "max_client": self.max_client,
            "min_server": self.min_server,
            "max_server": self.max_server,
            "protocol_mask": self.protocol_mask,
            "fqdn_filter_bits": len(self.fqdn_filter.data) * 8,
            "sld_filter_bits": len(self.sld_filter.data) * 8,
            "fqdn_filter": base64.b64encode(
                self.fqdn_filter.data
            ).decode("ascii"),
            "sld_filter": base64.b64encode(
                self.sld_filter.data
            ).decode("ascii"),
        }

    @classmethod
    def from_manifest(cls, entry) -> Optional["SegmentMeta"]:
        """Rebuild full pruning metadata from a manifest ``meta`` dict.

        Returns ``None`` when the entry is absent, predates the
        filter promotion, or is malformed in any way — the caller
        must then treat the segment as unprunable (conservative
        scan), mirroring how a version-1 segment without a footer is
        never pruned.  A round trip through :meth:`to_manifest` is
        lossless: the rebuilt metadata compares equal to the footer
        it was promoted from.
        """
        if not isinstance(entry, dict):
            return None
        meta = cls()
        try:
            for name, default in (
                ("min_start", math.inf), ("max_start", -math.inf),
                ("min_end", math.inf), ("max_end", -math.inf),
            ):
                value = entry[name]
                if value is None:
                    value = default
                elif not isinstance(value, (int, float)):
                    return None
                setattr(meta, name, float(value))
            for name in ("min_client", "max_client",
                         "min_server", "max_server", "protocol_mask"):
                value = entry[name]
                if not isinstance(value, int):
                    return None
                setattr(meta, name, value)
            meta.fqdn_filter = PresenceFilter(
                base64.b64decode(entry["fqdn_filter"], validate=True)
            )
            meta.sld_filter = PresenceFilter(
                base64.b64decode(entry["sld_filter"], validate=True)
            )
        except (KeyError, TypeError, ValueError, StorageError,
                binascii.Error):
            return None
        return meta

    def __eq__(self, other) -> bool:
        return isinstance(other, SegmentMeta) and all(
            getattr(self, name) == getattr(other, name)
            for name in SegmentMeta.__slots__
        )

    # -- pruning predicates ------------------------------------------------

    def may_contain_fqdn(self, lowered: str) -> bool:
        return lowered in self.fqdn_filter

    def may_contain_sld(self, lowered: str) -> bool:
        return lowered in self.sld_filter

    def may_contain_server(self, server_ip: int) -> bool:
        return self.min_server <= server_ip <= self.max_server

    def may_contain_client(self, client_ip: int) -> bool:
        return self.min_client <= client_ip <= self.max_client

    def may_contain_protocol(self, protocol_index: int) -> bool:
        return bool(self.protocol_mask >> protocol_index & 1)

    def may_overlap_window(self, t0: float, t1: float) -> bool:
        """Could any flow *start* fall in ``[t0, t1)``?

        Written as a double negation so the comparison only *prunes*
        on a provable miss: should a non-finite bound ever reach a
        footer, every comparison against NaN is False and the segment
        is conservatively scanned rather than silently dropped
        (ingestion rejects non-finite timestamps, so this is
        defense in depth).
        """
        return not (self.max_start < t0 or self.min_start >= t1)


class QueryHint:
    """What a query is looking for — matched against
    :class:`SegmentMeta` to decide whether a sealed segment can be
    skipped.  A ``None`` field constrains nothing; a segment without
    metadata (version 1) is never pruned."""

    __slots__ = ("fqdn", "sld", "servers", "clients", "window", "protocol")

    def __init__(
        self, fqdn=None, sld=None, servers=None, clients=None,
        window=None, protocol=None,
    ):
        self.fqdn = fqdn            # lowercased label
        self.sld = sld              # lowercased second-level domain
        self.servers = servers      # iterable of u32 addresses
        self.clients = clients      # iterable of u32 addresses
        self.window = window        # (t0, t1) over flow start
        self.protocol = protocol    # index into PROTOCOLS

    def admits(self, meta: Optional[SegmentMeta]) -> bool:
        """False only when ``meta`` *proves* the segment cannot hold a
        matching row."""
        if meta is None:
            return True
        if self.window is not None and not meta.may_overlap_window(
            *self.window
        ):
            return False
        if self.fqdn is not None and not meta.may_contain_fqdn(self.fqdn):
            return False
        if self.sld is not None and not meta.may_contain_sld(self.sld):
            return False
        if self.servers is not None and not any(
            meta.may_contain_server(server) for server in self.servers
        ):
            return False
        if self.clients is not None and not any(
            meta.may_contain_client(client) for client in self.clients
        ):
            return False
        if self.protocol is not None and not meta.may_contain_protocol(
            self.protocol
        ):
            return False
        return True


def _le(arr: array) -> bytes:
    """Little-endian bytes of an array (byteswap on BE hosts)."""
    if sys.byteorder != "little":  # pragma: no cover - x86/arm are LE
        arr = arr[:]
        arr.byteswap()
    return arr.tobytes()


def _from_le(typecode: str, raw) -> array:
    """Array from little-endian bytes (byteswap on BE hosts)."""
    arr = array(typecode)
    arr.frombytes(raw)
    if sys.byteorder != "little":  # pragma: no cover - x86/arm are LE
        arr.byteswap()
    return arr


def _le_np(values, dtype) -> bytes:
    """Little-endian bytes of a numpy array (the ``array.frombytes``
    feed used by every numpy-path column/index builder here)."""
    np = _dbmod._np
    if sys.byteorder != "little":  # pragma: no cover - x86/arm are LE
        return values.astype(_np_le_dtype(dtype)).tobytes()
    return np.ascontiguousarray(values, dtype).tobytes()


def _np_le_dtype(dtype) -> str:  # pragma: no cover - BE hosts only
    return _dbmod._np.dtype(dtype).newbyteorder("<").str


def _finite_bounds(values) -> tuple[float, float]:
    """(min, max) over the *finite* entries of a float column; the
    empty convention ``(inf, -inf)`` when none are.

    Current ingestion rejects non-finite timestamps, but v1 (PR4-era)
    segments predate that check — computing ranges over finite values
    only keeps :meth:`SegmentMeta.from_database` and
    :meth:`SegmentMeta.from_blocks` byte-identical on such data (a
    NaN would poison ``min``/``max`` differently per path and make
    ``verify`` flag a healthy footer), and stays sound: a NaN start
    compares False against every window, so the row can never match a
    window query the range might prune.
    """
    np = _dbmod._np
    if np is not None:
        column = (
            values if isinstance(values, np.ndarray)
            else np.frombuffer(values, np.float64)
        )
        finite = column[np.isfinite(column)]
        if len(finite):
            return float(finite.min()), float(finite.max())
        return float("inf"), float("-inf")
    lo, hi = float("inf"), float("-inf")
    for value in values:
        if math.isfinite(value):
            if value < lo:
                lo = value
            if value > hi:
                hi = value
    return lo, hi


def _encode_table(table: Sequence[bytes]) -> bytes:
    """String-table blob: u32 length prefix + UTF-8 bytes per entry."""
    blob = bytearray()
    for raw in table:
        blob += _STR_LEN.pack(len(raw))
        blob += raw
    return bytes(blob)


def _intern_rows(values: Sequence[Optional[str]]) -> tuple[array, bytes, int]:
    """Intern one per-row optional-string column for the file format.

    Returns ``(ids, table_blob, n_entries)`` — an ``i32`` id per row
    (``-1`` for None) into a table of distinct strings in
    first-appearance order, encoded as u32-length-prefixed UTF-8.
    """
    ids = array("i")
    index: dict[str, int] = {}
    table: list[bytes] = []
    append = ids.append
    for value in values:
        if value is None:
            append(-1)
            continue
        entry = index.get(value)
        if entry is None:
            entry = index[value] = len(table)
            table.append(value.encode("utf-8"))
        append(entry)
    return ids, _encode_table(table), len(table)


def _parse_table(raw, count: int, what: str) -> tuple[str, ...]:
    """Decode one string-table block back into a tuple of strings."""
    out: list[str] = []
    pos = 0
    total = len(raw)
    for _ in range(count):
        if pos + _STR_LEN.size > total:
            raise StorageError(f"truncated {what} table")
        (length,) = _STR_LEN.unpack_from(raw, pos)
        pos += _STR_LEN.size
        if pos + length > total:
            raise StorageError(f"truncated {what} table entry")
        try:
            out.append(bytes(raw[pos:pos + length]).decode("utf-8"))
        except UnicodeDecodeError as exc:
            raise StorageError(f"bad UTF-8 in {what} table: {exc}") from exc
        pos += length
    if pos != total:
        raise StorageError(f"{what} table has trailing bytes")
    return tuple(out)


class _OsIO:
    """The store's only gateway to state-changing filesystem calls.

    Every payload write, fsync, rename, truncate and unlink the store
    performs goes through the module-level ``_io`` instance, so the
    fault-injection harness (``tests/faultfs.py``) can swap in a
    counting layer that crashes (or injects an ``OSError``) at any
    single operation and prove crash consistency at *every* injection
    point — without monkeypatching :mod:`os` for unrelated code.

    Segment *reads* also route through the seam (:meth:`read_bytes` /
    :meth:`read_block`) — not because they can lose data, but so the
    shard coordinator's manifest-only pruning claim is falsifiable: a
    test can swap in a counting layer and assert that a prune decision
    touched **zero** segment files.  Reads are observable, never
    crash-injected by the crash sweep (they hold no durability state).
    Manifest/journal reads stay direct: they are not segment payloads.
    """

    @staticmethod
    def read_bytes(path) -> bytes:
        return Path(path).read_bytes()

    @staticmethod
    def read_block(path, offset: int, length: int) -> bytes:
        with open(path, "rb") as handle:
            handle.seek(offset)
            return handle.read(length)

    @staticmethod
    def write(handle, data) -> None:
        handle.write(data)

    @staticmethod
    def fsync(fd: int) -> None:
        os.fsync(fd)

    @staticmethod
    def fsync_dir(fd: int) -> None:
        os.fsync(fd)

    @staticmethod
    def replace(src, dst) -> None:
        os.replace(src, dst)

    @staticmethod
    def truncate(handle, size: int) -> None:
        handle.truncate(size)

    @staticmethod
    def unlink(path) -> None:
        os.unlink(path)


_io = _OsIO()

#: Transient, retryable I/O failures: interrupted or momentarily
#: starved syscalls that genuinely can succeed on the next attempt.
_TRANSIENT_ERRNOS = frozenset({errno.EINTR, errno.EAGAIN})
#: Capacity exhaustion: the volume is full (or the quota is), and no
#: 10 ms backoff will un-fill it.  These escalate on *first*
#: occurrence — retrying just delays the serve layer's degradation
#: governor from tripping to read-only, and every half-open recovery
#: probe would pay the full backoff ladder again.
CAPACITY_ERRNOS = frozenset({errno.ENOSPC, errno.EDQUOT})
#: Bounded backoff: 4 attempts, 10 ms doubling (70 ms worst case).
_IO_ATTEMPTS = 4
_IO_BACKOFF = 0.01
#: Module-level so tests can patch the delay out.
_sleep = time.sleep

#: Directory fsync is genuinely unsupported on some platforms and
#: filesystems; these errnos mean "cannot fsync a directory here",
#: not "your rename was lost".
_DIRSYNC_BENIGN_ERRNOS = frozenset({
    errno.EINVAL, errno.ENOTSUP, errno.EOPNOTSUPP, errno.ENOSYS,
    errno.EBADF, errno.EISDIR, errno.EACCES, errno.EPERM,
    errno.ENOENT, errno.ENOTDIR,
})


def _retry_io(operation, what: str):
    """Run one filesystem operation, retrying transient ``OSError``s
    (:data:`_TRANSIENT_ERRNOS`) with bounded exponential backoff before
    escalating.  Capacity errnos (:data:`CAPACITY_ERRNOS`) escalate on
    the first occurrence — a full volume does not clear in 70 ms, and
    the caller's governor needs to see it *now*.  Callers whose
    operation may partially apply (payload writes) must make
    ``operation`` rewind first — the retry re-runs it from scratch."""
    for attempt in range(_IO_ATTEMPTS):
        try:
            return operation()
        except OSError as exc:
            if (
                exc.errno not in _TRANSIENT_ERRNOS
                or attempt == _IO_ATTEMPTS - 1
            ):
                raise
            delay = _IO_BACKOFF * (1 << attempt)
            logger.warning(
                "transient %s during %s (attempt %d/%d); retrying in "
                "%.0f ms", errno.errorcode.get(exc.errno, exc.errno),
                what, attempt + 1, _IO_ATTEMPTS, delay * 1000.0,
            )
            _sleep(delay)


def _fsync_directory(directory: Path) -> None:
    """Directory fsync so a committed rename survives a crash.

    Best-effort **only** where the platform genuinely cannot do it
    (:data:`_DIRSYNC_BENIGN_ERRNOS`); a real I/O failure (ENOSPC, EIO)
    is data-loss-relevant and escalates through the bounded
    retry/backoff path instead of being silently swallowed.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError as exc:  # pragma: no cover - platform-dependent
        if exc.errno in _DIRSYNC_BENIGN_ERRNOS:
            return
        raise
    try:
        _retry_io(lambda: _io.fsync_dir(fd), f"fsync directory {directory}")
    except OSError as exc:
        if exc.errno in _DIRSYNC_BENIGN_ERRNOS:
            return
        raise
    finally:
        os.close(fd)


def _write_file_atomic(path: Path, payload: bytes, what: str) -> None:
    """Commit ``payload`` to ``path`` via tmp + fsync + rename + dir
    fsync.  A retried write rewinds the tmp file first, so a partial
    attempt can never survive into the committed bytes."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        def _write_all():
            handle.seek(0)
            _io.truncate(handle, 0)
            _io.write(handle, payload)
            handle.flush()
            _io.fsync(handle.fileno())
        _retry_io(_write_all, f"write {what}")
    _retry_io(lambda: _io.replace(tmp, path), f"commit {what}")
    _fsync_directory(path.parent)


def _write_segment_file(
    path: Path,
    n_rows: int,
    blocks: list[bytes],
    n_labels: int,
    n_certs: int,
    n_trues: int,
    version: int = FORMAT_VERSION,
) -> None:
    """Serialize pre-built payload blocks atomically to ``path``."""
    assert len(blocks) == _block_count(version)
    payload_len = sum(len(block) for block in blocks)
    crc = 0
    for block in blocks:
        crc = zlib.crc32(block, crc)
    header = _HEADER.pack(
        MAGIC, version, 0, n_rows,
        n_labels, n_certs, n_trues, crc, payload_len,
    )
    directory = b"".join(_BLOCK_LEN.pack(len(block)) for block in blocks)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        def _write_all():
            # Rewind so a retried transient failure re-runs the whole
            # payload instead of appending after a partial attempt.
            handle.seek(0)
            _io.truncate(handle, 0)
            _io.write(handle, header)
            _io.write(handle, directory)
            for block in blocks:
                _io.write(handle, block)
            handle.flush()
            _io.fsync(handle.fileno())
        _retry_io(_write_all, f"write segment {path.name}")
    _retry_io(
        lambda: _io.replace(tmp, path), f"commit segment {path.name}"
    )
    _fsync_directory(path.parent)


def write_segment(
    path, database: FlowDatabase, version: int = FORMAT_VERSION
) -> int:
    """Seal an in-memory columnar database into one segment file.

    Returns the number of rows written.  The write is atomic: the
    segment appears under its final name only after a successful
    ``fsync`` + rename, so a crash mid-write leaves at most a
    ``*.tmp`` file that readers never look at.

    ``version=FORMAT_VERSION_V1`` writes the metadata-less PR4-era
    layout — kept so the backward-compat read path stays exercised by
    tests rather than by luck.
    """
    if version not in (FORMAT_VERSION_V1, FORMAT_VERSION):
        raise ValueError(f"unsupported segment version {version}")
    path = Path(path)
    cols = database.columns
    n_rows = len(cols)
    blocks: list[bytes] = [
        _le(getattr(cols, name)) for name, _code in _NUMERIC_COLUMNS
    ]
    label_ids, label_blob, n_labels = _intern_rows(database._raw_fqdns)
    cert_ids, cert_blob, n_certs = _intern_rows(database._cert_names)
    true_ids, true_blob, n_trues = _intern_rows(database._true_fqdns)
    blocks += [_le(label_ids), _le(cert_ids), _le(true_ids)]
    blocks += [label_blob, cert_blob, true_blob]
    if version != FORMAT_VERSION_V1:
        blocks.append(SegmentMeta.from_database(database).encode())
    _write_segment_file(
        path, n_rows, blocks, n_labels, n_certs, n_trues, version
    )
    return n_rows


class SegmentWriter:
    """Names and writes sequence-numbered segment files in a directory.

    The writer only produces files; committing them to the store's
    manifest is the :class:`FlowStore`'s job (that ordering is what
    makes a torn spill invisible to readers).
    """

    def __init__(self, directory):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def next_name(self) -> str:
        """Next free sequence-numbered segment file name.

        Scans the directory (not the manifest) so an uncommitted orphan
        from a crashed spill is never silently overwritten with
        unrelated rows — it just burns one sequence number.
        """
        highest = 0
        for entry in self.directory.iterdir():
            match = _SEGMENT_RE.match(entry.name)
            if match:
                highest = max(highest, int(match.group(1)))
        return f"seg-{highest + 1:08d}{SEGMENT_SUFFIX}"

    def write(self, database: FlowDatabase) -> str:
        """Seal ``database`` into the next segment file; returns its name."""
        name = self.next_name()
        write_segment(self.directory / name, database)
        return name


class SegmentReader:
    """One validated on-disk segment, lazily materializable.

    :meth:`open` reads and fully validates the file (header sanity,
    per-block sizes against ``n_rows``, whole-payload CRC32, string
    tables) and keeps only the small parts resident — the tables and
    the block offsets.  :meth:`database` re-reads the column blocks and
    rebuilds an in-memory :class:`FlowDatabase` on first use, cached
    until :meth:`release`.

    A cold open+query therefore reads each segment twice (validate,
    then materialize).  That is deliberate: holding the open-time bytes
    until a query *might* need them would pin the whole store in memory
    at open — the opposite of what spilling exists for — and the second
    read is a page-cache hit right after the first.
    """

    __slots__ = (
        "path", "version", "n_rows", "n_labels", "n_certs", "n_trues",
        "labels", "certs", "trues", "crc", "file_size", "meta",
        "_body", "_lengths", "_offsets", "_database", "_summary",
        "fqdn_map",
    )

    def __init__(self):
        self._database = None
        self._summary = None
        self.meta: Optional[SegmentMeta] = None
        self.fqdn_map: Optional[array] = None

    @property
    def name(self) -> str:
        return self.path.name

    @classmethod
    def open(cls, path) -> "SegmentReader":
        """Validate the segment at ``path``; raises :class:`StorageError`
        on any truncation, corruption or version mismatch."""
        path = Path(path)
        try:
            data = _io.read_bytes(path)
        except OSError as exc:
            raise StorageError(f"cannot read segment {path}: {exc}") from exc
        if len(data) < _HEADER.size:
            raise StorageError(f"segment {path.name}: truncated header")
        (magic, version, _flags, n_rows, n_labels, n_certs, n_trues,
         crc, payload_len) = _HEADER.unpack_from(data, 0)
        if magic != MAGIC:
            raise StorageError(f"segment {path.name}: bad magic {magic!r}")
        if version not in (FORMAT_VERSION_V1, FORMAT_VERSION):
            raise StorageError(
                f"segment {path.name}: unsupported version {version}"
            )
        n_blocks = _block_count(version)
        if len(data) < _HEADER.size + n_blocks * _BLOCK_LEN.size:
            raise StorageError(f"segment {path.name}: truncated header")
        lengths = []
        pos = _HEADER.size
        for _ in range(n_blocks):
            (length,) = _BLOCK_LEN.unpack_from(data, pos)
            lengths.append(length)
            pos += _BLOCK_LEN.size
        body = pos
        if sum(lengths) != payload_len or body + payload_len != len(data):
            raise StorageError(
                f"segment {path.name}: size mismatch (truncated or "
                f"trailing bytes)"
            )
        for index, (name, code) in enumerate(_NUMERIC_COLUMNS):
            expected = n_rows * array(code).itemsize
            if lengths[index] != expected:
                raise StorageError(
                    f"segment {path.name}: column {name} is "
                    f"{lengths[index]} bytes, expected {expected}"
                )
        for offset in range(_N_ID):
            if lengths[_N_NUMERIC + offset] != n_rows * 4:
                raise StorageError(
                    f"segment {path.name}: id column {offset} has wrong size"
                )
        if zlib.crc32(memoryview(data)[body:]) != crc:
            raise StorageError(f"segment {path.name}: payload CRC mismatch")
        offsets = []
        cursor = body
        for length in lengths:
            offsets.append(cursor)
            cursor += length
        view = memoryview(data)
        table_base = _N_NUMERIC + _N_ID
        tables = []
        for index, (count, what) in enumerate(
            ((n_labels, "label"), (n_certs, "cert"), (n_trues, "true-fqdn"))
        ):
            block = table_base + index
            start = offsets[block]
            tables.append(_parse_table(
                view[start:start + lengths[block]], count, what
            ))
        reader = cls()
        reader.path = path
        reader.version = version
        reader.n_rows = n_rows
        reader.n_labels = n_labels
        reader.n_certs = n_certs
        reader.n_trues = n_trues
        reader.labels, reader.certs, reader.trues = tables
        reader.crc = crc
        reader.file_size = len(data)
        reader._body = body
        reader._lengths = lengths
        reader._offsets = offsets
        if version != FORMAT_VERSION_V1:
            start = offsets[_META_BLOCK]
            try:
                reader.meta = SegmentMeta.decode(
                    view[start:start + lengths[_META_BLOCK]]
                )
            except StorageError as exc:
                raise StorageError(
                    f"segment {path.name}: {exc}"
                ) from exc
        return reader

    # -- block access ------------------------------------------------------

    def read_blocks(self) -> list[bytes]:
        """Re-read all payload blocks (compaction's raw input)."""
        data = self._read_validated()
        return [
            data[offset:offset + length]
            for offset, length in zip(self._offsets, self._lengths)
        ]

    def _read_validated(self) -> bytes:
        try:
            data = _io.read_bytes(self.path)
        except OSError as exc:
            raise StorageError(
                f"cannot read segment {self.path}: {exc}"
            ) from exc
        if len(data) != self.file_size or zlib.crc32(
            memoryview(data)[self._body:]
        ) != self.crc:
            raise StorageError(
                f"segment {self.name} changed on disk since open"
            )
        return data

    def _read_block(self, index: int) -> bytes:
        """One payload block by seek+read (sizes/CRC validated at open)."""
        data = _io.read_block(
            self.path, self._offsets[index], self._lengths[index]
        )
        if len(data) != self._lengths[index]:
            raise StorageError(f"segment {self.name} truncated since open")
        return data

    def summary(self) -> dict:
        """Cheap per-segment statistics — ``min_start``/``max_end``,
        the protocol histogram and the tagged-row count — from the four
        relevant column blocks only.  Nothing is materialized or
        cached beyond the small result, so whole-store stats
        (``time_span``, ``count_by_protocol``, ``tagged_count``) never
        force a multi-GB store resident.  Served straight from the
        in-memory form when the segment happens to be resident."""
        if self._database is not None:
            db = self._database
            return {
                "min_start": db._min_start,
                "max_end": db._max_end,
                "protocol_counts": list(db._protocol_counts),
                "tagged_rows": len(db._tagged),
            }
        if self._summary is None:
            self._summary = self._compute_summary()
        return self._summary

    def _compute_summary(self) -> dict:
        n = self.n_rows
        if not n:
            return {
                "min_start": float("inf"), "max_end": float("-inf"),
                "protocol_counts": [0] * len(PROTOCOLS), "tagged_rows": 0,
            }
        starts = ends = None
        if self.meta is None:
            starts = _from_le("d", self._read_block(5))  # start column
            ends = _from_le("d", self._read_block(6))    # end column
        protocols = self._read_block(7)                 # protocol column
        label_ids = _from_le("i", self._read_block(_N_NUMERIC))
        # A row is tagged iff its label is truthy — id -1 (None) and
        # entries holding "" both count as untagged, exactly as the
        # materialized database derives fqdn_id.
        untagged_entries = [
            index for index, text in enumerate(self.labels) if not text
        ]
        np = _dbmod._np
        if np is not None:
            counts = np.bincount(
                np.frombuffer(protocols, np.uint8),
                minlength=len(PROTOCOLS),
            ).tolist()
            if len(counts) > len(PROTOCOLS):
                raise StorageError("protocol index out of range")
            ids = np.frombuffer(label_ids, np.int32)
            tagged = int((ids >= 0).sum())
            if untagged_entries:
                tagged -= int(np.isin(ids, untagged_entries).sum())
            if self.meta is not None:
                min_start = self.meta.min_start
                max_end = self.meta.max_end
            else:
                min_start = float(np.frombuffer(starts, np.float64).min())
                max_end = float(np.frombuffer(ends, np.float64).max())
        else:
            counts = [0] * len(PROTOCOLS)
            for value in protocols:
                if value >= len(PROTOCOLS):
                    raise StorageError("protocol index out of range")
                counts[value] += 1
            skip = set(untagged_entries)
            tagged = sum(
                1 for value in label_ids
                if value >= 0 and value not in skip
            )
            if self.meta is not None:
                min_start = self.meta.min_start
                max_end = self.meta.max_end
            else:
                min_start = min(starts)
                max_end = max(ends)
        return {
            "min_start": min_start, "max_end": max_end,
            "protocol_counts": counts, "tagged_rows": tagged,
        }

    # -- materialization ---------------------------------------------------

    def database(self) -> FlowDatabase:
        """The segment as an in-memory columnar database (cached)."""
        if self._database is None:
            self._database = self._build_database()
        return self._database

    def release(self) -> None:
        """Drop the cached in-memory form; rebuilt on next query."""
        self._database = None

    @property
    def resident(self) -> bool:
        return self._database is not None

    def _build_database(self) -> FlowDatabase:
        data = self._read_validated()
        offsets, lengths = self._offsets, self._lengths

        def block(index: int):
            return memoryview(data)[
                offsets[index]:offsets[index] + lengths[index]
            ]

        db = FlowDatabase()
        cols = db.columns
        for index, (name, code) in enumerate(_NUMERIC_COLUMNS):
            getattr(cols, name)[:] = _from_le(code, block(index))
        n = self.n_rows
        label_ids = _from_le("i", block(_N_NUMERIC))
        cert_ids = _from_le("i", block(_N_NUMERIC + 1))
        true_ids = _from_le("i", block(_N_NUMERIC + 2))
        self._validate_ids(label_ids, self.n_labels, "label")
        self._validate_ids(cert_ids, self.n_certs, "cert")
        self._validate_ids(true_ids, self.n_trues, "true-fqdn")
        self._validate_enums(cols)
        # Local interning: table order reproduces first-appearance
        # order of each distinct lowered label over the segment's rows,
        # so the rebuilt id tables match what the live store held.
        local_of_label = array("i")
        for text in self.labels:
            local_of_label.append(
                db._intern_fqdn(text.lower()) if text else -1
            )
        np = _dbmod._np
        if np is not None and n:
            ids = np.frombuffer(label_ids, np.int32)
            if self.n_labels:
                lut = np.frombuffer(local_of_label, np.int32)
                fqdn_ids = np.where(
                    ids >= 0, lut[np.maximum(ids, 0)], np.int32(-1)
                ).astype(np.int32)
            else:
                fqdn_ids = np.full(n, -1, np.int32)
            cols.fqdn_id.frombytes(_le_np(fqdn_ids, np.int32))
        else:
            append = cols.fqdn_id.append
            for entry in label_ids:
                append(local_of_label[entry] if entry >= 0 else -1)
        labels, certs, trues = self.labels, self.certs, self.trues
        db._raw_fqdns = [
            labels[entry] if entry >= 0 else None for entry in label_ids
        ]
        db._cert_names = [
            certs[entry] if entry >= 0 else None for entry in cert_ids
        ]
        db._true_fqdns = [
            trues[entry] if entry >= 0 else None for entry in true_ids
        ]
        db._records = [None] * n
        if n:
            db._all_records = False
        self._rebuild_stats_and_indexes(db)
        return db

    @staticmethod
    def _validate_ids(ids: array, count: int, what: str) -> None:
        np = _dbmod._np
        if not len(ids):
            return
        if np is not None:
            column = np.frombuffer(ids, np.int32)
            lo, hi = int(column.min()), int(column.max())
        else:
            lo, hi = min(ids), max(ids)
        if lo < -1 or hi >= count:
            raise StorageError(f"{what} id out of table range")

    def _validate_enums(self, cols) -> None:
        """Protocol/transport bytes must be materializable values."""
        n = len(cols.start)
        if not n:
            return
        np = _dbmod._np
        if np is not None:
            protocols = np.frombuffer(cols.protocol, np.uint8)
            if int(protocols.max()) >= len(PROTOCOLS):
                raise StorageError("protocol index out of range")
            transports = np.frombuffer(cols.transport, np.uint8)
            if not np.isin(transports, list(_TRANSPORTS)).all():
                raise StorageError("invalid transport protocol number")
            return
        n_protocols = len(PROTOCOLS)
        for value in cols.protocol:
            if value >= n_protocols:
                raise StorageError("protocol index out of range")
        for value in cols.transport:
            if value not in _TRANSPORTS:
                raise StorageError("invalid transport protocol number")

    def _rebuild_stats_and_indexes(self, db: FlowDatabase) -> None:
        cols = db.columns
        n = len(cols)
        if not n:
            return
        np = _dbmod._np
        if np is not None:
            protocols = np.frombuffer(cols.protocol, np.uint8)
            counts = np.bincount(protocols, minlength=len(PROTOCOLS))
            for index, count in enumerate(counts.tolist()):
                db._protocol_counts[index] += count
            starts = np.frombuffer(cols.start, np.float64)
            ends = np.frombuffer(cols.end, np.float64)
            db._min_start = float(starts.min())
            db._max_end = float(ends.max())
            rows = np.arange(n, dtype=np.uint32)
            servers = np.frombuffer(cols.server_ip, np.uint32)
            ports = np.frombuffer(cols.dst_port, np.uint16)
            db._extend_index(db._by_server, servers, rows)
            db._extend_index(db._by_port, ports.astype(np.uint32), rows)
            ids = np.frombuffer(cols.fqdn_id, np.int32)
            mask = ids >= 0
            if mask.any():
                tagged_rows = rows[mask]
                tagged_ids = ids[mask]
                db._tagged.frombytes(_le_np(tagged_rows, np.uint32))
                db._extend_index(db._by_fqdn, tagged_ids, tagged_rows)
                sld_map = np.frombuffer(db._fqdn_sld, np.int32)
                db._extend_index(
                    db._by_sld, sld_map[tagged_ids], tagged_rows
                )
            return
        by_server, by_port = db._by_server, db._by_port
        by_fqdn, by_sld = db._by_fqdn, db._by_sld
        fqdn_sld = db._fqdn_sld
        tagged = db._tagged
        protocol_counts = db._protocol_counts
        min_start, max_end = db._min_start, db._max_end
        server_col, port_col = cols.server_ip, cols.dst_port
        start_col, end_col = cols.start, cols.end
        fqdn_col, proto_col = cols.fqdn_id, cols.protocol
        for row in range(n):
            protocol_counts[proto_col[row]] += 1
            start = start_col[row]
            end = end_col[row]
            if start < min_start:
                min_start = start
            if end > max_end:
                max_end = end
            index = by_server.get(server_col[row])
            if index is None:
                index = by_server[server_col[row]] = array("I")
            index.append(row)
            index = by_port.get(port_col[row])
            if index is None:
                index = by_port[port_col[row]] = array("I")
            index.append(row)
            fqdn_id = fqdn_col[row]
            if fqdn_id >= 0:
                by_fqdn[fqdn_id].append(row)
                by_sld[fqdn_sld[fqdn_id]].append(row)
                tagged.append(row)
        db._min_start, db._max_end = min_start, max_end


def _map_local_fqdns(interns: FlowDatabase, labels: Sequence[str]) -> array:
    """Local→global fqdn-id map for a segment's label table.

    Replays the table through the global intern tables exactly as
    :meth:`SegmentReader._build_database` replays it through the local
    ones, so index ``k`` of the result is the global id of the
    segment's local fqdn id ``k``.
    """
    fqdn_map = array("i")
    seen: set[str] = set()
    for text in labels:
        if not text:
            continue
        lowered = text.lower()
        if lowered not in seen:
            seen.add(lowered)
            fqdn_map.append(interns._intern_fqdn(lowered))
    return fqdn_map


def _call_thunk(thunk):
    """Top-level trampoline for ``Executor.map`` over bound thunks."""
    return thunk()


def _merge_segment_files(
    readers: Sequence[SegmentReader], path: Path
) -> None:
    """Rewrite several adjacent segments as one (compaction's kernel).

    Numeric blocks concatenate verbatim; string tables merge with
    first-appearance dedupe and the id columns are rewritten through
    the resulting lookup tables.  Row order — and therefore every
    query result — is preserved.  Blocks are assembled in memory, so
    one compaction holds roughly the merged file size transiently.

    The output is always written at the current format version with a
    freshly computed metadata footer — compacting version-1 inputs is
    therefore also the upgrade path to prunable segments.
    """
    all_blocks = [reader.read_blocks() for reader in readers]
    merged: list[bytes] = [
        b"".join(blocks[index] for blocks in all_blocks)
        for index in range(_N_NUMERIC)
    ]
    np = _dbmod._np
    table_counts = []
    for offset, attr in enumerate(("labels", "certs", "trues")):
        index: dict[str, int] = {}
        table: list[bytes] = []
        id_parts: list[bytes] = []
        for reader, blocks in zip(readers, all_blocks):
            lut = array("i")
            for text in getattr(reader, attr):
                entry = index.get(text)
                if entry is None:
                    entry = index[text] = len(table)
                    table.append(text.encode("utf-8"))
                lut.append(entry)
            ids = _from_le("i", blocks[_N_NUMERIC + offset])
            if np is not None and len(ids):
                values = np.frombuffer(ids, np.int32)
                if len(lut):
                    lut_np = np.frombuffer(lut, np.int32)
                    remapped = np.where(
                        values >= 0,
                        lut_np[np.maximum(values, 0)],
                        np.int32(-1),
                    ).astype(np.int32)
                else:
                    remapped = np.full(len(ids), -1, np.int32)
                out = array("i")
                out.frombytes(_le_np(remapped, np.int32))
            else:
                out = array("i", (
                    lut[value] if value >= 0 else -1 for value in ids
                ))
            id_parts.append(_le(out))
        merged.append(b"".join(id_parts))
        table_counts.append((len(table), _encode_table(table)))
        if offset == 0:
            merged_labels = [raw.decode("utf-8") for raw in table]
    merged += [blob for _count, blob in table_counts]
    merged.append(SegmentMeta.from_blocks(merged, merged_labels).encode())
    _write_segment_file(
        path,
        sum(reader.n_rows for reader in readers),
        merged,
        table_counts[0][0], table_counts[1][0], table_counts[2][0],
    )


def _encode_flow_batch(flows: Iterable[FlowRecord]) -> bytes:
    """Encode flows as one eventcodec batch for the tail journal.

    Validates exactly what :meth:`FlowDatabase.add` validates (protocol,
    field ranges via the codec structs, finite timestamps), so a record
    that reaches the journal is guaranteed to replay — and a flow the
    tail would reject raises *before* the journal is touched.
    """
    encoder = BatchEncoder()
    for flow in flows:
        if not (math.isfinite(flow.start) and math.isfinite(flow.end)):
            raise ValueError("non-finite flow timestamp")
        encoder.add_flow(flow)
    return encoder.take()


class TailJournal:
    """CRC-framed write-ahead journal for the live tail (``tail.wal``).

    Every acknowledged ``add``/``ingest_batch`` appends one frame —
    ``<u32 len><u32 crc32>`` followed by an eventcodec tagged-flow
    batch — and fsyncs before the caller returns, so a crash at any
    instant loses at most the un-acknowledged record being written.
    Recovery reads frames until the first torn one (bad length or CRC)
    and replays the valid prefix bit-identically.

    **Epoch protocol.**  The file starts with a header carrying the
    store's *WAL epoch*.  Sealing the tail first bumps the epoch inside
    ``MANIFEST.json`` (committed atomically, segment included), then
    replaces the journal with a fresh empty one at the new epoch.  A
    surviving journal whose epoch trails the manifest's is therefore
    provably already sealed into a committed segment and is discarded
    at open instead of double-counted; a journal at the current epoch
    holds exactly the rows the manifest does not.
    """

    def __init__(self, path, epoch: int, sync: bool = True):
        self.path = Path(path)
        self.epoch = epoch
        self.sync = sync
        self._handle = None
        self._size = 0

    @classmethod
    def recover(cls, path) -> tuple[Optional[int], list[bytes], dict]:
        """Read a surviving journal file without mutating it.

        Returns ``(epoch, payloads, report)``: the header epoch (None
        when there is no readable header), every CRC-valid record
        payload in order, and a report with ``bytes`` read,
        ``records`` recovered, ``torn_bytes`` past the valid prefix
        and ``valid_size`` (the byte length of that prefix).
        """
        path = Path(path)
        report = {"bytes": 0, "records": 0, "torn_bytes": 0,
                  "valid_size": 0}
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            return None, [], report
        except OSError as exc:
            raise StorageError(
                f"cannot read tail journal {path}: {exc}"
            ) from exc
        report["bytes"] = len(data)
        if len(data) < _WAL_HEADER.size:
            # Torn header from a crashed creation: nothing was ever
            # acknowledged against it.
            report["torn_bytes"] = len(data)
            return None, [], report
        magic, version, epoch = _WAL_HEADER.unpack_from(data, 0)
        if magic != _WAL_MAGIC or version != WAL_VERSION:
            report["torn_bytes"] = len(data)
            return None, [], report
        payloads: list[bytes] = []
        pos = _WAL_HEADER.size
        total = len(data)
        while pos < total:
            if pos + _WAL_FRAME.size > total:
                break
            length, crc = _WAL_FRAME.unpack_from(data, pos)
            start = pos + _WAL_FRAME.size
            stop = start + length
            if stop > total or zlib.crc32(data[start:stop]) != crc:
                break
            payloads.append(data[start:stop])
            pos = stop
            report["records"] += 1
        # Appends are strictly sequential, so an invalid frame can only
        # be the torn end of the file — everything after it is the same
        # crashed write.
        report["torn_bytes"] = total - pos
        report["valid_size"] = pos
        return epoch, payloads, report

    def ensure_open(self):
        """Open the journal (creating it, with a header, if needed) and
        position at the end.  Unbuffered, so every append is one write
        syscall and a failed attempt leaves no hidden buffered bytes."""
        if self._handle is None:
            try:
                handle = open(self.path, "r+b", buffering=0)
            except FileNotFoundError:
                handle = open(self.path, "x+b", buffering=0)
            size = handle.seek(0, os.SEEK_END)
            if size < _WAL_HEADER.size:
                header = _WAL_HEADER.pack(
                    _WAL_MAGIC, WAL_VERSION, self.epoch
                )

                def _write_header():
                    handle.seek(0)
                    _io.truncate(handle, 0)
                    _io.write(handle, header)
                    if self.sync:
                        _io.fsync(handle.fileno())
                try:
                    _retry_io(_write_header, "tail journal header")
                except BaseException:
                    handle.close()
                    raise
                size = len(header)
            self._handle = handle
            self._size = size
        return self._handle

    def append(self, payload: bytes) -> None:
        """Durably append one record; the caller may acknowledge its
        rows once this returns."""
        handle = self.ensure_open()
        record = _WAL_FRAME.pack(
            len(payload), zlib.crc32(payload)
        ) + payload
        offset = self._size

        def _write_record():
            # Rewind first: a partially-applied previous attempt (e.g.
            # ENOSPC mid-record) must not leave half a frame in front
            # of the retry.
            handle.seek(offset)
            _io.truncate(handle, offset)
            _io.write(handle, record)
            if self.sync:
                _io.fsync(handle.fileno())
        _retry_io(_write_record, "tail journal append")
        self._size = offset + len(record)

    def truncate_to(self, size: int) -> None:
        """Drop a torn trailing record detected by :meth:`recover`."""
        handle = self.ensure_open()

        def _do():
            _io.truncate(handle, size)
            if self.sync:
                _io.fsync(handle.fileno())
        _retry_io(_do, "tail journal truncate")
        self._size = size

    def reset(self, epoch: int) -> None:
        """Atomically replace the journal with a fresh empty one at
        ``epoch`` (called after the manifest committed that epoch)."""
        self.close()
        self.epoch = epoch
        _write_file_atomic(
            self.path,
            _WAL_HEADER.pack(_WAL_MAGIC, WAL_VERSION, epoch),
            "tail journal",
        )

    def discard(self) -> None:
        """Remove the journal file (stale epoch, or WAL disabled)."""
        self.close()
        try:
            _retry_io(lambda: _io.unlink(self.path), "remove tail journal")
        except FileNotFoundError:
            pass
        except OSError as exc:  # pragma: no cover - best-effort cleanup
            logger.warning(
                "could not remove tail journal %s: %s", self.path, exc
            )

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._size = 0


class _StoreReadMixin:
    """Merge-on-read query surface shared by :class:`FlowStore` and
    :class:`StoreSnapshot`.

    Every whole-store read goes through one primitive — :meth:`_view`,
    which captures ``(segments, tail, tail_map)`` under the store
    mutex — so a query always executes over one internally-consistent
    member set even while the single writer keeps appending, sealing
    or compacting.  A host class provides the members (``_segments``,
    ``_tail``, ``_tail_map``, ``_interns``, ``_mutex``,
    ``_scan_stats``), the execution knobs (``prune``, ``parallel``,
    ``cache_segments``) and ``_executor()``.

    Concurrency contract (single writer, any number of readers):

    * sealed segment files are immutable — their kernels run lock-free
      (and concurrently under ``parallel > 1``);
    * the live tail is the one mutable source, so the tail kernel of
      every pass runs under the store mutex, serialized against the
      writer;
    * the global intern tables are append-only and ids are stable, so
      a result that references them can never dangle — though the
      tables themselves (:meth:`fqdns`, :meth:`slds`) are shared with
      the live store and keep growing past a snapshot's pin point.
    """

    #: Optional cooperative cancellation token (duck-typed: ``check()``
    #: raising to cancel, ``note_scheduled(n)``/``note_done()`` for
    #: partial-work accounting — :class:`repro.serve.deadline.Deadline`
    #: is the canonical implementation).  Assigned per *instance* —
    #: the serve layer sets it on a pinned :class:`StoreSnapshot`, so
    #: one request's deadline never leaks into another reader.
    #: :meth:`_run_sources` consults it at every kernel boundary,
    #: including kernels running on the ``parallel`` pool.
    cancel_token = None

    # -- consistent view capture ------------------------------------------

    def _view(self) -> tuple[tuple, FlowDatabase, array]:
        """``(segments, tail, tail_map)`` captured atomically.

        The segments tuple is a private copy, so a concurrent
        seal/compact splice of the live list cannot shift this pass;
        the tail reference stays shared — tail kernels take the mutex.
        """
        with self._mutex:
            self._sync_tail_map()
            return tuple(self._segments), self._tail, self._tail_map

    def _sync_tail_map(self) -> None:
        with self._mutex:
            names = self._tail._fqdn_names
            tail_map = self._tail_map
            intern = self._interns._intern_fqdn
            while len(tail_map) < len(names):
                tail_map.append(intern(names[len(tail_map)]))

    # -- merge plumbing ----------------------------------------------------

    @staticmethod
    def _source_bounds(
        segments: Sequence[SegmentReader], tail_len: int
    ) -> tuple[list[int], list[int]]:
        """Per-source (base, end) global row ranges — derived from the
        segment headers alone, so no segment is materialized."""
        bases: list[int] = []
        ends: list[int] = []
        base = 0
        for reader in segments:
            bases.append(base)
            base += reader.n_rows
            ends.append(base)
        if tail_len:
            bases.append(base)
            ends.append(base + tail_len)
        return bases, ends

    def _each(self):
        """Yield ``(base_row, database, local→global fqdn map)`` per
        source in row order.

        Sealed segments materialize on demand.  With
        ``cache_segments=False`` a segment this pass materialized is
        released again as soon as the consumer advances — a whole-store
        query then holds one segment in memory at a time instead of
        pinning the full dataset.  The tail is yielded under the store
        mutex, so consuming it cannot interleave with the writer.
        """
        segments, tail, tail_map = self._view()
        base = 0
        for reader in segments:
            was_resident = reader.resident
            yield base, reader.database(), reader.fqdn_map
            if not self.cache_segments and not was_resident:
                reader.release()
            base += reader.n_rows
        with self._mutex:
            if len(tail):
                yield base, tail, tail_map

    @staticmethod
    def _extend_offset(out: array, rows, base: int) -> None:
        """Append ``rows + base`` to ``out`` (vectorized when possible)."""
        if not len(rows):
            return
        np = _dbmod._np
        if np is not None:
            taken = (
                np.frombuffer(rows, np.uint32)
                if isinstance(rows, array)
                else np.asarray(rows, np.uint32)
            )
            out.frombytes(_le_np(taken + base, np.uint32))
            return
        out.extend(row + base for row in rows)

    @staticmethod
    def _offset_rows(rows, base: int) -> array:
        """``rows + base`` as a fresh packed array."""
        out = array("I")
        _StoreReadMixin._extend_offset(out, rows, base)
        return out

    def _split_rows(
        self, rows, segments: Sequence[SegmentReader], tail_len: int
    ) -> list[array]:
        """Partition global row indices into per-source local rows
        (bounds come from the headers; nothing is materialized)."""
        bases, ends = self._source_bounds(segments, tail_len)
        out = [array("I") for _ in bases]
        if rows is None or not len(rows):
            return out
        np = _dbmod._np
        if np is not None:
            taken = (
                np.frombuffer(rows, np.uint32)
                if isinstance(rows, array)
                else np.asarray(rows, np.uint32)
            )
            which = np.searchsorted(
                np.asarray(bases, np.int64), taken, side="right"
            ) - 1
            for index in range(len(bases)):
                mask = which == index
                if mask.any():
                    local = taken[mask] - bases[index]
                    out[index].frombytes(_le_np(local, np.uint32))
            return out
        for row in rows:
            index = bisect_right(bases, row) - 1
            if 0 <= index < len(bases) and row < ends[index]:
                out[index].append(row - bases[index])
        return out

    def _note_scan(self, scanned: int, pruned: int) -> None:
        """Fold one pass's pruning outcome into the shared counters
        (the ``/metrics`` prune-hit-rate feed; snapshots share their
        parent store's dict, so the service sees one series)."""
        with self._mutex:
            stats = self._scan_stats
            stats["queries"] += 1
            stats["segments_scanned"] += scanned
            stats["segments_pruned"] += pruned

    def _run_sources(self, kernel, hint: Optional[QueryHint] = None,
                     rows=None) -> list:
        """Run ``kernel(db, fqdn_map, local_rows, base_row)`` over every
        surviving source and return the results **in row order** — the
        one execution path behind every query and grouped aggregation.

        Pruning (``self.prune``) drops a sealed segment *before* it is
        materialized when either (a) ``rows`` is given and the
        header-derived row split proves the segment holds none of the
        selected rows, or (b) ``hint`` is given and the segment's
        footer metadata proves no row can match.  The live tail is
        never pruned (it is already resident and has no metadata).

        Both skips — including the exact row-split one — sit behind
        ``self.prune`` on purpose: the PR4 ``_sources_with_rows``
        pass materialized every segment regardless (its generator
        called ``reader.database()`` at yield time; the empty-split
        ``continue`` only skipped the kernel), so ``prune=False``
        reproduces that cost faithfully, which is exactly what the
        differential property suite and the ``flowdb_pruned_query``
        bench's unpruned arm need from it.  A kernel over an empty
        row set is O(1), so re-running it there costs nothing extra.

        With ``parallel > 1`` the surviving kernels run on the thread
        pool; because partials are merged from this ordered result
        list, parallel execution is bit-identical to serial.  The
        member set is the :meth:`_view` capture, and the tail kernel
        runs under the store mutex — so concurrent ingest can never
        tear a pass, and a :class:`StoreSnapshot` pass never sees a
        segment retired out from under it.

        When :attr:`cancel_token` is set, every kernel boundary calls
        ``token.check()`` first — on the request thread in serial mode
        and on each pool worker under ``parallel > 1`` — so an expired
        request stops before the *next* segment is materialized rather
        than finishing an unbounded scan.  Completed kernels are
        reported via ``token.note_done()`` (the partial-work counters
        behind the serve layer's 504 payload).
        """
        token = self.cancel_token
        segments, tail, tail_map = self._view()
        tail_len = len(tail)
        prune = self.prune
        split = (
            self._split_rows(rows, segments, tail_len)
            if rows is not None else None
        )
        cache = self.cache_segments
        mutex = self._mutex
        thunks = []
        scanned = pruned = 0
        base = 0
        for index, reader in enumerate(segments):
            local = split[index] if split is not None else None
            skip = prune and (
                (split is not None and not len(local))
                or (hint is not None and not hint.admits(reader.meta))
            )
            if not skip:
                scanned += 1

                def thunk(reader=reader, local=local, base=base):
                    if token is not None:
                        token.check()
                    was_resident = reader.resident
                    try:
                        return kernel(
                            reader.database(), reader.fqdn_map, local, base
                        )
                    finally:
                        if not cache and not was_resident:
                            reader.release()
                        if token is not None:
                            token.note_done()
                thunks.append(thunk)
            else:
                pruned += 1
            base += reader.n_rows
        if tail_len:
            local = split[len(segments)] if split is not None else None

            def tail_thunk(local=local, base=base):
                if token is not None:
                    token.check()
                with mutex:
                    result = kernel(tail, tail_map, local, base)
                if token is not None:
                    token.note_done()
                return result
            thunks.append(tail_thunk)
        self._note_scan(scanned, pruned)
        if token is not None:
            token.note_scheduled(len(thunks))
            token.check()
        if self.parallel > 1 and len(thunks) > 1:
            return list(self._executor().map(_call_thunk, thunks))
        return [thunk() for thunk in thunks]

    def _merged_pairs(self, method_name: str, rows) -> list[tuple]:
        """Shared merge core of the (fqdn_id, value, count) groupers."""

        def kernel(db, fqdn_map, local_rows, _base):
            return [
                (fqdn_map[fqdn_id], value, count)
                for fqdn_id, value, count in getattr(db, method_name)(
                    local_rows
                )
            ]

        merged: dict[tuple[int, int], int] = {}
        for part in self._run_sources(kernel, rows=rows):
            for fqdn_id, value, count in part:
                key = (fqdn_id, value)
                merged[key] = merged.get(key, 0) + count
        return [
            (fqdn_id, value, count)
            for (fqdn_id, value), count in sorted(merged.items())
        ]

    # -- interned label tables --------------------------------------------

    def fqdn_label(self, fqdn_id: int) -> str:
        """The lowercased FQDN behind a (global) interned id."""
        self._sync_tail_map()
        return self._interns._fqdn_names[fqdn_id]

    def sld_label(self, sld_id: int) -> str:
        """The second-level domain behind a (global) interned id."""
        self._sync_tail_map()
        return self._interns._sld_names[sld_id]

    def sld_of_fqdn(self, fqdn_id: int) -> int:
        """Global sld id of a global FQDN id."""
        self._sync_tail_map()
        return self._interns._fqdn_sld[fqdn_id]

    def fqdns(self) -> list[str]:
        """All distinct labels, in global first-appearance order."""
        with self._mutex:
            self._sync_tail_map()
            return list(self._interns._fqdn_names)

    def slds(self) -> list[str]:
        """All distinct second-level domains seen."""
        with self._mutex:
            self._sync_tail_map()
            return list(self._interns._sld_names)

    def servers(self) -> list[int]:
        """All distinct server addresses, first-appearance order."""
        seen: dict[int, None] = {}
        for _base, db, _m in self._each():
            for server in db._by_server:
                if server not in seen:
                    seen[server] = None
        return list(seen)

    def ports(self) -> list[int]:
        """All distinct destination ports, first-appearance order."""
        seen: dict[int, None] = {}
        for _base, db, _m in self._each():
            for port in db._by_port:
                if port not in seen:
                    seen[port] = None
        return list(seen)

    def fqdns_for_domain(self, sld: str) -> set[str]:
        """Distinct FQDNs under one second-level domain."""
        with self._mutex:
            self._sync_tail_map()
            interns = self._interns
            sld_id = interns._sld_ids.get(sld.lower())
            if sld_id is None:
                return set()
            names = interns._fqdn_names
            return {
                names[fqdn_id] for fqdn_id in interns._sld_fqdns[sld_id]
            }

    # -- row-index views ---------------------------------------------------

    def _concat_rows(self, parts: Iterable[array]) -> array:
        out = array("I")
        for part in parts:
            out.extend(part)
        return out

    def rows_for_fqdn(self, fqdn: str) -> Sequence[int]:
        """Global row indices of flows labeled exactly ``fqdn``."""
        return self._concat_rows(self._run_sources(
            lambda db, _m, _lr, base: self._offset_rows(
                db.rows_for_fqdn(fqdn), base
            ),
            QueryHint(fqdn=fqdn.lower()),
        ))

    def rows_for_domain(self, sld: str) -> Sequence[int]:
        """Global row indices of flows under 2LD ``sld``."""
        return self._concat_rows(self._run_sources(
            lambda db, _m, _lr, base: self._offset_rows(
                db.rows_for_domain(sld), base
            ),
            QueryHint(sld=sld.lower()),
        ))

    def rows_for_port(self, dst_port: int) -> Sequence[int]:
        """Global row indices of flows to ``dst_port``."""
        return self._concat_rows(self._run_sources(
            lambda db, _m, _lr, base: self._offset_rows(
                db.rows_for_port(dst_port), base
            ),
        ))

    def rows_in_window(self, t0: float, t1: float) -> Sequence[int]:
        """Global row indices of flows starting in ``[t0, t1)`` —
        segments whose start range misses the window entirely are
        pruned from the scan via their footer metadata."""
        return self._concat_rows(self._run_sources(
            lambda db, _m, _lr, base: self._offset_rows(
                db.rows_in_window(t0, t1), base
            ),
            QueryHint(window=(t0, t1)),
        ))

    def rows_for_servers(self, servers: Iterable[int]) -> Sequence[int]:
        """Concatenated global row indices for an address set (deduped,
        grouped by server exactly like the in-memory store).

        Execution is source-major (one pass, pruned by the per-segment
        server-address range) but the output stays server-major:
        per-server chunks are gathered per source and concatenated in
        probe order afterwards.
        """
        order = list(dict.fromkeys(servers))

        def kernel(db, _m, _lr, base):
            chunks: dict[int, array] = {}
            by_server = db._by_server
            for server in order:
                index = by_server.get(server)
                if index is not None:
                    chunks[server] = self._offset_rows(index, base)
            return chunks

        parts = self._run_sources(kernel, QueryHint(servers=order))
        out = array("I")
        for server in order:
            for part in parts:
                chunk = part.get(server)
                if chunk is not None:
                    out.extend(chunk)
        return out

    def tagged_rows(self) -> Sequence[int]:
        """Global row indices of every labeled flow."""
        return self._concat_rows(self._run_sources(
            lambda db, _m, _lr, base: self._offset_rows(db._tagged, base),
        ))

    # -- record queries ----------------------------------------------------

    def query_by_fqdn(self, fqdn: str) -> list[FlowRecord]:
        """Flows labeled exactly ``fqdn``, in global row order."""
        out: list[FlowRecord] = []
        for part in self._run_sources(
            lambda db, _m, _lr, _base: db.query_by_fqdn(fqdn),
            QueryHint(fqdn=fqdn.lower()),
        ):
            out.extend(part)
        return out

    def query_by_domain(self, sld: str) -> list[FlowRecord]:
        """Flows whose label falls under 2LD ``sld``."""
        out: list[FlowRecord] = []
        for part in self._run_sources(
            lambda db, _m, _lr, _base: db.query_by_domain(sld),
            QueryHint(sld=sld.lower()),
        ):
            out.extend(part)
        return out

    def query_by_servers(self, servers: Iterable[int]) -> list[FlowRecord]:
        """Flows to any address in ``servers`` (duplicates ignored);
        source-major pass, server-major output (see
        :meth:`rows_for_servers`)."""
        order = list(dict.fromkeys(servers))

        def kernel(db, _m, _lr, _base):
            chunks: dict[int, list[FlowRecord]] = {}
            by_server = db._by_server
            for server in order:
                index = by_server.get(server)
                if index is not None:
                    chunks[server] = db._materialize(index)
            return chunks

        parts = self._run_sources(kernel, QueryHint(servers=order))
        out: list[FlowRecord] = []
        for server in order:
            for part in parts:
                chunk = part.get(server)
                if chunk is not None:
                    out.extend(chunk)
        return out

    def query_by_port(self, dst_port: int) -> list[FlowRecord]:
        """Flows to destination port ``dst_port``."""
        out: list[FlowRecord] = []
        for part in self._run_sources(
            lambda db, _m, _lr, _base: db.query_by_port(dst_port),
        ):
            out.extend(part)
        return out

    def query_in_window(self, t0: float, t1: float) -> list[FlowRecord]:
        """Flows starting in ``[t0, t1)``, in global row order."""
        out: list[FlowRecord] = []
        for part in self._run_sources(
            lambda db, _m, _lr, _base: db.query_in_window(t0, t1),
            QueryHint(window=(t0, t1)),
        ):
            out.extend(part)
        return out

    # -- aggregate views ---------------------------------------------------

    def servers_for_fqdn(self, fqdn: str) -> set[int]:
        """Distinct serverIPs observed delivering ``fqdn``."""
        out: set[int] = set()
        for part in self._run_sources(
            lambda db, _m, _lr, _base: db.servers_for_fqdn(fqdn),
            QueryHint(fqdn=fqdn.lower()),
        ):
            out |= part
        return out

    def servers_for_domain(self, sld: str) -> set[int]:
        """Distinct serverIPs observed for the whole organization."""
        out: set[int] = set()
        for part in self._run_sources(
            lambda db, _m, _lr, _base: db.servers_for_domain(sld),
            QueryHint(sld=sld.lower()),
        ):
            out |= part
        return out

    def fqdns_for_servers(self, servers: Iterable[int]) -> set[str]:
        """Distinct labels delivered by the given server addresses."""
        order = list(dict.fromkeys(servers))
        out: set[str] = set()
        for part in self._run_sources(
            lambda db, _m, _lr, _base: db.fqdns_for_servers(order),
            QueryHint(servers=order),
        ):
            out |= part
        return out

    def fqdns_for_rows(self, rows) -> set[str]:
        """Distinct labels among the flows of a global row-index set."""
        out: set[str] = set()
        for part in self._run_sources(
            lambda db, _m, local_rows, _base: db.fqdns_for_rows(
                local_rows
            ),
            rows=rows,
        ):
            out |= part
        return out

    # -- grouped aggregations ----------------------------------------------

    def fqdn_server_counts(self, rows=None) -> list[tuple[int, int, int]]:
        """Deduped ``(fqdn_id, server_ip, flow_count)`` groups (global
        ids), merged across segments."""
        return self._merged_pairs("fqdn_server_counts", rows)

    def fqdn_client_counts(self, rows=None) -> list[tuple[int, int, int]]:
        """Deduped ``(fqdn_id, client_ip, flow_count)`` groups."""
        return self._merged_pairs("fqdn_client_counts", rows)

    def fqdn_flow_byte_totals(
        self, rows=None
    ) -> list[tuple[int, int, int, int]]:
        """Per-label ``(fqdn_id, flows, bytes_up, bytes_down)`` totals."""

        def kernel(db, fqdn_map, local_rows, _base):
            return [
                (fqdn_map[fqdn_id], flows, up, down)
                for fqdn_id, flows, up, down in db.fqdn_flow_byte_totals(
                    local_rows
                )
            ]

        merged: dict[int, list[int]] = {}
        for part in self._run_sources(kernel, rows=rows):
            for fqdn_id, flows, up, down in part:
                bucket = merged.get(fqdn_id)
                if bucket is None:
                    merged[fqdn_id] = [flows, up, down]
                else:
                    bucket[0] += flows
                    bucket[1] += up
                    bucket[2] += down
        return [
            (fqdn_id, flows, up, down)
            for fqdn_id, (flows, up, down) in sorted(merged.items())
        ]

    def server_flow_counts(self, rows=None) -> dict[int, int]:
        """Flow count per serverIP over ``rows`` (default: all flows)."""
        merged: dict[int, int] = {}
        for part in self._run_sources(
            lambda db, _m, local_rows, _base: db.server_flow_counts(
                local_rows
            ),
            rows=rows,
        ):
            for server, count in part.items():
                merged[server] = merged.get(server, 0) + count
        return dict(sorted(merged.items()))

    def unique_servers_per_bin(
        self, sld: str, bin_seconds: float
    ) -> list[tuple[float, int]]:
        """Fig. 4 series: distinct serverIPs per time bin for one 2LD,
        gap-filled — deduped across segments before counting."""

        def kernel(db, _m, _lr, _base):
            rows = db.rows_for_domain(sld)
            if not len(rows):
                return []
            return db.bin_server_pairs(rows, bin_seconds)

        pairs: set[tuple[int, int]] = set()
        for part in self._run_sources(kernel, QueryHint(sld=sld.lower())):
            pairs.update(part)
        if not pairs:
            return []
        per_bin: dict[int, int] = {}
        for bin_index, _server in pairs:
            per_bin[bin_index] = per_bin.get(bin_index, 0) + 1
        lo, hi = min(per_bin), max(per_bin)
        return [
            (index * bin_seconds, per_bin.get(index, 0))
            for index in range(lo, hi + 1)
        ]

    def server_bins_for_fqdn(
        self, fqdn: str, bin_seconds: float
    ) -> list[tuple[int, int]]:
        """Deduped ``(bin_index, server_ip)`` pairs for one FQDN."""
        pairs: set[tuple[int, int]] = set()
        for part in self._run_sources(
            lambda db, _m, _lr, _base: db.server_bins_for_fqdn(
                fqdn, bin_seconds
            ),
            QueryHint(fqdn=fqdn.lower()),
        ):
            pairs.update(part)
        return sorted(pairs)

    def fqdn_bin_pairs(
        self, bin_seconds: float, rows=None
    ) -> list[tuple[int, int]]:
        """Deduped ``(fqdn_id, bin_index)`` activity pairs (global ids)."""

        def kernel(db, fqdn_map, local_rows, _base):
            return [
                (fqdn_map[fqdn_id], bin_index)
                for fqdn_id, bin_index in db.fqdn_bin_pairs(
                    bin_seconds, local_rows
                )
            ]

        pairs: set[tuple[int, int]] = set()
        for part in self._run_sources(kernel, rows=rows):
            pairs.update(part)
        return sorted(pairs)

    def fqdn_first_seen(self, rows=None) -> dict[int, float]:
        """Earliest flow start per (global) interned label."""

        def kernel(db, fqdn_map, local_rows, _base):
            return [
                (fqdn_map[fqdn_id], start)
                for fqdn_id, start in db.fqdn_first_seen(
                    local_rows
                ).items()
            ]

        merged: dict[int, float] = {}
        for part in self._run_sources(kernel, rows=rows):
            for global_id, start in part:
                if global_id not in merged or start < merged[global_id]:
                    merged[global_id] = start
        return dict(sorted(merged.items()))

    def server_fqdn_bin_triples(
        self, bin_seconds: float, rows=None
    ) -> list[tuple[int, int, int]]:
        """Deduped ``(server_ip, fqdn_id, bin_index)`` triples."""

        def kernel(db, fqdn_map, local_rows, _base):
            return [
                (server, fqdn_map[fqdn_id], bin_index)
                for server, fqdn_id, bin_index in db.server_fqdn_bin_triples(
                    bin_seconds, local_rows
                )
            ]

        triples: set[tuple[int, int, int]] = set()
        for part in self._run_sources(kernel, rows=rows):
            triples.update(part)
        return sorted(triples)

    def sld_flow_stats(self, rows) -> list[tuple[int, int, int]]:
        """Per-organization ``(sld_id, flows, distinct_fqdns)`` over the
        labeled flows of ``rows`` (global sld ids)."""

        def kernel(db, fqdn_map, local_rows, _base):
            return [
                (fqdn_map[fqdn_id], flows)
                for fqdn_id, flows, _up, _down in db.fqdn_flow_byte_totals(
                    local_rows
                )
            ]

        per_fqdn: dict[int, int] = {}
        for part in self._run_sources(kernel, rows=rows):
            for global_id, flows in part:
                per_fqdn[global_id] = per_fqdn.get(global_id, 0) + flows
        sld_map = self._interns._fqdn_sld
        flow_counts: dict[int, int] = {}
        fqdn_counts: dict[int, int] = {}
        for fqdn_id, flows in per_fqdn.items():
            sld_id = sld_map[fqdn_id]
            flow_counts[sld_id] = flow_counts.get(sld_id, 0) + flows
            fqdn_counts[sld_id] = fqdn_counts.get(sld_id, 0) + 1
        return [
            (sld_id, count, fqdn_counts[sld_id])
            for sld_id, count in sorted(flow_counts.items())
        ]

    # -- stats -------------------------------------------------------------

    def __len__(self) -> int:
        with self._mutex:
            return sum(
                reader.n_rows for reader in self._segments
            ) + len(self._tail)

    def __iter__(self) -> Iterator[FlowRecord]:
        for _base, db, _m in self._each():
            yield from db

    @property
    def tagged_count(self) -> int:
        """Number of flows carrying a label (segment summaries + live
        tail — no segment is materialized for this)."""
        segments, tail, _tail_map = self._view()
        total = sum(
            reader.summary()["tagged_rows"] for reader in segments
        )
        with self._mutex:
            return total + tail.tagged_count

    def count_by_protocol(self) -> dict[Protocol, int]:
        """Flow counts per layer-7 protocol (summaries + live tail)."""
        segments, tail, _tail_map = self._view()
        with self._mutex:
            totals = list(tail._protocol_counts)
        for reader in segments:
            for index, count in enumerate(
                reader.summary()["protocol_counts"]
            ):
                totals[index] += count
        return {
            PROTOCOLS[index]: count
            for index, count in enumerate(totals)
            if count
        }

    def time_span(self) -> tuple[float, float]:
        """(earliest start, latest end) across all rows (summaries +
        live tail)."""
        segments, tail, _tail_map = self._view()
        rows = 0
        lo = float("inf")
        hi = float("-inf")
        for reader in segments:
            rows += reader.n_rows
            summary = reader.summary()
            if summary["min_start"] < lo:
                lo = summary["min_start"]
            if summary["max_end"] > hi:
                hi = summary["max_end"]
        with self._mutex:
            if len(tail):
                rows += len(tail)
                start, end = tail.time_span()
                if start < lo:
                    lo = start
                if end > hi:
                    hi = end
        if not rows:
            return (0.0, 0.0)
        return (lo, hi)


class FlowStore(_StoreReadMixin):
    """Durable Flow Database: sealed segments plus a live in-memory tail.

    ``FlowStore(directory)`` opens (or creates) a store.  Ingestion
    (:meth:`add`, :meth:`add_all`, :meth:`ingest_batch`) lands in an
    in-memory :class:`FlowDatabase` tail and spills to a new segment
    whenever the tail reaches ``spill_rows`` rows (or, if given,
    ``spill_bytes`` of column/label data).  :meth:`flush` seals the
    tail explicitly; :meth:`compact` merges segment runs.

    Every read method of the in-memory ``FlowDatabase`` is available
    and answers over *all* rows — sealed and live alike: string-keyed
    queries run per segment and concatenate in row order; id-keyed
    grouped aggregations run per segment on local ids, remap through
    per-segment id maps onto one global intern table (built from the
    segment string tables in segment order, which reproduces global
    first-appearance order) and merge.  The analytics layer therefore
    runs unchanged on a store that never held the dataset in one piece.

    Two execution knobs (both answer-preserving):

    * ``prune`` (default True) — skip sealed segments whose footer
      metadata (:class:`SegmentMeta`) proves they cannot contribute to
      a label/domain/server/time-window query, *before* any column is
      read.  ``prune=False`` restores the PR4 scan-everything pass —
      the differential baseline the property suite compares against.
    * ``parallel=N`` — run the surviving per-segment kernels on an
      ``N``-thread pool and merge partials in segment order, so
      results are bit-identical to the serial pass.  Threads (not
      processes) because the kernels live in numpy reductions,
      ``frombytes`` bulk copies and file reads — all GIL-releasing —
      and because the merged results then need no pickling.
    """

    def __init__(
        self,
        directory,
        spill_rows: Optional[int] = None,
        spill_bytes: Optional[int] = None,
        cache_segments: bool = True,
        parallel: Optional[int] = None,
        prune: bool = True,
        wal: bool = True,
        wal_sync: bool = True,
        strict: bool = False,
    ):
        if spill_rows is None:
            spill_rows = DEFAULT_SPILL_ROWS
        if spill_rows <= 0:
            raise ValueError("spill_rows must be positive")
        if spill_bytes is not None and spill_bytes <= 0:
            raise ValueError("spill_bytes must be positive")
        if parallel is None:
            parallel = 1
        if parallel <= 0:
            raise ValueError("parallel must be positive")
        self.directory = Path(directory)
        self.spill_rows = spill_rows
        self.spill_bytes = spill_bytes
        #: True (default) keeps materialized segments cached for the
        #: next query — right when the dataset fits and queries repeat
        #: (the experiments sweep).  False streams every whole-store
        #: pass load→merge→release, holding one segment at a time —
        #: right for larger-than-memory stores.
        self.cache_segments = cache_segments
        self.parallel = parallel
        self.prune = prune
        #: wal (default True) journals every acknowledged ingest into
        #: ``tail.wal`` before it lands in the in-memory tail, so a
        #: crash loses nothing that was acknowledged.  ``wal_sync=False``
        #: skips the per-record fsync (crash-consistent against process
        #: death but not power loss).  A surviving current-epoch journal
        #: is replayed at open even with ``wal=False`` — durability is
        #: only ever dropped going forward, never retroactively.
        self.wal_enabled = wal
        #: strict=True restores PR4/PR5 hard-fail opens: any segment
        #: that fails validation raises ``StorageError``.  The default
        #: quarantines it and degrades gracefully (see :meth:`health`).
        self.strict = strict
        self._pool = None                # lazily-built thread pool
        #: Store mutex (single writer, many readers).  Readers hold it
        #: only for view capture and tail kernels; sealed-segment scans
        #: run lock-free.  Reentrant because a tail kernel may call
        #: back into helpers that take it again.
        self._mutex = threading.RLock()
        #: Snapshot bookkeeping: the generation bumps on every member
        #: set change (seal, compact); pins count live readers per
        #: generation; retired holds (generation, path) of compacted
        #: segment files whose unlink waits for the last older pin.
        self._generation = 0
        self._pins: dict[int, int] = {}
        self._retired: list[tuple[int, Path]] = []
        #: Shared pruning counters behind the /metrics prune hit-rate.
        self._scan_stats = {
            "queries": 0, "segments_scanned": 0, "segments_pruned": 0,
        }
        self._writer = SegmentWriter(self.directory)
        self._interns = FlowDatabase()   # global id tables only (0 rows)
        self._segments: list[SegmentReader] = []
        self._tail = FlowDatabase()
        self._tail_map = array("i")      # tail-local fqdn id -> global
        self._tail_label_bytes = 0       # incremental tail_bytes() state
        self._tail_label_count = 0
        manifest = self._read_manifest()
        self._wal_epoch: int = manifest["wal_epoch"]
        self._quarantined: list[dict] = manifest["quarantined"]
        self._swept_tmp = self._sweep_tmp_files()
        newly_quarantined = False
        for name in manifest["segments"]:
            try:
                reader = SegmentReader.open(self.directory / name)
            except StorageError as exc:
                if self.strict:
                    raise
                self._quarantine_segment(name, exc)
                newly_quarantined = True
                continue
            reader.fqdn_map = _map_local_fqdns(self._interns, reader.labels)
            self._segments.append(reader)
        self._wal = TailJournal(
            self.directory / WAL_NAME, self._wal_epoch, sync=wal_sync
        )
        self._wal_report: dict = {}
        self._recover_wal()
        if newly_quarantined:
            # Commit the drop: the manifest stops listing the segment
            # and records it under "quarantined" so the degradation is
            # visible to every later open and to the CLI.
            self._write_manifest()

    # -- crash recovery / degradation --------------------------------------

    def _sweep_tmp_files(self) -> int:
        """Unlink ``*.tmp`` orphans left by a crashed atomic rename.

        They are invisible to readers (only renamed files are ever
        opened) but would otherwise accumulate forever.  Swept before
        the journal is opened so a crashed ``tail.wal.tmp`` cannot
        shadow a later reset.
        """
        swept = 0
        try:
            entries = list(self.directory.iterdir())
        except OSError:  # pragma: no cover - directory just created
            return 0
        for entry in entries:
            if not entry.name.endswith(".tmp"):
                continue
            try:
                _retry_io(
                    lambda path=entry: _io.unlink(path),
                    f"sweep {entry.name}",
                )
            except OSError as exc:  # pragma: no cover - best-effort
                logger.warning(
                    "could not sweep orphan %s: %s", entry, exc
                )
                continue
            logger.info("swept orphaned temp file %s", entry.name)
            swept += 1
        return swept

    def _quarantine_segment(self, name: str, exc: Exception) -> None:
        """Move a failed segment aside and record the degradation.

        The store stays open and serves every surviving row; the
        quarantined file keeps its bytes for post-mortem under
        ``quarantine/``.  Note the store's global row numbering shifts
        by the missing segment's rows — degraded means *smaller*, never
        *wrong*.
        """
        logger.error("quarantining segment %s: %s", name, exc)
        entry = {"name": name, "reason": str(exc)}
        source = self.directory / name
        if source.exists():
            qdir = self.directory / QUARANTINE_DIR
            try:
                qdir.mkdir(exist_ok=True)
                _retry_io(
                    lambda: _io.replace(source, qdir / name),
                    f"quarantine {name}",
                )
            except OSError as move_exc:  # pragma: no cover - best-effort
                logger.warning(
                    "could not move %s to quarantine: %s", name, move_exc
                )
                entry["reason"] += f" (quarantine move failed: {move_exc})"
        if not any(
            existing["name"] == name for existing in self._quarantined
        ):
            self._quarantined.append(entry)

    def _recover_wal(self) -> None:
        """Replay (or discard) a journal that survived the last process.

        * epoch == manifest epoch — the journal holds exactly the rows
          the manifest does not: replay into the tail, drop a torn
          trailing record.
        * epoch < manifest epoch — the crash hit between the manifest
          commit and the journal reset of a seal: every journaled row
          already lives in a committed segment; discard.
        * epoch > manifest epoch — cannot happen under the protocol
          (the epoch is bumped manifest-first); seeing it means the
          directory was tampered with, so replaying could double rows.
          Discarded (raised under ``strict=True``).
        """
        report = {
            "enabled": self.wal_enabled,
            "epoch": self._wal_epoch,
            "recovered_batches": 0,
            "recovered_rows": 0,
            "torn_bytes_dropped": 0,
            "skipped_records": 0,
            "stale_dropped": False,
        }
        self._wal_report = report
        epoch, payloads, raw = TailJournal.recover(self._wal.path)
        if raw["bytes"] == 0 and epoch is None and raw["torn_bytes"] == 0:
            return                      # no journal on disk
        if epoch is None:
            # Unreadable header: a crash during journal creation, before
            # anything was acknowledged against it.
            logger.warning(
                "dropping tail journal with unreadable header (%d bytes)",
                raw["bytes"],
            )
            report["torn_bytes_dropped"] = raw["bytes"]
            self._wal.discard()
            return
        if epoch != self._wal_epoch:
            if epoch > self._wal_epoch and self.strict:
                raise StorageError(
                    f"tail journal epoch {epoch} is ahead of manifest "
                    f"epoch {self._wal_epoch}"
                )
            level = logger.error if epoch > self._wal_epoch else logger.info
            level(
                "discarding tail journal at epoch %d (store is at %d)",
                epoch, self._wal_epoch,
            )
            report["stale_dropped"] = True
            self._wal.discard()
            return
        for payload in payloads:
            try:
                rows = self._tail.ingest_batch(payload)
            except ValueError as exc:
                # A record that fails ingest would have raised on the
                # original call too — its rows were never acknowledged.
                logger.warning(
                    "skipping unplayable tail journal record: %s", exc
                )
                report["skipped_records"] += 1
                continue
            report["recovered_batches"] += 1
            report["recovered_rows"] += rows
        report["torn_bytes_dropped"] = raw["torn_bytes"]
        if raw["torn_bytes"]:
            logger.warning(
                "dropped %d torn trailing bytes from tail journal",
                raw["torn_bytes"],
            )
        if self.wal_enabled:
            if raw["torn_bytes"]:
                self._wal.truncate_to(raw["valid_size"])
        # With wal=False the journal file is left in place: its rows are
        # live in the tail but not yet durable, and the file is only
        # discarded once flush() seals them into a committed segment.

    # -- manifest ----------------------------------------------------------

    def _read_manifest(self) -> dict:
        path = self.directory / MANIFEST_NAME
        empty = {"segments": [], "wal_epoch": 0, "quarantined": []}
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return empty
        except OSError as exc:
            raise StorageError(f"cannot read {path}: {exc}") from exc
        try:
            manifest = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise StorageError(f"malformed manifest {path}: {exc}") from exc
        if (
            not isinstance(manifest, dict)
            or manifest.get("format") not in (
                FORMAT_VERSION_V1, FORMAT_VERSION
            )
            or not isinstance(manifest.get("segments"), list)
        ):
            raise StorageError(f"unsupported manifest {path}")
        names: list[str] = []
        for entry in manifest["segments"]:
            # v1 manifests list bare names; v2 entries are objects
            # carrying a copy of the pruning metadata.  Only the name
            # is consumed here — the footer (CRC-covered) is the
            # authoritative metadata source.
            name = entry.get("name") if isinstance(entry, dict) else entry
            if (
                not isinstance(name, str)
                or not _SEGMENT_RE.match(name)
            ):
                raise StorageError(f"bad segment name {name!r} in manifest")
            names.append(name)
        # Pre-PR6 manifests carry neither key: epoch 0, nothing
        # quarantined.
        wal_epoch = manifest.get("wal_epoch", 0)
        if not isinstance(wal_epoch, int) or wal_epoch < 0:
            raise StorageError(f"bad wal_epoch {wal_epoch!r} in manifest")
        quarantined: list[dict] = []
        raw_quarantined = manifest.get("quarantined", [])
        if not isinstance(raw_quarantined, list):
            raise StorageError("bad quarantined list in manifest")
        for entry in raw_quarantined:
            if (
                not isinstance(entry, dict)
                or not isinstance(entry.get("name"), str)
                or not isinstance(entry.get("reason"), str)
            ):
                raise StorageError(
                    f"bad quarantine entry {entry!r} in manifest"
                )
            quarantined.append(
                {"name": entry["name"], "reason": entry["reason"]}
            )
        return {
            "segments": names,
            "wal_epoch": wal_epoch,
            "quarantined": quarantined,
        }

    def _write_manifest(self) -> None:
        payload = json.dumps({
            "format": FORMAT_VERSION,
            "wal_epoch": self._wal_epoch,
            "segments": [
                {
                    "name": reader.name,
                    "rows": reader.n_rows,
                    "meta": (
                        reader.meta.to_manifest()
                        if reader.meta is not None else None
                    ),
                }
                for reader in self._segments
            ],
            "quarantined": self._quarantined,
        }, indent=2) + "\n"
        _write_file_atomic(
            self.directory / MANIFEST_NAME,
            payload.encode("utf-8"),
            "manifest",
        )

    def _executor(self):
        with self._mutex:
            if self._pool is None:
                from concurrent.futures import ThreadPoolExecutor

                self._pool = ThreadPoolExecutor(
                    max_workers=self.parallel,
                    thread_name_prefix="flowstore",
                )
            return self._pool

    # -- ingestion / spilling ---------------------------------------------

    def add(self, flow: FlowRecord) -> None:
        """Insert one flow record (spills when the budget is crossed).

        With the journal enabled the flow is validated, encoded and
        durably appended to ``tail.wal`` *before* it lands in the tail
        — once ``add`` returns, the row survives a crash.
        """
        if self.wal_enabled:
            self._wal.append(_encode_flow_batch((flow,)))
        with self._mutex:
            self._tail.add(flow)
        self._maybe_spill()

    def _wal_chunk_rows(self) -> int:
        """Rows journaled per ``add_all`` record.

        A journaled chunk must land in the tail whole before a spill
        may seal it: spilling mid-chunk would strand the chunk's later
        rows in the *previous* (now stale) journal epoch and lose them
        on crash.  So spill checks happen only at chunk boundaries, and
        the chunk is sized well under both spill budgets to keep that
        granularity loss negligible.
        """
        chunk = min(4096, self.spill_rows)
        if self.spill_bytes is not None:
            chunk = min(chunk, max(1, self.spill_bytes // _ROW_BYTES))
        return chunk

    def add_all(self, flows: Iterable[FlowRecord]) -> None:
        """Insert many flow records (journaled in chunks when the WAL
        is enabled)."""
        if not self.wal_enabled:
            # self._tail rebinds on spill — re-fetch it every iteration.
            for flow in flows:
                with self._mutex:
                    self._tail.add(flow)
                self._maybe_spill()
            return
        chunk_rows = self._wal_chunk_rows()
        iterator = iter(flows)
        while True:
            chunk = list(islice(iterator, chunk_rows))
            if not chunk:
                return
            self._wal.append(_encode_flow_batch(chunk))
            with self._mutex:
                tail = self._tail
                for flow in chunk:
                    tail.add(flow)
            self._maybe_spill()

    def ingest_batch(self, payload) -> int:
        """Absorb one eventcodec tagged-flow batch (see
        :meth:`FlowDatabase.ingest_batch`); spills past the budget.

        The raw batch is journaled as-is before ingestion, so an
        acknowledged batch replays bit-identically after a crash.
        """
        if self.wal_enabled:
            self._wal.append(bytes(payload))
        with self._mutex:
            count = self._tail.ingest_batch(payload)
        self._maybe_spill()
        return count

    def tail_bytes(self) -> int:
        """Approximate byte weight of the live tail (columns + labels).

        O(1) amortized — ``_maybe_spill`` calls this per inserted flow
        when a byte budget is set, so the label-byte total is tracked
        incrementally (the intern table is append-only) instead of
        re-summed over every distinct FQDN each time.
        """
        names = self._tail._fqdn_names
        while self._tail_label_count < len(names):
            self._tail_label_bytes += len(names[self._tail_label_count])
            self._tail_label_count += 1
        return len(self._tail) * _ROW_BYTES + self._tail_label_bytes

    def _maybe_spill(self) -> None:
        tail = self._tail
        if not len(tail):
            return
        if len(tail) >= self.spill_rows or (
            self.spill_bytes is not None
            and self.tail_bytes() >= self.spill_bytes
        ):
            self.flush()

    def flush(self) -> Optional[str]:
        """Seal the live tail into a new segment; returns its file name
        (None when the tail is empty).

        The sealed tail is *released*, not cached: spilling is what
        bounds resident memory on a multi-day ingest, so the rows now
        live on disk only and rematerialize lazily if queried.

        Concurrent readers are never torn by a seal: the segment file
        is written and read back outside the mutex (readers keep the
        old view: segments + live tail), then the in-memory commit —
        append the reader, rebind an empty tail, bump the generation —
        happens atomically under the mutex.  A snapshot pinned before
        the commit keeps the *old* tail object, which is frozen forever
        after the rebind, so it still sees every row exactly once."""
        tail = self._tail
        if not len(tail):
            return None
        self._sync_tail_map()
        name = self._writer.write(tail)
        # Deliberate read-back: re-opening the file we just wrote
        # verifies the write end to end (size + CRC over what actually
        # hit the filesystem) before the manifest commits it — one
        # extra sequential read per sealed segment, page-cache warm.
        reader = SegmentReader.open(self.directory / name)
        reader.fqdn_map = self._tail_map
        with self._mutex:
            self._segments.append(reader)
            # Epoch protocol: the manifest commits the segment AND the
            # new WAL epoch in one atomic rename, and only then is the
            # journal replaced.  A crash before the manifest leaves an
            # orphan segment plus a current-epoch journal (replayed —
            # no loss); a crash after it leaves a stale-epoch journal
            # (discarded — the rows live in the committed segment, no
            # double count).
            self._wal_epoch += 1
            self._generation += 1
            self._tail = FlowDatabase()
            self._tail_map = array("i")
            self._tail_label_bytes = 0
            self._tail_label_count = 0
        self._write_manifest()
        if self.wal_enabled:
            self._wal.reset(self._wal_epoch)
        else:
            # Journal-less mode still clears a journal inherited from a
            # WAL-enabled run: its rows are sealed now.
            self._wal.epoch = self._wal_epoch
            if self._wal.path.exists():
                self._wal.discard()
        return name

    def close(self) -> None:
        """Seal any live rows and release the worker pool and journal
        handle.  The store object stays usable (both rebuild lazily on
        next use)."""
        self.flush()
        self._wal.close()
        # Close invalidates outstanding snapshots: anything retired
        # but still pinned is dropped now rather than leaked forever.
        self._drain_retired(force=True)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "FlowStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- maintenance -------------------------------------------------------

    @property
    def segments(self) -> tuple[SegmentReader, ...]:
        return tuple(self._segments)

    def release_segments(self) -> None:
        """Drop every cached in-memory segment materialization."""
        for reader in self._segments:
            reader.release()

    # -- snapshot isolation ------------------------------------------------

    def pin(self) -> "StoreSnapshot":
        """Pin the current manifest generation and return a read-only
        :class:`StoreSnapshot` over it.

        While the pin is held, :meth:`compact` defers unlinking any
        segment file retired at a later generation, so every query the
        snapshot runs sees exactly the member set of the pin instant —
        bit-identical answers no matter how many seals or compactions
        land meanwhile.  Use as a context manager::

            with store.pin() as snap:
                snap.rows_in_window(t0, t1)

        Pins are cheap (a refcount) but hold disk: release them
        promptly or compacted files accumulate.
        """
        with self._mutex:
            snapshot = StoreSnapshot(self)
            self._pins[snapshot.generation] = (
                self._pins.get(snapshot.generation, 0) + 1
            )
            return snapshot

    def unpin(self, snapshot: "StoreSnapshot") -> None:
        """Release a pin (idempotent); unlinks any retired segment
        files that were waiting on it."""
        with self._mutex:
            if snapshot._released:
                return
            snapshot._released = True
            generation = snapshot.generation
            count = self._pins.get(generation, 0) - 1
            if count > 0:
                self._pins[generation] = count
            else:
                self._pins.pop(generation, None)
        self._drain_retired()

    def _drain_retired(self, force: bool = False) -> None:
        """Unlink retired segment files no pinned reader can still see.

        A file retired at generation G is visible only to snapshots
        pinned at generations < G, so it is due for unlink once the
        oldest outstanding pin is >= G (or there are no pins at all).
        ``force=True`` drops everything regardless — :meth:`close`
        uses it, invalidating any outstanding snapshots.
        """
        with self._mutex:
            floor = min(self._pins) if self._pins else None
            due: list[Path] = []
            keep: list[tuple[int, Path]] = []
            for generation, path in self._retired:
                if force or floor is None or floor >= generation:
                    due.append(path)
                else:
                    keep.append((generation, path))
            self._retired = keep
        for path in due:
            try:
                _io.unlink(path)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass

    def compact(self, small_rows: Optional[int] = None) -> int:
        """Merge segment runs into single segments; returns the number
        of segment files removed.

        With ``small_rows=None`` every sealed segment merges into one.
        Otherwise only *adjacent* runs of two or more segments, each
        smaller than ``small_rows`` rows, are rewritten (adjacency
        preserves global row order, which the query surface relies
        on).  String-table ids are re-interned into the merged tables;
        the old files are unlinked only after the new segment is
        committed to the manifest — and, when readers hold pinned
        snapshots from an earlier generation, deferred further until
        the last such pin is released (:meth:`unpin` drains them), so
        a pinned snapshot can always rematerialize its segments.
        """
        self.flush()
        segments = self._segments
        if small_rows is None:
            runs = [(0, len(segments))] if len(segments) >= 2 else []
        else:
            runs = []
            start = None
            for index, reader in enumerate(segments):
                if reader.n_rows < small_rows:
                    if start is None:
                        start = index
                    continue
                if start is not None and index - start >= 2:
                    runs.append((start, index))
                start = None
            if start is not None and len(segments) - start >= 2:
                runs.append((start, len(segments)))
        removed = 0
        for start, stop in reversed(runs):
            run = segments[start:stop]
            name = self._writer.next_name()
            # The merge reads only sealed (immutable) files — no lock.
            _merge_segment_files(run, self.directory / name)
            merged = SegmentReader.open(self.directory / name)
            with self._mutex:
                # Interning into the shared global tables and splicing
                # the member list are the commit point for readers.
                merged.fqdn_map = _map_local_fqdns(
                    self._interns, merged.labels
                )
                segments[start:stop] = [merged]
                self._generation += 1
                retire_gen = self._generation
            self._write_manifest()
            with self._mutex:
                self._retired.extend(
                    (retire_gen, reader.path) for reader in run
                )
            # With no pins outstanding this unlinks immediately, in
            # the same order the pre-pinning code did (the crash sweep
            # counts on that); otherwise the files wait for unpin.
            self._drain_retired()
            removed += len(run) - 1
        return removed

    def health(self) -> dict:
        """Self-diagnosis of the open store.

        Reports everything graceful degradation and crash recovery did
        at open: quarantined segments (with reasons), journal recovery
        statistics (records replayed, torn bytes dropped, stale epochs
        discarded), and orphaned temp files swept.  ``status`` is
        ``"degraded"`` whenever any sealed data is missing — i.e. a
        segment sits in quarantine or a journal record could not be
        replayed — and ``"ok"`` otherwise.  Surfaced by
        ``repro-flowstore stats`` and checked (non-zero exit) by
        ``repro-flowstore verify``.
        """
        wal = dict(self._wal_report) if self._wal_report else {
            "enabled": self.wal_enabled,
            "epoch": self._wal_epoch,
            "recovered_batches": 0,
            "recovered_rows": 0,
            "torn_bytes_dropped": 0,
            "skipped_records": 0,
            "stale_dropped": False,
        }
        wal["enabled"] = self.wal_enabled
        wal["epoch"] = self._wal_epoch
        degraded = bool(self._quarantined) or bool(
            wal.get("skipped_records")
        )
        return {
            "status": "degraded" if degraded else "ok",
            "strict": self.strict,
            "quarantined_segments": [
                dict(entry) for entry in self._quarantined
            ],
            "wal": wal,
            "tmp_files_swept": self._swept_tmp,
        }

    def stats(self) -> dict:
        """Inspection summary (the ``repro-flowstore inspect``/``stats``
        payload) — per-segment format version and pruning metadata
        included, so the store is fully introspectable without reading
        any column block.

        The member set is the :meth:`_view` capture plus one pass of
        the bookkeeping counters under the store mutex — a concurrent
        seal or compaction can therefore never tear the payload (the
        segment listing, ``sealed_rows`` and ``bytes_on_disk`` always
        describe the same instant; the pre-fix code iterated the live
        ``self._segments`` list lock-free and could disagree with
        itself mid-splice)."""
        segments_view, tail, _tail_map = self._view()
        with self._mutex:
            tail_rows = len(tail)
            fqdns = len(self._interns._fqdn_names)
            slds = len(self._interns._sld_names)
            pinned = [
                {"generation": generation, "readers": readers}
                for generation, readers in sorted(self._pins.items())
            ]
            retired_pending = len(self._retired)
            scan_stats = dict(self._scan_stats)
            generation = self._generation
            wal_epoch = self._wal_epoch
        segments = [
            {
                "name": reader.name,
                "version": reader.version,
                "rows": reader.n_rows,
                "labels": reader.n_labels,
                "bytes": reader.file_size,
                "resident": reader.resident,
                "meta": (
                    reader.meta.to_manifest()
                    if reader.meta is not None else None
                ),
            }
            for reader in segments_view
        ]
        versions: dict[str, int] = {}
        for reader in segments_view:
            key = str(reader.version)
            versions[key] = versions.get(key, 0) + 1
        sealed_rows = sum(reader.n_rows for reader in segments_view)
        return {
            "directory": str(self.directory),
            "format": FORMAT_VERSION,
            "segment_versions": versions,
            "parallel": self.parallel,
            "prune": self.prune,
            "health": self.health(),
            "segments": segments,
            "sealed_rows": sealed_rows,
            "tail_rows": tail_rows,
            "rows": sealed_rows + tail_rows,
            "fqdns": fqdns,
            "slds": slds,
            "bytes_on_disk": sum(
                reader.file_size for reader in segments_view
            ),
            "wal_epoch": wal_epoch,
            "generation": generation,
            "pinned_generations": pinned,
            "retired_pending": retired_pending,
            "scan_stats": scan_stats,
        }

    def prune_report(self, hint: QueryHint) -> dict:
        """Which sealed segments a query carrying ``hint`` would scan.

        Pure metadata arithmetic — no segment is opened beyond what
        :class:`FlowStore` already validated, nothing is materialized.
        The ``repro-flowstore prune-report`` payload.  Works over the
        :meth:`_view` capture, so a concurrent seal or compaction
        cannot shift the segment list mid-report.
        """
        segments_view, tail, _tail_map = self._view()
        with self._mutex:
            tail_rows = len(tail)
        segments = []
        pruned_rows = scanned_rows = 0
        for reader in segments_view:
            admitted = not self.prune or hint.admits(reader.meta)
            segments.append({
                "name": reader.name,
                "rows": reader.n_rows,
                "version": reader.version,
                "scan": admitted,
            })
            if admitted:
                scanned_rows += reader.n_rows
            else:
                pruned_rows += reader.n_rows
        return {
            "directory": str(self.directory),
            "prune": self.prune,
            "segments": segments,
            "scanned_segments": sum(1 for s in segments if s["scan"]),
            "pruned_segments": sum(1 for s in segments if not s["scan"]),
            "scanned_rows": scanned_rows,
            "pruned_rows": pruned_rows,
            "tail_rows": tail_rows,
        }


class StoreSnapshot(_StoreReadMixin):
    """A pinned, read-only view of a :class:`FlowStore` generation.

    Constructed only via :meth:`FlowStore.pin` (under the store mutex).
    The snapshot captures the member set of the pin instant — the
    segments tuple plus the then-live tail — and answers the full
    :class:`_StoreReadMixin` query surface over exactly those rows, no
    matter how many seals or compactions the store commits afterwards:
    the pin keeps retired segment files on disk until release.

    The pin freezes the **sealed member set** (the manifest
    generation).  The captured tail is the *live* tail until the next
    seal and then frozen forever (``flush`` rebinds a fresh one), so:

    * on a quiescent store the snapshot is fully immutable;
    * under concurrent ingest, rows acknowledged after the pin remain
      visible in the captured tail until a seal freezes it — every
      answer therefore corresponds to segments + a **batch-aligned
      prefix of the acknowledged stream** (tail appends are atomic
      under the mutex), never a torn state, and never loses a row the
      pin had seen.

    Shared-state caveats (documented, deliberate):

    * the global intern tables are append-only and shared with the
      live store — :meth:`fqdns`/:meth:`slds` may list labels interned
      after the pin (ids in query results are always valid);
    * ``_scan_stats`` is shared too, so snapshot queries feed the same
      prune-hit-rate series the service exports.

    Use as a context manager; :meth:`close`/``unpin`` is idempotent.
    """

    def __init__(self, store: FlowStore):
        self._store = store
        self.generation = store._generation
        self._segments = tuple(store._segments)
        self._tail = store._tail
        self._tail_map = store._tail_map
        self._interns = store._interns
        self._mutex = store._mutex
        self._scan_stats = store._scan_stats
        self.prune = store.prune
        self.parallel = store.parallel
        self.cache_segments = store.cache_segments
        self._released = False

    def _executor(self):
        return self._store._executor()

    @property
    def released(self) -> bool:
        return self._released

    def close(self) -> None:
        self._store.unpin(self)

    def __enter__(self) -> "StoreSnapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

