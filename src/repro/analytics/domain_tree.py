"""Domain structure trees (Figures 7 and 8).

The figures draw, for one organization, the token tree of all its FQDNs
with leaves grouped by the CDN hosting them and annotated with server
counts and flow shares (e.g. ``mediaN.linkedin.com`` → Akamai, 2 servers,
17% of flows).  This module builds that tree from the flow database.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analytics.database import FlowDatabase
from repro.analytics.tokens import tokenize_label
from repro.dns.name import DomainName, second_level_domain
from repro.orgdb.ipdb import IpOrganizationDb


@dataclass
class TreeNode:
    """One token node; children keyed by the next token toward the host."""

    token: str
    children: dict[str, "TreeNode"] = field(default_factory=dict)
    flows: int = 0
    servers: set[int] = field(default_factory=set)
    cdns: dict[str, int] = field(default_factory=dict)  # cdn -> flow count

    def child(self, token: str) -> "TreeNode":
        node = self.children.get(token)
        if node is None:
            node = TreeNode(token=token)
            self.children[token] = node
        return node

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def dominant_cdn(self) -> Optional[str]:
        """The CDN carrying most of this subtree's flows."""
        if not self.cdns:
            return None
        return max(self.cdns.items(), key=lambda kv: kv[1])[0]


@dataclass
class CdnGroup:
    """Fig. 7/8 rectangular node: one CDN with servers and flow share."""

    organization: str
    servers: set[int] = field(default_factory=set)
    flows: int = 0
    fqdns: set[str] = field(default_factory=set)

    @property
    def server_count(self) -> int:
        return len(self.servers)


@dataclass
class DomainTokenTree:
    """The full figure: token tree plus per-CDN groupings."""

    organization: str
    root: TreeNode
    groups: dict[str, CdnGroup]
    total_flows: int

    def flow_share(self, cdn: str) -> float:
        group = self.groups.get(cdn)
        if group is None or self.total_flows == 0:
            return 0.0
        return group.flows / self.total_flows

    def render(self, max_depth: int = 4) -> str:
        """ASCII rendering of the tree with CDN annotations."""
        lines = [f"{self.organization}"]
        for group in sorted(
            self.groups.values(), key=lambda g: -g.flows
        ):
            share = 100.0 * self.flow_share(group.organization)
            lines.append(
                f"  [{group.organization}: servers={group.server_count} "
                f"flows={share:.0f}%]"
            )
        def _walk(node: TreeNode, depth: int) -> None:
            if depth > max_depth:
                return
            for token, child in sorted(node.children.items()):
                cdn = child.dominant_cdn() or "?"
                lines.append("    " * depth + f"{token} <{cdn}>")
                _walk(child, depth + 1)
        _walk(self.root, 1)
        return "\n".join(lines)


def build_domain_tree(
    database: FlowDatabase,
    organization: str,
    ipdb: Optional[IpOrganizationDb] = None,
) -> DomainTokenTree:
    """Build the Fig. 7/8 structure for one second-level domain.

    Token paths are built right-to-left (from the 2LD outwards), digits
    genericized to ``N`` exactly as in the figures (``media4`` →
    ``mediaN``).
    """
    sld = second_level_domain(organization)
    org_short = sld.split(".")[0]
    root = TreeNode(token=sld)
    groups: dict[str, CdnGroup] = {}
    total = 0
    # Group the organization's flows by (interned FQDN, server) on the
    # columnar store: the token path is computed once per distinct FQDN
    # and each tree node is touched once per distinct pair, with the
    # pair's flow count applied in bulk — not once per flow.
    token_paths: dict[int, list[str] | None] = {}
    owners: dict[int, str] = {}
    rows = database.rows_for_domain(sld)
    for fqdn_id, server, count in database.fqdn_server_counts(rows):
        path = token_paths.get(fqdn_id, False)
        if path is False:
            fqdn = database.fqdn_label(fqdn_id)
            try:
                labels = DomainName(fqdn).subdomain_labels
            except Exception:
                path = None
            else:
                path = []
                # Walk tokens from the label nearest the 2LD outward,
                # i.e. reversed: www.media4 -> ['media4', 'www'].
                for label in reversed(labels):
                    tokens = tokenize_label(label)
                    path.append("".join(tokens) if tokens else label)
            token_paths[fqdn_id] = path
        if path is None:
            continue
        total += count
        owner = owners.get(server)
        if owner is None:
            owner = ipdb.lookup(server) if ipdb is not None else None
            if owner is None:
                owner = "unknown"
            elif owner.lower() == org_short:
                owner = org_short.capitalize()
            owners[server] = owner
        group = groups.get(owner)
        if group is None:
            group = CdnGroup(organization=owner)
            groups[owner] = group
        group.servers.add(server)
        group.flows += count
        group.fqdns.add(database.fqdn_label(fqdn_id))
        node = root
        node.flows += count
        node.servers.add(server)
        node.cdns[owner] = node.cdns.get(owner, 0) + count
        for token_text in path:
            node = node.child(token_text)
            node.flows += count
            node.servers.add(server)
            node.cdns[owner] = node.cdns.get(owner, 0) + count
    return DomainTokenTree(
        organization=sld, root=root, groups=groups, total_flows=total
    )
