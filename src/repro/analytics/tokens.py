"""FQDN tokenization (Sec. 4.3, used by Algorithms 3 and 4).

From the paper: each FQDN is tokenized "to extract all the sub-domains
except for the TLD and second-level domain.  The tokens are further
split by considering non-alphanumeric characters as separators.  Numbers
are replaced by a generic N character."  Example from the paper:
``smtp2.mail.google.com`` → ``{smtpN, mail}``.
"""

from __future__ import annotations

import re

from repro.dns.name import DomainName, DomainNameError

_SEPARATORS = re.compile(r"[^0-9a-z]+")
_DIGIT_RUN = re.compile(r"[0-9]+")


def tokenize_label(label: str) -> list[str]:
    """Split one label on non-alphanumerics and genericize digits.

    Digit runs inside a chunk are replaced in place; a chunk that is all
    digits becomes a bare ``N``: ``smtp2`` → ``['smtpN']``,
    ``fb_client_2`` → ``['fb', 'client', 'N']``, ``12`` → ``['N']``.
    """
    chunks = [c for c in _SEPARATORS.split(label.lower()) if c]
    return [_DIGIT_RUN.sub("N", chunk) for chunk in chunks]


def tokenize_fqdn(fqdn: str) -> list[str]:
    """Tokenize a FQDN per Algorithm 4 (drop TLD and 2LD, split, digits→N).

    Returns an empty list for names with no labels above the 2LD
    (e.g. ``google.com``) and for unparseable names.
    """
    try:
        name = DomainName(fqdn)
    except DomainNameError:
        return []
    tokens: list[str] = []
    for label in name.subdomain_labels:
        tokens.extend(tokenize_label(label))
    return tokens


def tokenize_fqdn_keep_sld(fqdn: str) -> list[str]:
    """Variant keeping the 2LD's own label as the last token.

    Content discovery at organization granularity (Alg. 3 "depending on
    the desired granularity") uses this to rank organizations hosted on
    an address set: ``cdn.zynga.com`` → ``['cdn', 'zynga']``.
    """
    try:
        name = DomainName(fqdn)
    except DomainNameError:
        return []
    tokens = list(tokenize_fqdn(fqdn))
    sld_first_label = name.sld.split(".")[0]
    tokens.extend(tokenize_label(sld_first_label))
    return tokens
