"""The seed (row-oriented) Flow Database, retained as a reference.

This is the PR 0-2 implementation of :class:`FlowDatabase` — one Python
list of :class:`FlowRecord` objects plus dict-of-list indexes, with all
aggregations walking per-flow objects.  The columnar engine in
:mod:`repro.analytics.database` replaced it as the production store; this
copy stays for two jobs:

* **differential testing** — the property suite holds the columnar
  store to answer every query identically to this one on randomized
  flow sets (``tests/test_database_differential.py``);
* **benchmarking** — ``benchmarks/run_bench.py`` times the columnar
  ingest/query/analytics paths against this implementation on the same
  machine, so the committed ``BENCH_<n>.json`` speedups are
  apples-to-apples.

One deliberate deviation from the seed: ``query_by_servers`` dedupes the
``servers`` iterable before the index union.  The seed returned
duplicate rows when a server address appeared twice in the argument —
a bug, fixed here and in the columnar store alike so the two remain
differentially identical.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from repro.dns.name import second_level_domain
from repro.net.flow import FlowRecord, Protocol


class FlowDatabase:
    """Indexed row store of tagged flow records (seed implementation).

    Only tagged flows enter the domain indexes; untagged flows are kept
    (they matter for hit-ratio accounting) but are invisible to
    domain-keyed queries, matching the paper's design where the analyzer
    operates on labeled flows.
    """

    def __init__(self) -> None:
        self._flows: list[FlowRecord] = []
        self._by_fqdn: dict[str, list[int]] = defaultdict(list)
        self._by_sld: dict[str, list[int]] = defaultdict(list)
        self._by_server: dict[int, list[int]] = defaultdict(list)
        self._by_port: dict[int, list[int]] = defaultdict(list)

    # -- ingestion --------------------------------------------------------

    def add(self, flow: FlowRecord) -> None:
        """Insert one flow record and index it."""
        index = len(self._flows)
        self._flows.append(flow)
        self._by_server[flow.fid.server_ip].append(index)
        self._by_port[flow.fid.dst_port].append(index)
        if flow.fqdn:
            fqdn = flow.fqdn.lower()
            self._by_fqdn[fqdn].append(index)
            self._by_sld[second_level_domain(fqdn)].append(index)

    def add_all(self, flows: Iterable[FlowRecord]) -> None:
        """Insert many flow records."""
        for flow in flows:
            self.add(flow)

    @classmethod
    def from_flows(cls, flows: Iterable[FlowRecord]) -> "FlowDatabase":
        """Build a database from an iterable of flows."""
        database = cls()
        database.add_all(flows)
        return database

    # -- core queries (what Algorithms 2-4 call) --------------------------

    def query_by_fqdn(self, fqdn: str) -> list[FlowRecord]:
        """Flows labeled exactly ``fqdn``."""
        return [self._flows[i] for i in self._by_fqdn.get(fqdn.lower(), ())]

    def query_by_domain(self, sld: str) -> list[FlowRecord]:
        """Flows whose label falls under second-level domain ``sld``."""
        return [self._flows[i] for i in self._by_sld.get(sld.lower(), ())]

    def query_by_servers(self, servers: Iterable[int]) -> list[FlowRecord]:
        """Flows to any address in ``servers`` (duplicates ignored)."""
        out: list[FlowRecord] = []
        for server in dict.fromkeys(servers):
            out.extend(self._flows[i] for i in self._by_server.get(server, ()))
        return out

    def query_by_port(self, dst_port: int) -> list[FlowRecord]:
        """Flows to destination port ``dst_port``."""
        return [self._flows[i] for i in self._by_port.get(dst_port, ())]

    def query_in_window(self, t0: float, t1: float) -> list[FlowRecord]:
        """Flows starting in ``[t0, t1)``, in insertion order."""
        if t1 <= t0:
            return []
        return [f for f in self._flows if t0 <= f.start < t1]

    # -- aggregate views ---------------------------------------------------

    def fqdns(self) -> list[str]:
        """All distinct labels seen."""
        return list(self._by_fqdn)

    def slds(self) -> list[str]:
        """All distinct second-level domains seen."""
        return list(self._by_sld)

    def servers(self) -> list[int]:
        """All distinct server addresses seen."""
        return list(self._by_server)

    def ports(self) -> list[int]:
        """All distinct destination ports seen."""
        return list(self._by_port)

    def servers_for_fqdn(self, fqdn: str) -> set[int]:
        """Distinct serverIPs observed delivering ``fqdn``."""
        return {
            self._flows[i].fid.server_ip
            for i in self._by_fqdn.get(fqdn.lower(), ())
        }

    def servers_for_domain(self, sld: str) -> set[int]:
        """Distinct serverIPs observed for the whole organization."""
        return {
            self._flows[i].fid.server_ip
            for i in self._by_sld.get(sld.lower(), ())
        }

    def fqdns_for_servers(self, servers: Iterable[int]) -> set[str]:
        """Distinct labels delivered by the given server addresses."""
        out: set[str] = set()
        for server in servers:
            for i in self._by_server.get(server, ()):
                fqdn = self._flows[i].fqdn
                if fqdn:
                    out.add(fqdn.lower())
        return out

    def fqdns_for_domain(self, sld: str) -> set[str]:
        """Distinct FQDNs under one second-level domain."""
        return {
            self._flows[i].fqdn.lower()
            for i in self._by_sld.get(sld.lower(), ())
        }

    # -- stats -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._flows)

    def __iter__(self) -> Iterator[FlowRecord]:
        return iter(self._flows)

    @property
    def tagged_count(self) -> int:
        """Number of flows carrying a label."""
        return sum(len(v) for v in self._by_fqdn.values())

    def count_by_protocol(self) -> dict[Protocol, int]:
        """Flow counts per layer-7 protocol."""
        counts: dict[Protocol, int] = defaultdict(int)
        for flow in self._flows:
            counts[flow.protocol] += 1
        return dict(counts)

    def time_span(self) -> tuple[float, float]:
        """(earliest start, latest end) across all flows."""
        if not self._flows:
            return (0.0, 0.0)
        return (
            min(f.start for f in self._flows),
            max(f.end for f in self._flows),
        )
