"""DN-Hunter's off-line analyzer (Sec. 4 and 5 of the paper).

The analyzer mines the labeled-flows database the sniffer produced:

* :mod:`~repro.analytics.database` — the flow store with the query
  surface Algorithms 2–4 assume;
* :mod:`~repro.analytics.spatial` — Spatial Discovery (Alg. 2): which
  servers/CDNs deliver a domain;
* :mod:`~repro.analytics.content` — Content Discovery (Alg. 3): which
  domains a CDN serves;
* :mod:`~repro.analytics.tags` — Automatic Service Tag Extraction
  (Alg. 4, eq. 1): what runs on a port;
* :mod:`~repro.analytics.tokens` — the FQDN tokenizer shared by the two
  modules above;
* :mod:`~repro.analytics.tangle`, :mod:`~repro.analytics.temporal`,
  :mod:`~repro.analytics.birth`, :mod:`~repro.analytics.domain_tree`,
  :mod:`~repro.analytics.trackers`, :mod:`~repro.analytics.wordcloud` —
  the measurement analytics behind Figures 3–11;
* :mod:`~repro.analytics.anomaly` — FQDN→serverIP change detection, the
  DNS-poisoning extension the paper sketches in Sec. 4.1.
"""

from repro.analytics.database import FlowColumns, FlowDatabase
from repro.analytics.tokens import tokenize_fqdn, tokenize_label
from repro.analytics.tags import ServiceTagExtractor, TagScore
from repro.analytics.spatial import SpatialDiscovery, SpatialReport
from repro.analytics.content import ContentDiscovery, DomainShare
from repro.analytics.tangle import fanin_distribution, fanout_distribution
from repro.analytics.domain_tree import DomainTokenTree, build_domain_tree
from repro.analytics.anomaly import MappingAnomalyDetector

__all__ = [
    "FlowColumns",
    "FlowDatabase",
    "tokenize_fqdn",
    "tokenize_label",
    "ServiceTagExtractor",
    "TagScore",
    "SpatialDiscovery",
    "SpatialReport",
    "ContentDiscovery",
    "DomainShare",
    "fanout_distribution",
    "fanin_distribution",
    "DomainTokenTree",
    "build_domain_tree",
    "MappingAnomalyDetector",
]
