"""Content Discovery (Sec. 4.2, Algorithm 3).

The inverse of spatial discovery: start from a set of server addresses
(e.g. everything MaxMind attributes to Amazon EC2) and rank what they
serve — whole organizations, FQDNs, or service tokens.  Tab. 5 ("top-10
domains hosted on Amazon EC2") is this module's output.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.analytics.database import FlowDatabase
from repro.analytics.tokens import tokenize_fqdn
from repro.dns.name import second_level_domain
from repro.orgdb.ipdb import IpOrganizationDb


@dataclass(frozen=True, slots=True)
class DomainShare:
    """One hosted domain with its share of the address set's flows."""

    domain: str
    flows: int
    share: float
    fqdn_count: int


class ContentDiscovery:
    """Algorithm 3 over the flow database.

    Args:
        database: labeled flow store.
        ipdb: optional address→organization database; needed only for the
            convenience entry point that starts from a CDN *name* rather
            than an explicit address set.
    """

    def __init__(
        self, database: FlowDatabase, ipdb: Optional[IpOrganizationDb] = None
    ):
        self.database = database
        self.ipdb = ipdb

    def _servers_of_cdn(self, cdn: str) -> list[int]:
        if self.ipdb is None:
            raise ValueError("an IpOrganizationDb is required to resolve CDN names")
        cdn_lower = cdn.lower()
        return [
            server
            for server in self.database.servers()
            if (owner := self.ipdb.lookup(server)) and owner.lower() == cdn_lower
        ]

    # -- Algorithm 3 ------------------------------------------------------

    def hosted_domains(
        self, servers: Iterable[int], k: int = 10
    ) -> list[DomainShare]:
        """Top-``k`` second-level domains served by ``servers`` (Tab. 5).

        Grouped on the columnar store: one ``(sld, flows, fqdns)`` entry
        per organization instead of a per-flow scan.
        """
        database = self.database
        rows = database.rows_for_servers(servers)
        stats = database.sld_flow_stats(rows)
        total = sum(flows for _sld_id, flows, _fqdns in stats)
        ranked = sorted(
            (
                (database.sld_label(sld_id), flows, fqdn_count)
                for sld_id, flows, fqdn_count in stats
            ),
            key=lambda item: (-item[1], item[0]),
        )
        return [
            DomainShare(
                domain=domain,
                flows=count,
                share=count / total if total else 0.0,
                fqdn_count=fqdn_count,
            )
            for domain, count, fqdn_count in ranked[:k]
        ]

    def hosted_domains_of_cdn(self, cdn: str, k: int = 10) -> list[DomainShare]:
        """Tab. 5 entry point: rank domains hosted by a named CDN/cloud."""
        return self.hosted_domains(self._servers_of_cdn(cdn), k=k)

    def hosted_fqdns(self, servers: Iterable[int]) -> set[str]:
        """All FQDNs delivered by the address set (Alg. 3 line 4)."""
        return self.database.fqdns_for_servers(servers)

    def hosted_service_tokens(
        self, servers: Iterable[int], k: int = 20
    ) -> list[tuple[str, float]]:
        """Rank sub-domain tokens served by the address set.

        Uses the same log score as Alg. 4 so one chatty client cannot
        dominate; this is the "if only service tokens are used" variant
        of Alg. 3, and the word-cloud input for Fig. 10.
        """
        database = self.database
        rows = database.rows_for_servers(servers)
        per_client: dict[str, dict[int, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        token_sets: dict[int, set[str]] = {}
        for fqdn_id, client, count in database.fqdn_client_counts(rows):
            tokens = token_sets.get(fqdn_id)
            if tokens is None:
                tokens = token_sets[fqdn_id] = set(
                    tokenize_fqdn(database.fqdn_label(fqdn_id))
                )
            for token in tokens:
                per_client[token][client] += count
        scored = [
            (
                token,
                sum(math.log(count + 1) for count in clients.values()),
            )
            for token, clients in per_client.items()
        ]
        scored.sort(key=lambda item: (-item[1], item[0]))
        return scored[:k]

    def common_domains(
        self, servers_a: Iterable[int], servers_b: Iterable[int]
    ) -> set[str]:
        """Domains hosted on *both* address sets (Sec. 4.2 question iii)."""
        domains_a = {
            second_level_domain(f) for f in self.hosted_fqdns(servers_a)
        }
        domains_b = {
            second_level_domain(f) for f in self.hosted_fqdns(servers_b)
        }
        return domains_a & domains_b

    def cdn_popularity(
        self, cdns: Iterable[str]
    ) -> dict[str, tuple[int, int]]:
        """(distinct FQDNs, flows) per CDN — the Fig. 5 aggregate."""
        out: dict[str, tuple[int, int]] = {}
        for cdn in cdns:
            servers = self._servers_of_cdn(cdn)
            rows = self.database.rows_for_servers(servers)
            fqdns = self.database.fqdns_for_rows(rows)
            out[cdn] = (len(fqdns), len(rows))
        return out
