"""DNS-to-flow delay analytics (Sec. 6, Figures 12 and 13, Table 9).

* *first flow delay* — time between a DNS response and the first flow
  the client opens to any address in the answer list (Fig. 12);
* *any flow gap* — time between the response and **every** subsequent
  flow to those addresses, reflecting client cache residency (Fig. 13);
* *useless responses* — responses never followed by any flow (Tab. 9).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.net.flow import DnsObservation, FlowRecord


@dataclass
class DelayAnalysis:
    """Computed delay distributions and the useless-response fraction.

    The distributions are plain sorted tuples and every accessor is a
    ``bisect`` probe or a linear interpolation — no numpy, so the
    module imports (and answers identically) on the no-numpy CI leg.
    """

    first_flow_delays: Sequence[float]
    any_flow_gaps: Sequence[float]
    useless_fraction: float
    total_responses: int

    def __post_init__(self) -> None:
        # The accessors bisect, so the fields must be sorted; normalize
        # here so a hand-built instance is as safe as analyze_delays's
        # (already-sorted) output.
        self.first_flow_delays = tuple(sorted(self.first_flow_delays))
        self.any_flow_gaps = tuple(sorted(self.any_flow_gaps))

    def _data(self, which: str) -> Sequence[float]:
        return (
            self.first_flow_delays if which == "first" else self.any_flow_gaps
        )

    def cdf_points(
        self, which: str = "first", points: Sequence[float] = ()
    ) -> list[tuple[float, float]]:
        """CDF samples at the given delay values (seconds)."""
        data = self._data(which)
        if not len(data):
            return [(p, 0.0) for p in points]
        return [
            (float(p), bisect_right(data, p) / len(data))
            for p in points
        ]

    def fraction_within(self, seconds: float, which: str = "first") -> float:
        """P(delay <= seconds)."""
        data = self._data(which)
        if not len(data):
            return 0.0
        return bisect_right(data, seconds) / len(data)

    def percentile(self, q: float, which: str = "first") -> float:
        """The q-quantile of the chosen delay distribution (q in [0,100])
        with linear interpolation (numpy.percentile's default)."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile q must be in [0, 100]")
        data = self._data(which)
        if not len(data):
            raise ValueError("no delay samples")
        position = (q / 100.0) * (len(data) - 1)
        lower = math.floor(position)
        upper = math.ceil(position)
        fraction = position - lower
        return float(
            data[lower] + (data[upper] - data[lower]) * fraction
        )


def analyze_delays(
    observations: Iterable[DnsObservation],
    flows: Iterable[FlowRecord],
    horizon: float = float("inf"),
) -> DelayAnalysis:
    """Correlate DNS responses with subsequent flows, client by client.

    For each response, find flows from the same client to any address in
    the answer list that start after the response (within ``horizon``).
    A response with no such flow is "useless" (Tab. 9).  When several
    responses for the same (client, server) precede a flow, the flow is
    charged to the most recent one — matching the resolver's
    last-written-wins label.
    """
    # (client, server) -> sorted response timestamps
    response_times: dict[tuple[int, int], list[float]] = defaultdict(list)
    response_list: list[DnsObservation] = []
    for observation in observations:
        response_list.append(observation)
        for server in observation.answers:
            response_times[(observation.client_ip, server)].append(
                observation.timestamp
            )
    for times in response_times.values():
        times.sort()

    first_delay: dict[int, float] = {}  # response id -> first flow delay
    any_gaps: list[float] = []
    # Map each (client, server, response_ts) back to the response object id
    response_index: dict[tuple[int, int, float], int] = {}
    for rid, observation in enumerate(response_list):
        for server in observation.answers:
            response_index[
                (observation.client_ip, server, observation.timestamp)
            ] = rid

    for flow in flows:
        key = (flow.fid.client_ip, flow.fid.server_ip)
        times = response_times.get(key)
        if not times:
            continue
        position = bisect_right(times, flow.start) - 1
        if position < 0:
            continue
        response_ts = times[position]
        gap = flow.start - response_ts
        if gap > horizon:
            continue
        any_gaps.append(gap)
        rid = response_index[(key[0], key[1], response_ts)]
        if rid not in first_delay or gap < first_delay[rid]:
            first_delay[rid] = gap

    total = len(response_list)
    useless = total - len(first_delay)
    for rid, observation in enumerate(response_list):
        observation.useless = rid not in first_delay
    return DelayAnalysis(
        first_flow_delays=tuple(sorted(first_delay.values())),
        any_flow_gaps=tuple(sorted(any_gaps)),
        useless_fraction=useless / total if total else 0.0,
        total_responses=total,
    )
