"""FQDN→serverIP mapping anomaly detection (Sec. 4.1 extension).

The paper sketches this application: "consider the case of DNS cache
poisoning where a response for certain FQDN suddenly changes and is
different from what was seen by DN-Hunter in the past.  We can easily
flag this scenario as an anomaly."

The detector keeps, per FQDN, the set of organizations (per the IP→org
database) and address prefixes that historically served it.  A response
whose answers fall entirely outside the history — after a learning
period — raises an alert.  CDN churn inside the same organization does
not alert, which is what makes the signal usable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.net.flow import DnsObservation
from repro.net.ip import ip_to_str
from repro.orgdb.ipdb import IpOrganizationDb


@dataclass(frozen=True, slots=True)
class MappingAlert:
    """One raised anomaly."""

    timestamp: float
    fqdn: str
    new_answers: tuple[int, ...]
    known_orgs: frozenset[str]
    observed_org: Optional[str]

    def describe(self) -> str:
        addresses = ", ".join(ip_to_str(a) for a in self.new_answers)
        return (
            f"[{self.timestamp:.0f}s] {self.fqdn}: answers ({addresses}) "
            f"from {self.observed_org or 'unknown'} — history: "
            f"{sorted(self.known_orgs) or ['<none>']}"
        )


@dataclass
class _History:
    organizations: set[str] = field(default_factory=set)
    prefixes: set[int] = field(default_factory=set)  # /16 prefixes
    observations: int = 0


class MappingAnomalyDetector:
    """Alert when a FQDN's answers leave its historical footprint.

    Args:
        ipdb: IP→organization database; answers mapping to a known org
            for this FQDN never alert.
        min_history: observations required before alerts can fire
            (learning period).
        prefix_bits: fallback granularity when an address has no org —
            a new answer sharing a known /``prefix_bits`` prefix is
            considered consistent.
    """

    def __init__(
        self,
        ipdb: Optional[IpOrganizationDb] = None,
        min_history: int = 3,
        prefix_bits: int = 16,
    ):
        if not 0 < prefix_bits <= 32:
            raise ValueError("prefix_bits must be in (0, 32]")
        self.ipdb = ipdb
        self.min_history = min_history
        self.prefix_shift = 32 - prefix_bits
        self._history: dict[str, _History] = {}
        self.alerts: list[MappingAlert] = []

    def _org_of(self, address: int) -> Optional[str]:
        return self.ipdb.lookup(address) if self.ipdb else None

    def observe(self, observation: DnsObservation) -> Optional[MappingAlert]:
        """Feed one DNS response; return an alert if it is anomalous."""
        fqdn = observation.fqdn.lower()
        history = self._history.get(fqdn)
        if history is None:
            history = _History()
            self._history[fqdn] = history
        answer_orgs = {
            org
            for address in observation.answers
            if (org := self._org_of(address)) is not None
        }
        answer_prefixes = {
            address >> self.prefix_shift for address in observation.answers
        }
        alert = None
        mature = history.observations >= self.min_history
        if mature and observation.answers:
            org_consistent = bool(answer_orgs & history.organizations)
            prefix_consistent = bool(answer_prefixes & history.prefixes)
            if not org_consistent and not prefix_consistent:
                alert = MappingAlert(
                    timestamp=observation.timestamp,
                    fqdn=fqdn,
                    new_answers=tuple(observation.answers),
                    known_orgs=frozenset(history.organizations),
                    observed_org=next(iter(answer_orgs), None),
                )
                self.alerts.append(alert)
        # Learn from every observation, including anomalous ones —
        # a real poisoning is transient; a legitimate migration should
        # stop alerting once seen.
        history.organizations |= answer_orgs
        history.prefixes |= answer_prefixes
        history.observations += 1
        return alert

    def history_size(self) -> int:
        """Number of FQDNs with learned state."""
        return len(self._history)
