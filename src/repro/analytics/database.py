"""The labeled-flows database (the "Flow Database" of Fig. 1), columnar.

The seed implementation (retained as
:mod:`repro.analytics.database_reference`) kept one Python list of
:class:`FlowRecord` objects and answered every analytics question by
walking per-flow objects.  At the traffic volumes the ROADMAP targets
that layout makes the analyzer the bottleneck: every domain-tree,
temporal or content query pays a Python-level attribute walk per flow.

This engine stores flows as **columns** instead:

* :class:`FlowColumns` — parallel ``array`` columns (zero-copy viewable
  by numpy) for client/server address, ports, transport, start/end,
  layer-7 protocol index, byte counters and packets;
* **interned id tables** — each distinct lowercased FQDN and
  second-level domain gets a small integer id; per-flow labels are one
  ``int32`` column, and grouped analytics (domain trees, tracker
  timelines, Tab. 5/8 rollups) aggregate by id instead of re-hashing
  and re-tokenizing strings per flow;
* **index arrays** — the by-fqdn/by-sld/by-server/by-port indexes map to
  packed ``array("I")`` row-index arrays rather than lists of object
  references.

The public query surface of the seed store is preserved verbatim —
``query_by_*`` still return :class:`FlowRecord` lists (records ingested
as objects are returned as-is; records ingested from binary batches are
materialized lazily, once, on first touch) — and a set of grouped
aggregation methods is exposed on top for the vectorized analytics in
:mod:`repro.analytics.temporal`, ``spatial``, ``domain_tree``,
``trackers``, ``content``, ``tags``, ``tangle`` and ``wordcloud``.

Ingestion has two paths:

* :meth:`FlowDatabase.add` — one :class:`FlowRecord` object at a time
  (the seed API, used by tests and small tools);
* :meth:`FlowDatabase.ingest_batch` — one eventcodec flow batch
  (:mod:`repro.sniffer.eventcodec`) absorbed column-wise with **no
  per-record object churn**: the sniffer/fan-out side emits tagged-flow
  batches (``SnifferPipeline.emit_tagged_batches`` or
  ``FanoutPipeline(collect_flows=True)``) and this store lifts the hot
  blocks straight into its columns.  This closes the sniffer→database
  arrow of Fig. 1 in the same throughput class as the event loop.

All aggregations use numpy when importable and fall back to pure-Python
loops over the same columns otherwise (the ``array``/``struct`` idiom of
:mod:`repro.sniffer.fanout`).  Addresses are IPv4 ``u32`` exactly as in
the resolver and the codec.
"""

from __future__ import annotations

import math
import struct
from array import array
from typing import Iterable, Iterator, Optional, Sequence

from repro.dns.name import second_level_domain
from repro.net.flow import FiveTuple, FlowRecord, Protocol, TransportProto
from repro.sniffer.eventcodec import (
    BatchView,
    CodecError,
    FLOW_COLD,
    FLOW_HOT,
    PROTOCOL_INDEX,
    PROTOCOLS,
    STR_LEN,
)

_TRANSPORTS = frozenset(int(t) for t in TransportProto)

try:  # numpy accelerates grouped aggregation; optional.
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None

_NONE_STR = 0xFFFF
_EMPTY_ROWS: tuple[int, ...] = ()

if _np is not None:
    # Unaligned little-endian views of the codec's packed flow blocks.
    _HOT_DT = _np.dtype(
        {"names": ["client", "server", "start", "proto"],
         "formats": ["<u4", "<u4", "<f8", "u1"],
         "offsets": [0, 4, 8, 16], "itemsize": FLOW_HOT.size})
    _COLD_DT = _np.dtype(
        {"names": ["sport", "dport", "transport", "end", "up", "down",
                   "pkts"],
         "formats": ["<u2", "<u2", "u1", "<f8", "<u8", "<u8", "<u4"],
         "offsets": [0, 2, 4, 5, 13, 21, 29], "itemsize": FLOW_COLD.size})


class FlowColumns:
    """Parallel per-flow arrays (struct-of-arrays layout).

    Each attribute is one ``array`` column over all flows in insertion
    order; ``fqdn_id`` is ``-1`` for untagged flows and otherwise an id
    into the owning database's interned FQDN table.  numpy can view any
    column zero-copy via ``numpy.frombuffer``.
    """

    __slots__ = (
        "client_ip", "server_ip", "src_port", "dst_port", "transport",
        "start", "end", "protocol", "bytes_up", "bytes_down", "packets",
        "fqdn_id",
    )

    def __init__(self) -> None:
        self.client_ip = array("I")
        self.server_ip = array("I")
        self.src_port = array("H")
        self.dst_port = array("H")
        self.transport = array("B")
        self.start = array("d")
        self.end = array("d")
        self.protocol = array("B")   # index into PROTOCOLS
        self.bytes_up = array("Q")
        self.bytes_down = array("Q")
        self.packets = array("I")
        self.fqdn_id = array("i")    # -1 = untagged

    def __len__(self) -> int:
        return len(self.start)


def _native(values, dtype):
    """Contiguous native-endian bytes of a numpy array slice."""
    return _np.ascontiguousarray(values, dtype=dtype).tobytes()


class FlowDatabase:
    """Columnar indexed store of tagged flow records.

    Only tagged flows enter the domain indexes; untagged flows are kept
    (they matter for hit-ratio accounting) but are invisible to
    domain-keyed queries, matching the paper's design where the analyzer
    operates on labeled flows.

    Passing ``spill_dir`` constructs the durable, disk-backed variant
    instead: ``FlowDatabase(spill_dir=path, spill_rows=...)`` returns a
    :class:`repro.analytics.storage.FlowStore`, which serves the same
    query surface over an on-disk directory of columnar segments plus a
    live in-memory tail (see :mod:`repro.analytics.storage`).
    """

    def __new__(
        cls, spill_dir=None, spill_rows=None, spill_bytes=None,
        parallel=None, wal=None, strict=None,
        shards=None, shard_by=None, shard_backend=None,
    ):
        if spill_dir is not None and cls is FlowDatabase:
            if shards is not None:
                from repro.analytics.shard import ShardCoordinator

                return ShardCoordinator(
                    spill_dir, shards=shards, by=shard_by,
                    backend=(
                        "inprocess" if shard_backend is None
                        else shard_backend
                    ),
                    spill_rows=spill_rows, spill_bytes=spill_bytes,
                    parallel=parallel,
                    wal=True if wal is None else wal,
                    strict=bool(strict),
                )
            from repro.analytics.storage import FlowStore

            return FlowStore(
                spill_dir, spill_rows=spill_rows, spill_bytes=spill_bytes,
                parallel=parallel,
                wal=True if wal is None else wal,
                strict=bool(strict),
            )
        return super().__new__(cls)

    def __init__(
        self, spill_dir=None, spill_rows=None, spill_bytes=None,
        parallel=None, wal=None, strict=None,
        shards=None, shard_by=None, shard_backend=None,
    ) -> None:
        # spill_*/parallel/wal/strict are consumed by __new__ (which
        # builds a FlowStore and never reaches this initializer).
        # Reaching here with spill_dir set means a subclass asked for
        # durability the factory cannot provide — ignoring it would
        # silently drop data on the floor.
        if spill_dir is not None:
            raise TypeError(
                f"spill_dir is only supported on FlowDatabase itself; "
                f"construct repro.analytics.storage.FlowStore directly "
                f"for {type(self).__name__}"
            )
        if parallel is not None:
            raise TypeError(
                "parallel applies to the durable store only; pass "
                "spill_dir too (or construct FlowStore directly)"
            )
        if wal is not None or strict is not None:
            raise TypeError(
                "wal/strict apply to the durable store only; pass "
                "spill_dir too (or construct FlowStore directly)"
            )
        if shards is not None or shard_by is not None \
                or shard_backend is not None:
            raise TypeError(
                "shards/shard_by/shard_backend apply to the durable "
                "store only; pass spill_dir too (or construct "
                "repro.analytics.shard.ShardCoordinator directly)"
            )
        self.columns = FlowColumns()
        # Lazily-materialized record cache: object-ingested rows hold
        # the original record, batch-ingested rows start as None.
        self._records: list[Optional[FlowRecord]] = []
        # True while every row of _records holds a real record (no
        # batch-ingested rows pending lazy materialization) — lets
        # _materialize skip the per-row None check entirely, which is
        # the bulk of a record query on an object-ingested store.
        self._all_records = True
        self._raw_fqdns: list[Optional[str]] = []   # original-case label
        self._cert_names: list[Optional[str]] = []
        self._true_fqdns: list[Optional[str]] = []
        # Interned id tables.
        self._fqdn_names: list[str] = []            # id -> lowercased FQDN
        self._fqdn_ids: dict[str, int] = {}
        self._fqdn_sld = array("i")                 # fqdn id -> sld id
        self._sld_names: list[str] = []
        self._sld_ids: dict[str, int] = {}
        self._sld_fqdns: list[array] = []           # sld id -> fqdn ids
        self._raw_cache: dict[bytes, tuple[int, str]] = {}
        # Row-index arrays.
        self._by_fqdn: dict[int, array] = {}        # fqdn id -> rows
        self._by_sld: dict[int, array] = {}         # sld id -> rows
        self._by_server: dict[int, array] = {}
        self._by_port: dict[int, array] = {}
        self._tagged = array("I")                   # rows with a label
        # Incremental statistics (no full scans on access).
        self._protocol_counts = [0] * len(PROTOCOLS)
        self._min_start = float("inf")
        self._max_end = float("-inf")

    # -- interning ---------------------------------------------------------

    def _intern_fqdn(self, lowered: str) -> int:
        """Id of ``lowered`` (a lowercased FQDN), creating it if new."""
        fqdn_id = self._fqdn_ids.get(lowered)
        if fqdn_id is None:
            fqdn_id = len(self._fqdn_names)
            self._fqdn_ids[lowered] = fqdn_id
            self._fqdn_names.append(lowered)
            sld = second_level_domain(lowered)
            sld_id = self._sld_ids.get(sld)
            if sld_id is None:
                sld_id = len(self._sld_names)
                self._sld_ids[sld] = sld_id
                self._sld_names.append(sld)
                self._by_sld[sld_id] = array("I")
                self._sld_fqdns.append(array("i"))
            self._fqdn_sld.append(sld_id)
            self._sld_fqdns[sld_id].append(fqdn_id)
            self._by_fqdn[fqdn_id] = array("I")
        return fqdn_id

    def fqdn_label(self, fqdn_id: int) -> str:
        """The lowercased FQDN behind an interned id."""
        return self._fqdn_names[fqdn_id]

    def sld_label(self, sld_id: int) -> str:
        """The second-level domain behind an interned id."""
        return self._sld_names[sld_id]

    def sld_of_fqdn(self, fqdn_id: int) -> int:
        """Interned sld id of an interned FQDN id."""
        return self._fqdn_sld[fqdn_id]

    # -- ingestion ---------------------------------------------------------

    def add(self, flow: FlowRecord) -> None:
        """Insert one flow record and index it.

        The columnar store enforces the codec's field ranges (u32
        addresses/packets, u16 ports, u64 byte counters) — the ranges
        every wire-derived flow satisfies.  An out-of-range record is
        rejected atomically with ``ValueError`` *before* any column is
        touched; the parallel arrays can never desynchronize.
        """
        fid = flow.fid
        proto_idx = PROTOCOL_INDEX.get(flow.protocol)
        if proto_idx is None:
            raise ValueError(f"unknown protocol {flow.protocol!r}")
        if not (math.isfinite(flow.start) and math.isfinite(flow.end)):
            # A NaN/inf timestamp would poison the incremental min/max
            # statistics and the durable store's segment time ranges —
            # window pruning could then silently drop valid rows.
            raise ValueError("non-finite flow timestamp")
        fqdn = flow.fqdn
        lowered = fqdn.lower() if fqdn else None
        try:
            # Validate-before-mutate: the codec structs share the
            # columns' exact ranges and raise without side effects.
            FLOW_HOT.pack(fid.client_ip, fid.server_ip, flow.start,
                          proto_idx)
            FLOW_COLD.pack(fid.src_port, fid.dst_port, fid.proto,
                           flow.end, flow.bytes_up, flow.bytes_down,
                           flow.packets)
        except struct.error as exc:
            raise ValueError(f"flow field out of range: {exc}") from exc
        row = len(self._records)
        cols = self.columns
        cols.client_ip.append(fid.client_ip)
        cols.server_ip.append(fid.server_ip)
        cols.src_port.append(fid.src_port)
        cols.dst_port.append(fid.dst_port)
        cols.transport.append(fid.proto)
        cols.start.append(flow.start)
        cols.end.append(flow.end)
        cols.protocol.append(proto_idx)
        cols.bytes_up.append(flow.bytes_up)
        cols.bytes_down.append(flow.bytes_down)
        cols.packets.append(flow.packets)
        self._protocol_counts[proto_idx] += 1
        if fqdn:
            fqdn_id = self._intern_fqdn(lowered)
            self._by_fqdn[fqdn_id].append(row)
            self._by_sld[self._fqdn_sld[fqdn_id]].append(row)
            self._tagged.append(row)
        else:
            fqdn_id = -1
        cols.fqdn_id.append(fqdn_id)
        self._raw_fqdns.append(fqdn)
        self._cert_names.append(flow.cert_name)
        self._true_fqdns.append(flow.true_fqdn)
        self._records.append(flow)
        index = self._by_server.get(fid.server_ip)
        if index is None:
            index = self._by_server[fid.server_ip] = array("I")
        index.append(row)
        index = self._by_port.get(fid.dst_port)
        if index is None:
            index = self._by_port[fid.dst_port] = array("I")
        index.append(row)
        if flow.start < self._min_start:
            self._min_start = flow.start
        if flow.end > self._max_end:
            self._max_end = flow.end

    def add_all(self, flows: Iterable[FlowRecord]) -> None:
        """Insert many flow records."""
        add = self.add
        for flow in flows:
            add(flow)

    @classmethod
    def from_flows(cls, flows: Iterable[FlowRecord]) -> "FlowDatabase":
        """Build a database from an iterable of flows."""
        database = cls()
        database.add_all(flows)
        return database

    # -- batch ingestion (the sniffer→database deployment format) ---------

    def ingest_batch(self, payload) -> int:
        """Absorb one eventcodec batch of tagged flows, column-wise.

        ``payload`` is an encoded batch as produced by
        ``SnifferPipeline.emit_tagged_batches`` /
        ``FanoutPipeline(collect_flows=True)`` (or any
        :func:`repro.sniffer.eventcodec.encode_events` call).  Flow
        blocks are lifted straight into the columns — no
        :class:`FlowRecord` objects are created; queries materialize
        records lazily on first touch.  DNS records in the batch are
        ignored (the Flow Database stores flows).  Returns the number of
        flows ingested.

        Ingestion is atomic with respect to malformed input: every
        variable-length block is parsed (``CodecError`` on truncation
        or bad UTF-8) before the first shared structure is touched, so
        a rejected batch leaves the store exactly as it was.
        """
        view = BatchView(payload)
        n = view.n_flows
        if not n:
            return 0
        # Parse-then-commit: every block is validated into locals
        # first; the commit phase below cannot fail partway.
        self._validate_flow_numeric(view)
        entries = self._parse_flow_strings(view, n)
        base = len(self._records)
        if _np is not None:
            self._ingest_hot_cold_numpy(view)
        else:
            self._ingest_hot_cold_python(view)
        fqdn_ids = self._commit_flow_strings(entries)
        self._index_batch(view, fqdn_ids, base, n)
        self._records.extend([None] * n)
        self._all_records = False
        return n

    @classmethod
    def from_batches(cls, payloads: Iterable) -> "FlowDatabase":
        """Build a database from encoded tagged-flow batches."""
        database = cls()
        for payload in payloads:
            database.ingest_batch(payload)
        return database

    def _ingest_hot_cold_numpy(self, view: BatchView) -> None:
        hot = _np.frombuffer(view.flow_hot, dtype=_HOT_DT)
        cold = _np.frombuffer(view.flow_cold, dtype=_COLD_DT)
        cols = self.columns
        cols.client_ip.frombytes(_native(hot["client"], _np.uint32))
        cols.server_ip.frombytes(_native(hot["server"], _np.uint32))
        cols.start.frombytes(_native(hot["start"], _np.float64))
        cols.protocol.frombytes(_native(hot["proto"], _np.uint8))
        cols.src_port.frombytes(_native(cold["sport"], _np.uint16))
        cols.dst_port.frombytes(_native(cold["dport"], _np.uint16))
        cols.transport.frombytes(_native(cold["transport"], _np.uint8))
        cols.end.frombytes(_native(cold["end"], _np.float64))
        cols.bytes_up.frombytes(_native(cold["up"], _np.uint64))
        cols.bytes_down.frombytes(_native(cold["down"], _np.uint64))
        cols.packets.frombytes(_native(cold["pkts"], _np.uint32))
        counts = _np.bincount(hot["proto"], minlength=len(PROTOCOLS))
        for index, count in enumerate(counts.tolist()):
            self._protocol_counts[index] += count
        self._min_start = min(self._min_start, float(hot["start"].min()))
        self._max_end = max(self._max_end, float(cold["end"].max()))

    def _ingest_hot_cold_python(self, view: BatchView) -> None:
        cols = self.columns
        protocol_counts = self._protocol_counts
        min_start, max_end = self._min_start, self._max_end
        for (client, server, start, proto), (
            sport, dport, transport, end, up, down, pkts
        ) in zip(
            FLOW_HOT.iter_unpack(view.flow_hot),
            FLOW_COLD.iter_unpack(view.flow_cold),
        ):
            cols.client_ip.append(client)
            cols.server_ip.append(server)
            cols.start.append(start)
            cols.protocol.append(proto)
            cols.src_port.append(sport)
            cols.dst_port.append(dport)
            cols.transport.append(transport)
            cols.end.append(end)
            cols.bytes_up.append(up)
            cols.bytes_down.append(down)
            cols.packets.append(pkts)
            protocol_counts[proto] += 1
            if start < min_start:
                min_start = start
            if end > max_end:
                max_end = end
        self._min_start, self._max_end = min_start, max_end

    @staticmethod
    def _validate_flow_numeric(view: BatchView) -> None:
        """Reject out-of-range protocol/transport bytes before commit.

        The codec packs the layer-7 protocol as an index into
        ``PROTOCOLS`` and the transport as an IP protocol number; a
        corrupted batch must fail with :class:`CodecError` while the
        store is still untouched, not with an ``IndexError`` halfway
        through the column extension (or a deferred ``ValueError`` at
        first lazy materialization).
        """
        if _np is not None:
            if not view.n_flows:
                return
            hot = _np.frombuffer(view.flow_hot, dtype=_HOT_DT)
            cold = _np.frombuffer(view.flow_cold, dtype=_COLD_DT)
            if int(hot["proto"].max()) >= len(PROTOCOLS):
                raise CodecError("protocol index out of range")
            if not _np.isin(
                cold["transport"], list(_TRANSPORTS)
            ).all():
                raise CodecError("invalid transport protocol number")
            if not (
                _np.isfinite(hot["start"]).all()
                and _np.isfinite(cold["end"]).all()
            ):
                raise CodecError("non-finite flow timestamp")
            return
        n_protocols = len(PROTOCOLS)
        isfinite = math.isfinite
        for _c, _s, start, proto in FLOW_HOT.iter_unpack(view.flow_hot):
            if proto >= n_protocols:
                raise CodecError("protocol index out of range")
            if not isfinite(start):
                raise CodecError("non-finite flow timestamp")
        for fields in FLOW_COLD.iter_unpack(view.flow_cold):
            if fields[2] not in _TRANSPORTS:
                raise CodecError("invalid transport protocol number")
            if not isfinite(fields[3]):
                raise CodecError("non-finite flow timestamp")

    def _parse_flow_strings(
        self, view: BatchView, n: int
    ) -> list[tuple]:
        """Validate and decode the per-flow string block into locals.

        Returns one ``(fqdn_entry, cert_name, true_fqdn)`` tuple per
        flow, where ``fqdn_entry`` is ``None`` (untagged), an already-
        interned ``(fqdn_id, text)`` pair from the raw-bytes cache, or
        a pending ``(raw_bytes, text)`` pair the commit phase interns.
        Raises :class:`~repro.sniffer.eventcodec.CodecError` on
        truncation or bad UTF-8 — without touching any shared state.
        """
        # One bytes copy up front: slicing/unpacking bytes is cheaper
        # than going through the memoryview per field.
        flow_str = bytes(view.flow_str)
        total = len(flow_str)
        unpack = STR_LEN.unpack_from
        raw_cache = self._raw_cache
        entries: list[tuple] = []
        append = entries.append
        pos = 0
        try:
            for _ in range(n):
                (length,) = unpack(flow_str, pos)
                pos += 2
                if length == _NONE_STR:
                    fqdn_entry = None
                else:
                    stop = pos + length
                    if stop > total:
                        raise CodecError("truncated flow_str block")
                    raw = flow_str[pos:stop]
                    pos = stop
                    fqdn_entry = raw_cache.get(raw)
                    if fqdn_entry is None:
                        fqdn_entry = (raw, raw.decode("utf-8"))
                cold_strings = []
                for _ in range(2):
                    (length,) = unpack(flow_str, pos)
                    pos += 2
                    if length == _NONE_STR:
                        cold_strings.append(None)
                    else:
                        stop = pos + length
                        if stop > total:
                            raise CodecError("truncated flow_str block")
                        cold_strings.append(
                            flow_str[pos:stop].decode("utf-8")
                        )
                        pos = stop
                append((fqdn_entry, cold_strings[0], cold_strings[1]))
        except struct.error as exc:
            raise CodecError(f"truncated flow_str block: {exc}") from exc
        except UnicodeDecodeError as exc:
            raise CodecError(f"bad UTF-8 in flow_str: {exc}") from exc
        return entries

    def _commit_flow_strings(self, entries: list[tuple]) -> array:
        """Intern and append parsed string entries (cannot fail)."""
        fqdn_ids = array("i")
        raw_cache = self._raw_cache
        id_append = fqdn_ids.append
        raw_append = self._raw_fqdns.append
        cert_append = self._cert_names.append
        true_append = self._true_fqdns.append
        for fqdn_entry, cert_name, true_fqdn in entries:
            if fqdn_entry is None:
                id_append(-1)
                raw_append(None)
            else:
                first, text = fqdn_entry
                if type(first) is int:
                    fqdn_id = first
                else:
                    fqdn_id = (
                        self._intern_fqdn(text.lower()) if text else -1
                    )
                    raw_cache[first] = (fqdn_id, text)
                id_append(fqdn_id)
                raw_append(text)
            cert_append(cert_name)
            true_append(true_fqdn)
        self.columns.fqdn_id.extend(fqdn_ids)
        return fqdn_ids

    def _index_batch(
        self, view: BatchView, fqdn_ids: array, base: int, n: int
    ) -> None:
        if _np is None:
            cols = self.columns
            by_server, by_port = self._by_server, self._by_port
            by_fqdn, by_sld = self._by_fqdn, self._by_sld
            fqdn_sld = self._fqdn_sld
            tagged = self._tagged
            for offset in range(n):
                row = base + offset
                index = by_server.get(cols.server_ip[row])
                if index is None:
                    index = by_server[cols.server_ip[row]] = array("I")
                index.append(row)
                index = by_port.get(cols.dst_port[row])
                if index is None:
                    index = by_port[cols.dst_port[row]] = array("I")
                index.append(row)
                fqdn_id = fqdn_ids[offset]
                if fqdn_id >= 0:
                    by_fqdn[fqdn_id].append(row)
                    by_sld[fqdn_sld[fqdn_id]].append(row)
                    tagged.append(row)
            return
        hot = _np.frombuffer(view.flow_hot, dtype=_HOT_DT)
        cold = _np.frombuffer(view.flow_cold, dtype=_COLD_DT)
        rows = _np.arange(base, base + n, dtype=_np.uint32)
        self._extend_index(self._by_server, hot["server"], rows)
        self._extend_index(self._by_port, cold["dport"], rows)
        ids = _np.frombuffer(fqdn_ids, dtype=_np.int32)
        mask = ids >= 0
        if mask.any():
            tagged_rows = rows[mask]
            tagged_ids = ids[mask]
            self._tagged.frombytes(_native(tagged_rows, _np.uint32))
            self._extend_index(self._by_fqdn, tagged_ids, tagged_rows)
            sld_map = _np.frombuffer(self._fqdn_sld, dtype=_np.int32)
            self._extend_index(
                self._by_sld, sld_map[tagged_ids], tagged_rows
            )

    @staticmethod
    def _extend_index(index: dict, keys, rows) -> None:
        """Group ``rows`` by ``keys`` and append each group to its index
        array, creating missing keys in first-appearance order (so the
        ``servers()``/``ports()`` listings match the row store's)."""
        order = _np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        sorted_rows = rows[order]
        bounds = _np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1
        starts = [0, *bounds.tolist()]
        ends = [*bounds.tolist(), len(sorted_keys)]
        # Stable sort keeps rows ascending within a group, so the first
        # row of each group is that key's first appearance.
        groups = sorted(range(len(starts)), key=lambda g: sorted_rows[starts[g]])
        for group in groups:
            lo, hi = starts[group], ends[group]
            key = int(sorted_keys[lo])
            arr = index.get(key)
            if arr is None:
                arr = index[key] = array("I")
            arr.frombytes(_native(sorted_rows[lo:hi], _np.uint32))

    # -- record materialization -------------------------------------------

    def _record(self, row: int) -> FlowRecord:
        record = self._records[row]
        if record is None:
            cols = self.columns
            record = FlowRecord(
                fid=FiveTuple(
                    client_ip=cols.client_ip[row],
                    server_ip=cols.server_ip[row],
                    src_port=cols.src_port[row],
                    dst_port=cols.dst_port[row],
                    proto=TransportProto(cols.transport[row]),
                ),
                start=cols.start[row],
                end=cols.end[row],
                protocol=PROTOCOLS[cols.protocol[row]],
                bytes_up=cols.bytes_up[row],
                bytes_down=cols.bytes_down[row],
                packets=cols.packets[row],
                fqdn=self._raw_fqdns[row],
                cert_name=self._cert_names[row],
                true_fqdn=self._true_fqdns[row],
            )
            self._records[row] = record
        return record

    def _materialize(self, rows) -> list[FlowRecord]:
        if self._all_records:
            records = self._records
            return [records[row] for row in rows]
        record = self._record
        return [record(row) for row in rows]

    # -- row-index views (what the vectorized analytics consume) ----------

    def rows_for_fqdn(self, fqdn: str) -> Sequence[int]:
        """Row indices of flows labeled exactly ``fqdn`` (do not mutate)."""
        fqdn_id = self._fqdn_ids.get(fqdn.lower())
        return self._by_fqdn[fqdn_id] if fqdn_id is not None else _EMPTY_ROWS

    def rows_for_domain(self, sld: str) -> Sequence[int]:
        """Row indices of flows under second-level domain ``sld``."""
        sld_id = self._sld_ids.get(sld.lower())
        return self._by_sld[sld_id] if sld_id is not None else _EMPTY_ROWS

    def rows_for_port(self, dst_port: int) -> Sequence[int]:
        """Row indices of flows to destination port ``dst_port``."""
        return self._by_port.get(dst_port, _EMPTY_ROWS)

    def rows_for_servers(self, servers: Iterable[int]) -> Sequence[int]:
        """Concatenated row indices for an address set (deduped)."""
        out = array("I")
        by_server = self._by_server
        for server in dict.fromkeys(servers):
            index = by_server.get(server)
            if index is not None:
                out.extend(index)
        return out

    def rows_in_window(self, t0: float, t1: float) -> Sequence[int]:
        """Row indices of flows whose *start* falls in ``[t0, t1)``.

        The per-time-bin analytics (Figs. 3-5, 11) bin flows by start
        time; this is the matching row selector, and the primitive the
        durable store prunes segments against (a segment whose
        ``[min_start, max_start]`` misses the window is skipped
        without touching its columns).
        """
        start_col = self.columns.start
        n = len(start_col)
        if not n or t1 <= t0:
            return _EMPTY_ROWS
        if _np is not None:
            starts = _np.frombuffer(start_col, _np.float64)
            hits = _np.flatnonzero((starts >= t0) & (starts < t1))
            out = array("I")
            out.frombytes(_native(hits, _np.uint32))
            return out
        return array("I", (
            row for row in range(n) if t0 <= start_col[row] < t1
        ))

    def tagged_rows(self) -> Sequence[int]:
        """Row indices of every labeled flow (do not mutate)."""
        return self._tagged

    # -- core queries (what Algorithms 2-4 call) --------------------------

    def query_by_fqdn(self, fqdn: str) -> list[FlowRecord]:
        """Flows labeled exactly ``fqdn``."""
        return self._materialize(self.rows_for_fqdn(fqdn))

    def query_by_domain(self, sld: str) -> list[FlowRecord]:
        """Flows whose label falls under second-level domain ``sld``."""
        return self._materialize(self.rows_for_domain(sld))

    def query_by_servers(self, servers: Iterable[int]) -> list[FlowRecord]:
        """Flows to any address in ``servers`` (duplicates ignored)."""
        return self._materialize(self.rows_for_servers(servers))

    def query_by_port(self, dst_port: int) -> list[FlowRecord]:
        """Flows to destination port ``dst_port``."""
        return self._materialize(self.rows_for_port(dst_port))

    def query_in_window(self, t0: float, t1: float) -> list[FlowRecord]:
        """Flows starting in ``[t0, t1)``, in row order."""
        return self._materialize(self.rows_in_window(t0, t1))

    # -- aggregate views ---------------------------------------------------

    def fqdns(self) -> list[str]:
        """All distinct labels seen."""
        return list(self._fqdn_names)

    def slds(self) -> list[str]:
        """All distinct second-level domains seen."""
        return list(self._sld_names)

    def servers(self) -> list[int]:
        """All distinct server addresses seen."""
        return list(self._by_server)

    def ports(self) -> list[int]:
        """All distinct destination ports seen."""
        return list(self._by_port)

    def _unique_servers(self, rows) -> set[int]:
        if not len(rows):
            return set()
        if _np is not None:
            column = _np.frombuffer(self.columns.server_ip, _np.uint32)
            taken = column[_np.frombuffer(rows, _np.uint32)]
            return set(_np.unique(taken).tolist())
        column = self.columns.server_ip
        return {column[row] for row in rows}

    def servers_for_fqdn(self, fqdn: str) -> set[int]:
        """Distinct serverIPs observed delivering ``fqdn``."""
        return self._unique_servers(self.rows_for_fqdn(fqdn))

    def servers_for_domain(self, sld: str) -> set[int]:
        """Distinct serverIPs observed for the whole organization."""
        return self._unique_servers(self.rows_for_domain(sld))

    def fqdns_for_servers(self, servers: Iterable[int]) -> set[str]:
        """Distinct labels delivered by the given server addresses."""
        return self.fqdns_for_rows(self.rows_for_servers(servers))

    def fqdns_for_rows(self, rows) -> set[str]:
        """Distinct labels among the flows of a row-index set."""
        if not len(rows):
            return set()
        names = self._fqdn_names
        if _np is not None:
            column = _np.frombuffer(self.columns.fqdn_id, _np.int32)
            ids = column[_np.frombuffer(rows, _np.uint32)]
            return {
                names[fqdn_id]
                for fqdn_id in _np.unique(ids).tolist()
                if fqdn_id >= 0
            }
        column = self.columns.fqdn_id
        return {
            names[fqdn_id]
            for fqdn_id in {column[row] for row in rows}
            if fqdn_id >= 0
        }

    def fqdns_for_domain(self, sld: str) -> set[str]:
        """Distinct FQDNs under one second-level domain."""
        sld_id = self._sld_ids.get(sld.lower())
        if sld_id is None:
            return set()
        names = self._fqdn_names
        return {names[fqdn_id] for fqdn_id in self._sld_fqdns[sld_id]}

    # -- grouped aggregations (vectorized analytics backends) --------------

    def _take(self, column, rows):
        """numpy gather of ``column`` at ``rows`` (numpy path only)."""
        dtype = {
            "I": _np.uint32, "H": _np.uint16, "B": _np.uint8,
            "d": _np.float64, "Q": _np.uint64, "i": _np.int32,
        }[column.typecode]
        return _np.frombuffer(column, dtype)[
            _np.frombuffer(rows, _np.uint32)
            if isinstance(rows, array) else rows
        ]

    def _tagged_subset(self, rows):
        """(rows', fqdn_ids') restricted to labeled flows (numpy path)."""
        rows = (
            _np.frombuffer(rows, _np.uint32)
            if isinstance(rows, array) else _np.asarray(rows, _np.uint32)
        )
        ids = _np.frombuffer(self.columns.fqdn_id, _np.int32)[rows]
        mask = ids >= 0
        return rows[mask], ids[mask]

    def _fqdn_pair_counts(
        self, column, rows
    ) -> list[tuple[int, int, int]]:
        """Deduped ``(fqdn_id, column_value, flow_count)`` groups over
        the labeled flows of ``rows`` — the shared grouping core of
        :meth:`fqdn_server_counts` / :meth:`fqdn_client_counts`."""
        if rows is None:
            rows = self._tagged
        if not len(rows):
            return []
        if _np is not None:
            rows, ids = self._tagged_subset(rows)
            values = _np.frombuffer(column, _np.uint32)[rows]
            # ids < 2^31 and values < 2^32, so the packed key fits a
            # signed int64 without overflow.
            key = (ids.astype(_np.int64) << 32) | values.astype(_np.int64)
            unique, counts = _np.unique(key, return_counts=True)
            return list(zip(
                (unique >> 32).tolist(),
                (unique & 0xFFFFFFFF).tolist(),
                counts.tolist(),
            ))
        counts: dict[tuple[int, int], int] = {}
        fqdn_col = self.columns.fqdn_id
        for row in rows:
            fqdn_id = fqdn_col[row]
            if fqdn_id >= 0:
                pair = (fqdn_id, column[row])
                counts[pair] = counts.get(pair, 0) + 1
        return sorted(
            (fqdn_id, value, count)
            for (fqdn_id, value), count in counts.items()
        )

    def fqdn_server_counts(
        self, rows=None
    ) -> list[tuple[int, int, int]]:
        """Deduped ``(fqdn_id, server_ip, flow_count)`` groups.

        Grouping all labeled flows of ``rows`` (default: the whole
        store) by interned label and server collapses the per-flow work
        of the domain-tree/spatial/tangle analytics into one pass per
        *distinct* pair.
        """
        return self._fqdn_pair_counts(self.columns.server_ip, rows)

    def fqdn_client_counts(
        self, rows=None
    ) -> list[tuple[int, int, int]]:
        """Deduped ``(fqdn_id, client_ip, flow_count)`` groups.

        The Eq. 1 scorers (service tags, word cloud, token ranking)
        need per-client flow counts per label; tokenization then runs
        once per distinct FQDN instead of once per flow.
        """
        return self._fqdn_pair_counts(self.columns.client_ip, rows)

    def fqdn_flow_byte_totals(
        self, rows=None
    ) -> list[tuple[int, int, int, int]]:
        """Per-label ``(fqdn_id, flows, bytes_up, bytes_down)`` totals
        (Tab. 8-style rollups) over the labeled flows of ``rows``."""
        if rows is None:
            rows = self._tagged
        if not len(rows):
            return []
        if _np is not None:
            rows, ids = self._tagged_subset(rows)
            unique, inverse, counts = _np.unique(
                ids, return_inverse=True, return_counts=True
            )
            up = _np.bincount(
                inverse,
                weights=self._take(self.columns.bytes_up, rows),
            )
            down = _np.bincount(
                inverse,
                weights=self._take(self.columns.bytes_down, rows),
            )
            return [
                (int(fqdn_id), int(count), int(u), int(d))
                for fqdn_id, count, u, d in zip(
                    unique.tolist(), counts.tolist(),
                    up.tolist(), down.tolist(),
                )
            ]
        totals: dict[int, list[int]] = {}
        cols = self.columns
        for row in rows:
            fqdn_id = cols.fqdn_id[row]
            if fqdn_id < 0:
                continue
            bucket = totals.get(fqdn_id)
            if bucket is None:
                bucket = totals[fqdn_id] = [0, 0, 0]
            bucket[0] += 1
            bucket[1] += cols.bytes_up[row]
            bucket[2] += cols.bytes_down[row]
        return sorted(
            (fqdn_id, flows, up, down)
            for fqdn_id, (flows, up, down) in totals.items()
        )

    def server_flow_counts(self, rows=None) -> dict[int, int]:
        """Flow count per serverIP over ``rows`` (default: all flows)."""
        if rows is None:
            if _np is not None:
                servers = _np.frombuffer(self.columns.server_ip, _np.uint32)
                unique, counts = _np.unique(servers, return_counts=True)
                return dict(zip(unique.tolist(), counts.tolist()))
            rows = range(len(self._records))
        if not len(rows):
            return {}
        if _np is not None and isinstance(rows, (array, _np.ndarray)):
            servers = self._take(self.columns.server_ip, rows)
            unique, counts = _np.unique(servers, return_counts=True)
            return dict(zip(unique.tolist(), counts.tolist()))
        counts: dict[int, int] = {}
        column = self.columns.server_ip
        for row in rows:
            server = column[row]
            counts[server] = counts.get(server, 0) + 1
        return counts

    def unique_servers_per_bin(
        self, sld: str, bin_seconds: float
    ) -> list[tuple[float, int]]:
        """Fig. 4 series: distinct serverIPs per time bin for one 2LD,
        gap-filled from the first to the last active bin."""
        rows = self.rows_for_domain(sld)
        if not len(rows):
            return []
        if _np is not None:
            starts = self._take(self.columns.start, rows)
            servers = self._take(self.columns.server_ip, rows)
            bins = _np.floor_divide(starts, bin_seconds).astype(_np.int64)
            lo = int(bins.min())
            hi = int(bins.max())
            pair = ((bins - lo) << 32) | servers.astype(_np.int64)
            per_bin = _np.bincount(
                (_np.unique(pair) >> 32), minlength=hi - lo + 1
            )
            return [
                ((lo + index) * bin_seconds, int(count))
                for index, count in enumerate(per_bin.tolist())
            ]
        sets: dict[int, set[int]] = {}
        start_col = self.columns.start
        server_col = self.columns.server_ip
        for row in rows:
            bin_index = int(start_col[row] // bin_seconds)
            bucket = sets.get(bin_index)
            if bucket is None:
                bucket = sets[bin_index] = set()
            bucket.add(server_col[row])
        lo, hi = min(sets), max(sets)
        return [
            (index * bin_seconds, len(sets.get(index, ())))
            for index in range(lo, hi + 1)
        ]

    def server_bins_for_fqdn(
        self, fqdn: str, bin_seconds: float
    ) -> list[tuple[int, int]]:
        """Deduped ``(bin_index, server_ip)`` pairs for one FQDN, sorted
        by bin — the Sec. 4.1 track-over-time feed."""
        return self.bin_server_pairs(self.rows_for_fqdn(fqdn), bin_seconds)

    def bin_server_pairs(
        self, rows, bin_seconds: float
    ) -> list[tuple[int, int]]:
        """Deduped ``(bin_index, server_ip)`` pairs over ``rows`` —
        the per-segment primitive behind the on-disk store's
        :meth:`unique_servers_per_bin` merge (distinct-server counts
        cannot merge across segments; the pairs can)."""
        if not len(rows):
            return []
        if _np is not None:
            starts = self._take(self.columns.start, rows)
            servers = self._take(self.columns.server_ip, rows)
            bins = _np.floor_divide(starts, bin_seconds).astype(_np.int64)
            lo = int(bins.min())
            keys = _np.unique(
                ((bins - lo) << 32) | servers.astype(_np.int64)
            )
            return [
                (int(key >> 32) + lo, int(key & 0xFFFFFFFF))
                for key in keys.tolist()
            ]
        start_col = self.columns.start
        server_col = self.columns.server_ip
        pairs = {
            (int(start_col[row] // bin_seconds), server_col[row])
            for row in rows
        }
        return sorted(pairs)

    def fqdn_bin_pairs(
        self, bin_seconds: float, rows=None
    ) -> list[tuple[int, int]]:
        """Deduped ``(fqdn_id, bin_index)`` activity pairs over the
        labeled flows of ``rows`` (Fig. 11 timelines)."""
        if rows is None:
            rows = self._tagged
        if not len(rows):
            return []
        if _np is not None:
            rows, ids = self._tagged_subset(rows)
            if not len(ids):
                return []
            starts = self._take(self.columns.start, rows)
            bins = _np.floor_divide(starts, bin_seconds).astype(_np.int64)
            lo = int(bins.min())
            keys = _np.unique((ids.astype(_np.int64) << 32) | (bins - lo))
            return [
                (int(key >> 32), int(key & 0xFFFFFFFF) + lo)
                for key in keys.tolist()
            ]
        pairs = set()
        fqdn_col = self.columns.fqdn_id
        start_col = self.columns.start
        for row in rows:
            fqdn_id = fqdn_col[row]
            if fqdn_id >= 0:
                pairs.add((fqdn_id, int(start_col[row] // bin_seconds)))
        return sorted(pairs)

    def fqdn_first_seen(self, rows=None) -> dict[int, float]:
        """Earliest flow start per interned label over ``rows``."""
        if rows is None:
            rows = self._tagged
        if not len(rows):
            return {}
        if _np is not None:
            rows, ids = self._tagged_subset(rows)
            if not len(ids):
                return {}
            starts = self._take(self.columns.start, rows)
            order = _np.argsort(ids, kind="stable")
            sorted_ids = ids[order]
            sorted_starts = starts[order]
            bounds = _np.flatnonzero(sorted_ids[1:] != sorted_ids[:-1]) + 1
            group_starts = _np.concatenate(([0], bounds))
            mins = _np.minimum.reduceat(sorted_starts, group_starts)
            return {
                int(sorted_ids[index]): float(value)
                for index, value in zip(
                    group_starts.tolist(), mins.tolist()
                )
            }
        first: dict[int, float] = {}
        fqdn_col = self.columns.fqdn_id
        start_col = self.columns.start
        for row in rows:
            fqdn_id = fqdn_col[row]
            if fqdn_id < 0:
                continue
            start = start_col[row]
            if fqdn_id not in first or start < first[fqdn_id]:
                first[fqdn_id] = start
        return first

    def server_fqdn_bin_triples(
        self, bin_seconds: float, rows=None
    ) -> list[tuple[int, int, int]]:
        """Deduped ``(server_ip, fqdn_id, bin_index)`` triples over the
        labeled flows of ``rows`` — the Fig. 5 active-FQDNs feed."""
        if rows is None:
            rows = self._tagged
        if not len(rows):
            return []
        if _np is not None:
            rows, ids = self._tagged_subset(rows)
            if not len(ids):
                return []
            starts = self._take(self.columns.start, rows)
            servers = self._take(self.columns.server_ip, rows)
            bins = _np.floor_divide(starts, bin_seconds).astype(_np.int64)
            lo = int(bins.min())
            n_bins = int(bins.max()) - lo + 1
            n_ids = len(self._fqdn_names)
            if n_ids * n_bins <= 1 << 31:
                # (fqdn, bin) packs into the low 32 bits: one sort-
                # unique over uint64 keys instead of a structured
                # (void) unique.  The key must be unsigned — a server
                # address >= 2^31 shifted into the high bits would
                # overflow a signed int64 and come back negative.
                combo = ids.astype(_np.uint64) * _np.uint64(n_bins) + (
                    (bins - lo).astype(_np.uint64)
                )
                key = (
                    servers.astype(_np.uint64) << _np.uint64(32)
                ) | combo
                unique = _np.unique(key)
                combos = (unique & _np.uint64(0xFFFFFFFF)).astype(
                    _np.int64
                )
                return list(zip(
                    (unique >> _np.uint64(32)).astype(_np.int64).tolist(),
                    (combos // n_bins).tolist(),
                    (combos % n_bins + lo).tolist(),
                ))
            stacked = _np.empty(
                len(rows),
                dtype=[("s", _np.uint32), ("f", _np.int32),
                       ("b", _np.int64)],
            )
            stacked["s"] = servers
            stacked["f"] = ids
            stacked["b"] = bins
            unique = _np.unique(stacked)
            return list(zip(
                unique["s"].tolist(), unique["f"].tolist(),
                unique["b"].tolist(),
            ))
        triples = set()
        cols = self.columns
        for row in rows:
            fqdn_id = cols.fqdn_id[row]
            if fqdn_id >= 0:
                triples.add((
                    cols.server_ip[row], fqdn_id,
                    int(cols.start[row] // bin_seconds),
                ))
        return sorted(triples)

    def sld_flow_stats(
        self, rows
    ) -> list[tuple[int, int, int]]:
        """Per-organization ``(sld_id, flows, distinct_fqdns)`` over the
        labeled flows of ``rows`` (the Tab. 5 ranking feed)."""
        if not len(rows):
            return []
        if _np is not None:
            rows, ids = self._tagged_subset(rows)
            if not len(ids):
                return []
            sld_map = _np.frombuffer(self._fqdn_sld, dtype=_np.int32)
            slds = sld_map[ids]
            unique, counts = _np.unique(slds, return_counts=True)
            flow_counts = dict(zip(unique.tolist(), counts.tolist()))
            pair = (slds.astype(_np.int64) << 32) | ids.astype(_np.int64)
            fqdn_counts = _np.unique(_np.unique(pair) >> 32,
                                     return_counts=True)
            distinct = dict(zip(fqdn_counts[0].tolist(),
                                fqdn_counts[1].tolist()))
            return [
                (sld_id, flow_counts[sld_id], distinct[sld_id])
                for sld_id in flow_counts
            ]
        flow_counts: dict[int, int] = {}
        fqdn_sets: dict[int, set[int]] = {}
        fqdn_col = self.columns.fqdn_id
        sld_map = self._fqdn_sld
        for row in rows:
            fqdn_id = fqdn_col[row]
            if fqdn_id < 0:
                continue
            sld_id = sld_map[fqdn_id]
            flow_counts[sld_id] = flow_counts.get(sld_id, 0) + 1
            fqdn_sets.setdefault(sld_id, set()).add(fqdn_id)
        return [
            (sld_id, count, len(fqdn_sets[sld_id]))
            for sld_id, count in flow_counts.items()
        ]

    # -- stats -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[FlowRecord]:
        record = self._record
        return (record(row) for row in range(len(self._records)))

    @property
    def tagged_count(self) -> int:
        """Number of flows carrying a label (maintained incrementally)."""
        return len(self._tagged)

    def count_by_protocol(self) -> dict[Protocol, int]:
        """Flow counts per layer-7 protocol (maintained incrementally)."""
        return {
            PROTOCOLS[index]: count
            for index, count in enumerate(self._protocol_counts)
            if count
        }

    def time_span(self) -> tuple[float, float]:
        """(earliest start, latest end), tracked during ingestion."""
        if not self._records:
            return (0.0, 0.0)
        return (self._min_start, self._max_end)
