"""Tracker activity timelines (Fig. 11) and appspot-style service splits
(Tab. 8, Sec. 5.6).

The paper's case study: BitTorrent trackers hosted for free on Google
appspot.com.  Fig. 11 plots, per tracker, which 4-hour intervals it was
active in over 18 days; Tab. 8 splits appspot services into trackers vs
general apps with flow and byte totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.analytics.database import FlowDatabase
from repro.net.flow import FlowRecord


@dataclass
class ActivityTimeline:
    """One service's active bins."""

    service: str
    first_seen: float
    active_bins: set[int] = field(default_factory=set)

    def active_fraction(self, total_bins: int) -> float:
        """Share of the observation window in which it was active."""
        return len(self.active_bins) / total_bins if total_bins else 0.0


class TrackerActivityAnalysis:
    """Fig. 11: per-service activity over fixed bins, ids by first-seen.

    Args:
        bin_seconds: paper uses 4-hour bins.
        classifier: predicate deciding whether a FQDN is a "tracker"
            (the paper used Tstat DPI + token heuristics; we match
            tracker-ish tokens by default).
    """

    TRACKER_TOKENS = (
        "tracker",
        "torrent",
        "announce",
        "exodus",
        "genesis",
        "rlskingbt",
        "1337",
    )

    def __init__(self, bin_seconds: float = 4 * 3600.0, classifier=None):
        self.bin_seconds = bin_seconds
        self.classifier = classifier or self._default_classifier
        self._timelines: dict[str, ActivityTimeline] = {}
        self._max_bin = 0

    @classmethod
    def _default_classifier(cls, fqdn: str) -> bool:
        lowered = fqdn.lower()
        return any(token in lowered for token in cls.TRACKER_TOKENS)

    def observe(self, flow: FlowRecord) -> None:
        """Feed one labeled flow.

        The classifier receives the canonical lowercased label and
        ``first_seen`` is the earliest flow *start* (not stream
        position), so per-flow and grouped ingestion
        (:meth:`observe_database`) build identical timelines whatever
        the input order.
        """
        if not flow.fqdn:
            return
        service = flow.fqdn.lower()
        if not self.classifier(service):
            return
        bin_index = int(flow.start // self.bin_seconds)
        self._max_bin = max(self._max_bin, bin_index)
        timeline = self._timelines.get(service)
        if timeline is None:
            timeline = ActivityTimeline(service=service, first_seen=flow.start)
            self._timelines[service] = timeline
        elif flow.start < timeline.first_seen:
            timeline.first_seen = flow.start
        timeline.active_bins.add(bin_index)

    def observe_all(self, flows: Iterable[FlowRecord]) -> None:
        for flow in flows:
            self.observe(flow)

    def observe_database(self, database: FlowDatabase, rows=None) -> None:
        """Feed a whole flow database through the grouped fast path.

        Classification runs once per *distinct* label and activity bins
        come from the store's deduped ``(fqdn_id, bin)`` pairs — the
        per-flow :meth:`observe` loop collapses to one pass over unique
        (service, bin) combinations, with identical results (the
        classifier receives the canonical lowercased label on both
        paths, and ``first_seen`` is the earliest flow start).
        """
        first_seen = database.fqdn_first_seen(rows)
        classified: dict[int, ActivityTimeline | None] = {}
        for fqdn_id, start in first_seen.items():
            service = database.fqdn_label(fqdn_id)
            if not self.classifier(service):
                classified[fqdn_id] = None
                continue
            timeline = self._timelines.get(service)
            if timeline is None:
                timeline = ActivityTimeline(
                    service=service, first_seen=start
                )
                self._timelines[service] = timeline
            elif start < timeline.first_seen:
                timeline.first_seen = start
            classified[fqdn_id] = timeline
        for fqdn_id, bin_index in database.fqdn_bin_pairs(
            self.bin_seconds, rows
        ):
            timeline = classified[fqdn_id]
            if timeline is not None:
                if bin_index > self._max_bin:
                    self._max_bin = bin_index
                timeline.active_bins.add(bin_index)

    def timelines(self) -> list[ActivityTimeline]:
        """Timelines ordered by first appearance (Fig. 11's id order)."""
        return sorted(self._timelines.values(), key=lambda t: t.first_seen)

    def always_on(self, threshold: float = 0.9) -> list[ActivityTimeline]:
        """Services active in at least ``threshold`` of all bins —
        the paper's ~33% of trackers that stayed up all 18 days."""
        total = self._max_bin + 1
        return [
            t for t in self.timelines() if t.active_fraction(total) >= threshold
        ]

    def synchronized_groups(
        self, min_size: int = 2, min_overlap: float = 0.9
    ) -> list[list[str]]:
        """Find sets of services active in (nearly) the same bins.

        The paper flags trackers 26-31 as on-off synchronized — evidence
        one BitTorrent client drove them all.  Greedy grouping by Jaccard
        similarity of the active-bin sets.
        """
        timelines = self.timelines()
        used: set[str] = set()
        groups: list[list[str]] = []
        for anchor in timelines:
            if anchor.service in used:
                continue
            group = [anchor.service]
            for other in timelines:
                if other.service in used or other.service == anchor.service:
                    continue
                union = anchor.active_bins | other.active_bins
                inter = anchor.active_bins & other.active_bins
                if union and len(inter) / len(union) >= min_overlap:
                    group.append(other.service)
            if len(group) >= min_size:
                groups.append(group)
                used.update(group)
        return groups

    def render(self, width_bins: int | None = None) -> str:
        """ASCII dot plot of Fig. 11: one row per service id."""
        total = (width_bins or self._max_bin) + 1
        lines = []
        for index, timeline in enumerate(self.timelines(), start=1):
            row = "".join(
                "o" if b in timeline.active_bins else "."
                for b in range(total)
            )
            lines.append(f"{index:3d} {row}")
        return "\n".join(lines)


@dataclass(frozen=True, slots=True)
class ServiceClassTotals:
    """One Tab. 8 row."""

    label: str
    services: int
    flows: int
    bytes_up: int
    bytes_down: int


def service_breakdown(
    database: FlowDatabase,
    domain: str,
    classifier=None,
) -> tuple[ServiceClassTotals, ServiceClassTotals]:
    """Tab. 8: split one hosting domain's services into trackers vs rest.

    Returns (trackers, general) totals over distinct FQDNs, flows and
    client-to-server / server-to-client bytes.
    """
    classify = classifier or TrackerActivityAnalysis._default_classifier
    tracker_fqdns: set[str] = set()
    general_fqdns: set[str] = set()
    totals = {
        True: [0, 0, 0],   # flows, bytes_up, bytes_down
        False: [0, 0, 0],
    }
    # One classification and one bucket update per distinct FQDN: the
    # flow/byte sums per label come pre-aggregated from the columns.
    rows = database.rows_for_domain(domain)
    for fqdn_id, flows, up, down in database.fqdn_flow_byte_totals(rows):
        fqdn = database.fqdn_label(fqdn_id)
        is_tracker = classify(fqdn)
        (tracker_fqdns if is_tracker else general_fqdns).add(fqdn)
        bucket = totals[is_tracker]
        bucket[0] += flows
        bucket[1] += up
        bucket[2] += down
    trackers = ServiceClassTotals(
        label="Bittorrent Trackers",
        services=len(tracker_fqdns),
        flows=totals[True][0],
        bytes_up=totals[True][1],
        bytes_down=totals[True][2],
    )
    general = ServiceClassTotals(
        label="General Services",
        services=len(general_fqdns),
        flows=totals[False][0],
        bytes_up=totals[False][1],
        bytes_down=totals[False][2],
    )
    return trackers, general
