"""Time-binned analytics behind Figures 4, 5 and 14.

* Fig. 4 — number of distinct serverIPs serving a 2LD per 10-minute bin;
* Fig. 5 — number of distinct FQDNs served by each CDN per bin;
* Fig. 14 — DNS responses observed per bin.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

from repro.analytics.database import FlowDatabase
from repro.net.flow import DnsObservation
from repro.orgdb.ipdb import IpOrganizationDb


class TimeBins:
    """A labeled series of counts over fixed-width time bins."""

    def __init__(self, bin_seconds: float, start: float = 0.0):
        if bin_seconds <= 0:
            raise ValueError("bin_seconds must be positive")
        self.bin_seconds = bin_seconds
        self.start = start
        self._bins: dict[int, int] = defaultdict(int)

    def index_of(self, timestamp: float) -> int:
        return int((timestamp - self.start) // self.bin_seconds)

    def add(self, timestamp: float, count: int = 1) -> None:
        self._bins[self.index_of(timestamp)] += count

    def series(self) -> list[tuple[float, int]]:
        """(bin start time, count) in time order, gaps filled with 0."""
        if not self._bins:
            return []
        lo, hi = min(self._bins), max(self._bins)
        return [
            (self.start + i * self.bin_seconds, self._bins.get(i, 0))
            for i in range(lo, hi + 1)
        ]

    def peak(self) -> tuple[float, int]:
        """(bin start, count) of the highest bin."""
        if not self._bins:
            return (self.start, 0)
        index, count = max(self._bins.items(), key=lambda kv: kv[1])
        return (self.start + index * self.bin_seconds, count)


def servers_per_domain_series(
    database: FlowDatabase,
    domains: Sequence[str],
    bin_seconds: float = 600.0,
) -> dict[str, list[tuple[float, int]]]:
    """Fig. 4: distinct serverIPs observed per 2LD per time bin."""
    # domain -> bin -> set of servers
    sets: dict[str, dict[int, set[int]]] = {
        domain.lower(): defaultdict(set) for domain in domains
    }
    for domain in sets:
        for flow in database.query_by_domain(domain):
            sets[domain][int(flow.start // bin_seconds)].add(
                flow.fid.server_ip
            )
    out: dict[str, list[tuple[float, int]]] = {}
    for domain, bins in sets.items():
        if not bins:
            out[domain] = []
            continue
        lo, hi = min(bins), max(bins)
        out[domain] = [
            (i * bin_seconds, len(bins.get(i, set())))
            for i in range(lo, hi + 1)
        ]
    return out


def fqdns_per_cdn_series(
    database: FlowDatabase,
    ipdb: IpOrganizationDb,
    cdns: Sequence[str],
    bin_seconds: float = 600.0,
) -> dict[str, list[tuple[float, int]]]:
    """Fig. 5: distinct active FQDNs per CDN per time bin."""
    wanted = {cdn.lower() for cdn in cdns}
    sets: dict[str, dict[int, set[str]]] = {
        cdn.lower(): defaultdict(set) for cdn in cdns
    }
    for flow in database:
        if not flow.fqdn:
            continue
        owner = ipdb.lookup(flow.fid.server_ip)
        if owner is None:
            continue
        owner = owner.lower()
        if owner in wanted:
            sets[owner][int(flow.start // bin_seconds)].add(
                flow.fqdn.lower()
            )
    out: dict[str, list[tuple[float, int]]] = {}
    for cdn, bins in sets.items():
        if not bins:
            out[cdn] = []
            continue
        lo, hi = min(bins), max(bins)
        out[cdn] = [
            (i * bin_seconds, len(bins.get(i, set())))
            for i in range(lo, hi + 1)
        ]
    return out


def total_fqdns_per_cdn(
    database: FlowDatabase, ipdb: IpOrganizationDb, cdn: str
) -> int:
    """Whole-trace FQDN count for one CDN (the paper: Amazon served 7995
    FQDNs over the day)."""
    cdn_lower = cdn.lower()
    fqdns: set[str] = set()
    for flow in database:
        if not flow.fqdn:
            continue
        owner = ipdb.lookup(flow.fid.server_ip)
        if owner and owner.lower() == cdn_lower:
            fqdns.add(flow.fqdn.lower())
    return len(fqdns)


def dns_response_rate(
    observations: Iterable[DnsObservation],
    bin_seconds: float = 600.0,
    start: float = 0.0,
) -> TimeBins:
    """Fig. 14: DNS responses per time bin."""
    bins = TimeBins(bin_seconds=bin_seconds, start=start)
    for observation in observations:
        bins.add(observation.timestamp)
    return bins
