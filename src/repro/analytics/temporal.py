"""Time-binned analytics behind Figures 4, 5 and 14.

* Fig. 4 — number of distinct serverIPs serving a 2LD per 10-minute bin;
* Fig. 5 — number of distinct FQDNs served by each CDN per bin;
* Fig. 14 — DNS responses observed per bin.

All three ride the columnar flow store: the per-flow set-building loops
of the seed implementation became grouped dedupes over interned ids
(:meth:`FlowDatabase.unique_servers_per_bin`,
:meth:`FlowDatabase.server_fqdn_bin_triples`), and the IP→organization
database is consulted once per *distinct server* instead of once per
flow.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

from repro.analytics.database import FlowDatabase
from repro.net.flow import DnsObservation
from repro.orgdb.ipdb import IpOrganizationDb

try:  # numpy accelerates bulk binning; optional.
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None


class TimeBins:
    """A labeled series of counts over fixed-width time bins."""

    def __init__(self, bin_seconds: float, start: float = 0.0):
        if bin_seconds <= 0:
            raise ValueError("bin_seconds must be positive")
        self.bin_seconds = bin_seconds
        self.start = start
        self._bins: dict[int, int] = defaultdict(int)

    def index_of(self, timestamp: float) -> int:
        return int((timestamp - self.start) // self.bin_seconds)

    def add(self, timestamp: float, count: int = 1) -> None:
        self._bins[self.index_of(timestamp)] += count

    def add_many(self, timestamps: Iterable[float]) -> None:
        """Bulk :meth:`add`: one bincount instead of a call per event."""
        if _np is None:
            for timestamp in timestamps:
                self.add(timestamp)
            return
        stamps = _np.fromiter(timestamps, dtype=_np.float64)
        if not len(stamps):
            return
        bins = _np.floor_divide(
            stamps - self.start, self.bin_seconds
        ).astype(_np.int64)
        lo = int(bins.min())
        for offset, count in enumerate(_np.bincount(bins - lo).tolist()):
            if count:
                self._bins[lo + offset] += count

    def series(self) -> list[tuple[float, int]]:
        """(bin start time, count) in time order, gaps filled with 0."""
        if not self._bins:
            return []
        lo, hi = min(self._bins), max(self._bins)
        return [
            (self.start + i * self.bin_seconds, self._bins.get(i, 0))
            for i in range(lo, hi + 1)
        ]

    def peak(self) -> tuple[float, int]:
        """(bin start, count) of the highest bin."""
        if not self._bins:
            return (self.start, 0)
        index, count = max(self._bins.items(), key=lambda kv: kv[1])
        return (self.start + index * self.bin_seconds, count)


def servers_per_domain_series(
    database: FlowDatabase,
    domains: Sequence[str],
    bin_seconds: float = 600.0,
) -> dict[str, list[tuple[float, int]]]:
    """Fig. 4: distinct serverIPs observed per 2LD per time bin."""
    return {
        domain.lower(): database.unique_servers_per_bin(domain, bin_seconds)
        for domain in domains
    }


_MISSING = object()


def _owner_lookup(ipdb: IpOrganizationDb):
    """Memoized ``server → lowercased owner`` (one probe per server)."""
    cache: dict[int, str | None] = {}

    def lookup(server: int) -> str | None:
        owner = cache.get(server, _MISSING)
        if owner is _MISSING:
            owner = ipdb.lookup(server)
            owner = owner.lower() if owner is not None else None
            cache[server] = owner
        return owner

    return lookup


def fqdns_per_cdn_series(
    database: FlowDatabase,
    ipdb: IpOrganizationDb,
    cdns: Sequence[str],
    bin_seconds: float = 600.0,
) -> dict[str, list[tuple[float, int]]]:
    """Fig. 5: distinct active FQDNs per CDN per time bin."""
    wanted = {cdn.lower() for cdn in cdns}
    sets: dict[str, dict[int, set[int]]] = {
        cdn.lower(): defaultdict(set) for cdn in cdns
    }
    owner_of = _owner_lookup(ipdb)
    for server, fqdn_id, bin_index in database.server_fqdn_bin_triples(
        bin_seconds
    ):
        owner = owner_of(server)
        if owner in wanted:
            sets[owner][bin_index].add(fqdn_id)
    out: dict[str, list[tuple[float, int]]] = {}
    for cdn, bins in sets.items():
        if not bins:
            out[cdn] = []
            continue
        lo, hi = min(bins), max(bins)
        out[cdn] = [
            (i * bin_seconds, len(bins.get(i, set())))
            for i in range(lo, hi + 1)
        ]
    return out


def total_fqdns_per_cdn(
    database: FlowDatabase, ipdb: IpOrganizationDb, cdn: str
) -> int:
    """Whole-trace FQDN count for one CDN (the paper: Amazon served 7995
    FQDNs over the day)."""
    cdn_lower = cdn.lower()
    owner_of = _owner_lookup(ipdb)
    fqdns: set[int] = set()
    for fqdn_id, server, _count in database.fqdn_server_counts():
        if owner_of(server) == cdn_lower:
            fqdns.add(fqdn_id)
    return len(fqdns)


def dns_response_rate(
    observations: Iterable[DnsObservation],
    bin_seconds: float = 600.0,
    start: float = 0.0,
) -> TimeBins:
    """Fig. 14: DNS responses per time bin."""
    bins = TimeBins(bin_seconds=bin_seconds, start=start)
    bins.add_many(
        observation.timestamp for observation in observations
    )
    return bins
