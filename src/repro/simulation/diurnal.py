"""Diurnal activity profiles.

Traffic at an ISP PoP follows the day: quiet before dawn, a morning
ramp, and an evening peak (the paper's Fig. 4/5/14 all show it).  The
profile here is a smooth 24-hour curve sampled at the client activity
and the CDN pool-scaling hooks.
"""

from __future__ import annotations

import math

# Hour-by-hour relative activity, renormalized so the mean is 1.0.
# Shape: trough at 04:00, evening peak at 21:00 — the pattern of
# residential traces like EU1-ADSL2 (Fig. 14).
_HOURLY = [
    0.25, 0.18, 0.14, 0.12, 0.12, 0.15,  # 00-05
    0.25, 0.45, 0.70, 0.85, 0.95, 1.05,  # 06-11
    1.10, 1.05, 1.00, 1.00, 1.05, 1.15,  # 12-17
    1.35, 1.60, 1.80, 1.90, 1.60, 0.90,  # 18-23
]
_MEAN = sum(_HOURLY) / len(_HOURLY)
HOURLY_ACTIVITY = [value / _MEAN for value in _HOURLY]


def activity_at(seconds_of_day: float, timezone_offset_hours: float = 0.0) -> float:
    """Relative activity at a local time of day.

    Args:
        seconds_of_day: seconds since midnight **GMT**.
        timezone_offset_hours: local offset (EU ≈ +1, US-East ≈ -5).

    Interpolates linearly between the hourly anchors; mean over the day
    is 1.0 by construction.
    """
    local = (seconds_of_day / 3600.0 + timezone_offset_hours) % 24.0
    low = int(local) % 24
    high = (low + 1) % 24
    frac = local - int(local)
    return HOURLY_ACTIVITY[low] * (1 - frac) + HOURLY_ACTIVITY[high] * frac


def pool_scale(
    seconds_of_day: float,
    timezone_offset_hours: float = 0.0,
    floor: float = 0.3,
) -> float:
    """CDN server-pool scale factor in [floor, 1.0].

    Fig. 4 of the paper: fbcdn/youtube use many more serverIPs at peak
    hours.  Pools scale with activity, clamped to a floor so a domain
    never disappears.
    """
    level = activity_at(seconds_of_day, timezone_offset_hours)
    peak = max(HOURLY_ACTIVITY)
    return max(floor, min(1.0, level / peak + (1 - 1 / peak) * floor))


def smooth_peak_boost(seconds_of_day: float, onset_hour: float,
                      width_hours: float = 3.0, gain: float = 1.0) -> float:
    """A bump centred at ``onset_hour`` — models YouTube's sudden policy
    change between 17:00 and 20:30 in Fig. 4 (extra servers at peak)."""
    hour = (seconds_of_day / 3600.0) % 24.0
    distance = min(abs(hour - onset_hour), 24 - abs(hour - onset_hour))
    return 1.0 + gain * math.exp(-((distance / width_hours) ** 2))
