"""Traffic generation engine: session arrivals and event assembly.

Clients generate sessions via a thinned Poisson process modulated by the
diurnal activity curve; each session appends DNS observations and flow
records to the shared event list, which is then sorted into one
timestamp-ordered stream — the same ordering a wire capture would have.
"""

from __future__ import annotations

import random
from typing import Union

from repro.net.flow import DnsObservation, FlowRecord
from repro.simulation.client import Client
from repro.simulation.diurnal import HOURLY_ACTIVITY, activity_at

Event = Union[DnsObservation, FlowRecord]

MAX_ACTIVITY = max(HOURLY_ACTIVITY)


def session_times(
    rng: random.Random,
    start: float,
    end: float,
    rate_per_hour: float,
    timezone_offset: float,
    day_origin: float = 0.0,
) -> list[float]:
    """Arrival times of one client's sessions in [start, end).

    Thinning: candidates arrive at the peak rate and are accepted with
    probability activity(t)/max_activity, yielding a non-homogeneous
    Poisson process that follows the diurnal profile.

    Args:
        day_origin: trace-time at which the GMT day starts (lets a trace
            begin at, e.g., 15:30 GMT: pass ``-15.5 * 3600``).
    """
    if rate_per_hour <= 0:
        return []
    peak_rate = rate_per_hour * MAX_ACTIVITY / 3600.0
    times = []
    t = start
    while True:
        t += rng.expovariate(peak_rate)
        if t >= end:
            return times
        seconds_of_day = (t - day_origin) % 86400.0
        level = activity_at(seconds_of_day, timezone_offset)
        if rng.random() * MAX_ACTIVITY <= level:
            times.append(t)


def generate_events(
    clients: list[Client],
    start: float,
    end: float,
    day_origin: float = 0.0,
) -> list[Event]:
    """Run every client over the window and return the merged stream.

    Events are sorted by timestamp (DNS observations by response time,
    flows by their start).
    """
    events: list[Event] = []
    for client in clients:
        client_start = max(start, client.profile.enter_time)
        if client.profile.enter_time > start:
            # Mobility: the cache arrives warm from outside our view.
            client.prewarm(
                entries_count=10, now=client.profile.enter_time
            )
        for t in session_times(
            client.rng,
            client_start,
            end,
            client.profile.session_rate_per_hour,
            client.profile.timezone_offset,
            day_origin=day_origin,
        ):
            client.run_session(t, events)
    events.sort(key=_event_time)
    return events


def _event_time(event: Event) -> float:
    if isinstance(event, DnsObservation):
        return event.timestamp
    return event.start


def split_events(
    events: list[Event],
) -> tuple[list[DnsObservation], list[FlowRecord]]:
    """Separate the stream into (observations, flows), preserving order."""
    observations: list[DnsObservation] = []
    flows: list[FlowRecord] = []
    for event in events:
        if isinstance(event, DnsObservation):
            observations.append(event)
        else:
            flows.append(event)
    return observations, flows
