"""Trace profiles and builders — the synthetic stand-ins for Tab. 1.

Five profiles mirror the paper's datasets (start hour, duration, access
technology, relative size ordering), scaled ~1:400 in flow count so a
full build stays in seconds.  A sixth profile provides the 24-hour
EU1-ADSL2 variant the temporal figures use, and
:func:`build_live_deployment` generates the 18-day labeled-flow stream
behind Fig. 6/10/11 and Tab. 8.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.dns.message import DnsMessage
from repro.dns.records import a_record
from repro.dns.wire import encode_message
from repro.net.flow import DnsObservation, FlowRecord, FiveTuple, Protocol, TransportProto
from repro.net.packet import (
    TCP_ACK,
    TCP_FIN,
    TCP_SYN,
    build_tcp_packet,
    build_udp_packet,
)
from repro.net.pcap import PcapRecord
from repro.simulation.catalog import APPSPOT_TRACKERS
from repro.simulation.client import Client, ClientProfile
from repro.simulation.diurnal import activity_at
from repro.simulation.internet import Internet, build_internet
from repro.simulation.p2p import PeerSwarm
from repro.simulation.traffic import generate_events, split_events

Event = Union[DnsObservation, FlowRecord]


@dataclass(frozen=True)
class TraceProfile:
    """Knobs for one vantage point (one Tab. 1 row)."""

    name: str
    geography: str
    technology: str          # "adsl" | "ftth" | "3g"
    start_hour_gmt: float
    duration_hours: float
    n_clients: int
    session_rate_per_hour: float
    p2p_fraction: float = 0.06
    tunnel_fraction: float = 0.0
    mobility_fraction: float = 0.0
    prefetch_probability: float = 0.45
    delay_median: float = 0.15
    timezone_offset: float = 1.0
    pop_index: int = 1
    p2p_peer_range: tuple[int, int] = (3, 7)
    tracker_announce_probability: float = 0.06
    prewarm_range: tuple[int, int] = (6, 14)


TRACE_PROFILES: dict[str, TraceProfile] = {
    profile.name: profile
    for profile in [
        TraceProfile(
            name="US-3G", geography="US", technology="3g",
            start_hour_gmt=15.5, duration_hours=3.0, n_clients=120,
            session_rate_per_hour=12.0, p2p_fraction=0.08,
            tunnel_fraction=0.22, mobility_fraction=0.35,
            prefetch_probability=0.33, delay_median=0.5,
            timezone_offset=-5.0, pop_index=9,
            p2p_peer_range=(2, 5), tracker_announce_probability=0.18,
            prewarm_range=(8, 14),
        ),
        TraceProfile(
            name="EU2-ADSL", geography="EU", technology="adsl",
            start_hour_gmt=14.83, duration_hours=6.0, n_clients=150,
            session_rate_per_hour=14.0, p2p_fraction=0.05,
            prefetch_probability=0.62, delay_median=0.15, pop_index=5,
            p2p_peer_range=(4, 9), prewarm_range=(4, 9),
        ),
        TraceProfile(
            name="EU1-ADSL1", geography="EU", technology="adsl",
            start_hour_gmt=8.0, duration_hours=24.0, n_clients=120,
            session_rate_per_hour=12.0, p2p_fraction=0.07,
            prefetch_probability=0.60, delay_median=0.15, pop_index=1,
            p2p_peer_range=(4, 9), prewarm_range=(10, 18),
        ),
        TraceProfile(
            name="EU1-ADSL2", geography="EU", technology="adsl",
            start_hour_gmt=8.67, duration_hours=5.0, n_clients=150,
            session_rate_per_hour=13.0, p2p_fraction=0.07,
            prefetch_probability=0.61, delay_median=0.15, pop_index=2,
            p2p_peer_range=(4, 9), prewarm_range=(10, 18),
        ),
        TraceProfile(
            name="EU1-FTTH", geography="EU", technology="ftth",
            start_hour_gmt=17.0, duration_hours=3.0, n_clients=80,
            session_rate_per_hour=11.0, p2p_fraction=0.08,
            prefetch_probability=0.62, delay_median=0.06, pop_index=3,
            p2p_peer_range=(4, 9), prewarm_range=(10, 18),
        ),
        # 24-hour variant of EU1-ADSL2 for the temporal figures (the
        # paper plots Fig. 4/5 over a full day at that vantage point).
        TraceProfile(
            name="EU1-ADSL2-24H", geography="EU", technology="adsl",
            start_hour_gmt=0.0, duration_hours=24.0, n_clients=110,
            session_rate_per_hour=11.0, p2p_fraction=0.07,
            prefetch_probability=0.61, delay_median=0.15, pop_index=2,
        ),
    ]
}


@dataclass
class Trace:
    """A generated trace: ordered events plus the internet behind them."""

    profile: TraceProfile
    events: list[Event]
    observations: list[DnsObservation]
    flows: list[FlowRecord]
    internet: Internet
    seed: int

    @property
    def name(self) -> str:
        return self.profile.name

    @property
    def duration(self) -> float:
        return self.profile.duration_hours * 3600.0

    def iter_events(self):
        """Timestamp-ordered stream for the sniffer pipeline.

        Returns the event list itself (already built in time order) so
        the pipeline's fused loop iterates a concrete list rather than a
        generator — the per-event dispatch then needs no iterator
        indirection.
        """
        return self.events

    def iter_event_runs(self):
        """Timestamp-ordered events grouped into same-type runs.

        Yields ``(is_dns, events)`` pairs where ``events`` is a maximal
        run of consecutive :class:`DnsObservation` (``is_dns=True``) or
        :class:`FlowRecord` objects, preserving global time order.  Lets
        batch consumers (``SnifferPipeline.process_event_runs``,
        ``DnsResolver.insert_batch``) hoist per-type work out of the
        event loop without re-sorting the stream.
        """
        run: list[Event] = []
        run_is_dns = False
        for event in self.events:
            is_dns = event.__class__ is DnsObservation
            if is_dns != run_is_dns and run:
                yield run_is_dns, run
                run = []
            run_is_dns = is_dns
            run.append(event)
        if run:
            yield run_is_dns, run

    def peak_dns_rate_per_min(self) -> int:
        """Peak DNS responses per minute (the Tab. 1 column)."""
        counts: dict[int, int] = {}
        for observation in self.observations:
            minute = int(observation.timestamp // 60)
            counts[minute] = counts.get(minute, 0) + 1
        return max(counts.values()) if counts else 0

    def summary(self) -> dict:
        """The Tab. 1 row for this trace."""
        hours = int(self.profile.start_hour_gmt)
        minutes = int(round((self.profile.start_hour_gmt - hours) * 60))
        return {
            "trace": self.profile.name,
            "start_gmt": f"{hours:02d}:{minutes:02d}",
            "duration_h": self.profile.duration_hours,
            "peak_dns_per_min": self.peak_dns_rate_per_min(),
            "tcp_flows": len(self.flows),
            "dns_responses": len(self.observations),
            "clients": self.profile.n_clients,
        }

    # -- packet rendering ---------------------------------------------------

    def to_packets(
        self, max_flows: Optional[int] = None, dns_server: Optional[int] = None
    ) -> list[PcapRecord]:
        """Render events into wire-format frames (for pcap round-trips).

        Each DNS observation becomes a UDP response from the PoP's DNS
        server; each flow becomes a 7-packet TCP session (handshake, one
        payload packet per direction truncated to 1400 bytes, FIN pair).
        """
        server = dns_server or (0x0A000001 + (self.profile.pop_index << 16))
        rng = random.Random(self.seed ^ 0x9E3779B9)
        frames: list[PcapRecord] = []
        flows_done = 0
        for event in self.events:
            if isinstance(event, DnsObservation):
                frames.extend(
                    _dns_response_frames(event, server, rng)
                )
            else:
                if max_flows is not None and flows_done >= max_flows:
                    continue
                flows_done += 1
                frames.extend(_flow_frames(event, rng))
        frames.sort(key=lambda record: record.timestamp)
        return frames


def _dns_response_frames(
    observation: DnsObservation, server: int, rng: random.Random
) -> list[PcapRecord]:
    query = DnsMessage.query(rng.randrange(0, 0xFFFF), observation.fqdn)
    response = DnsMessage.response_to(
        query,
        [
            a_record(observation.fqdn, address, ttl=max(observation.ttl, 1))
            for address in observation.answers
        ],
    )
    frame = build_udp_packet(
        observation.timestamp,
        server,
        observation.client_ip,
        53,
        rng.randrange(1024, 65535),
        encode_message(response),
    )
    return [PcapRecord(observation.timestamp, frame)]


def _flow_frames(flow: FlowRecord, rng: random.Random) -> list[PcapRecord]:
    fid = flow.fid
    t = flow.start
    step = max(flow.duration / 6.0, 1e-4)
    up_payload = b"\x00" * min(flow.bytes_up, 1400)
    down_payload = b"\x00" * min(flow.bytes_down, 1400)
    sequence = [
        (t, fid.client_ip, fid.server_ip, fid.src_port, fid.dst_port,
         TCP_SYN, b""),
        (t + step, fid.server_ip, fid.client_ip, fid.dst_port, fid.src_port,
         TCP_SYN | TCP_ACK, b""),
        (t + 2 * step, fid.client_ip, fid.server_ip, fid.src_port,
         fid.dst_port, TCP_ACK, up_payload),
        (t + 3 * step, fid.server_ip, fid.client_ip, fid.dst_port,
         fid.src_port, TCP_ACK, down_payload),
        (t + 4 * step, fid.client_ip, fid.server_ip, fid.src_port,
         fid.dst_port, TCP_FIN | TCP_ACK, b""),
        (t + 5 * step, fid.server_ip, fid.client_ip, fid.dst_port,
         fid.src_port, TCP_FIN | TCP_ACK, b""),
    ]
    return [
        PcapRecord(
            ts,
            build_tcp_packet(ts, src, dst, sport, dport, flags,
                             payload=payload),
        )
        for ts, src, dst, sport, dport, flags, payload in sequence
    ]


def _client_ip(pop_index: int, index: int) -> int:
    # 10.<pop>.x.y with x.y starting at 1.0 so the DNS server at .0.1
    # never collides with a client.
    return 0x0A000000 + (pop_index << 16) + 256 + index


def build_clients(
    profile: TraceProfile, internet: Internet, rng: random.Random
) -> list[Client]:
    """Instantiate the client population for a profile."""
    swarm = PeerSwarm(rng, size=800)
    duration = profile.duration_hours * 3600.0
    clients = []
    for index in range(profile.n_clients):
        roll = rng.random()
        is_p2p = roll < profile.p2p_fraction
        is_tunneled = (
            not is_p2p
            and roll < profile.p2p_fraction + profile.tunnel_fraction
        )
        enter_time = 0.0
        if rng.random() < profile.mobility_fraction:
            enter_time = rng.uniform(0.0, duration * 0.7)
        client_profile = ClientProfile(
            prefetch_probability=profile.prefetch_probability,
            delay_median=profile.delay_median
            * rng.uniform(0.7, 1.4),
            cache_lifetime=rng.uniform(1800.0, 4200.0),
            is_p2p=is_p2p,
            is_tunneled=is_tunneled,
            enter_time=enter_time,
            session_rate_per_hour=profile.session_rate_per_hour
            * rng.uniform(0.5, 1.8),
            timezone_offset=profile.timezone_offset,
            p2p_peer_range=profile.p2p_peer_range,
            tracker_announce_probability=(
                profile.tracker_announce_probability
            ),
        )
        client = Client(
            ip=_client_ip(profile.pop_index, index),
            profile=client_profile,
            internet=internet,
            rng=random.Random(rng.randrange(1 << 30)),
            swarm=swarm,
        )
        clients.append(client)
    return clients


def build_trace(name: str, seed: int = 7) -> Trace:
    """Generate one of the standard traces by profile name."""
    profile = TRACE_PROFILES.get(name)
    if profile is None:
        raise KeyError(
            f"unknown trace {name!r}; choose from {sorted(TRACE_PROFILES)}"
        )
    internet = build_internet(profile.geography, seed=seed)
    rng = random.Random(seed * 1_000_003 + profile.pop_index)
    clients = build_clients(profile, internet, rng)
    # Pre-warm resident clients' caches: the monitor missed those
    # resolutions, producing the early-trace tagging misses (Sec. 3.1.2).
    low, high = profile.prewarm_range
    for client in clients:
        if client.profile.enter_time == 0.0 and not client.profile.is_p2p:
            client.prewarm(entries_count=rng.randint(low, high), now=0.0)
    day_origin = -profile.start_hour_gmt * 3600.0
    events = generate_events(
        clients, 0.0, profile.duration_hours * 3600.0, day_origin=day_origin
    )
    observations, flows = split_events(events)
    return Trace(
        profile=profile,
        events=events,
        observations=observations,
        flows=flows,
        internet=internet,
        seed=seed,
    )


# ---------------------------------------------------------------------------
# 18-day live deployment (Fig. 6, Fig. 10, Fig. 11, Tab. 8)
# ---------------------------------------------------------------------------

LIVE_TRACKER_COUNT = 45


@dataclass
class LiveDeployment:
    """Labeled flows from a long-running DN-Hunter deployment.

    This models the *output* of the deployed sniffer (the labeled-flows
    database), which is what the live-deployment analyses consume.
    """

    days: int
    flows: list[FlowRecord]
    internet: Internet
    tracker_fqdns: list[str] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.days * 86400.0


def _tracker_schedule(
    index: int, days: int, rng: random.Random
) -> tuple[float, set[int]]:
    """(first_seen_day, active 4h-bins) for tracker ``index`` (Fig. 11).

    Mirrors the paper's observed classes: ids 1-15 always on, ids 26-31
    synchronized on-off (one swarm driving them), the rest transient
    "zombies" that appear, live a few days, then die.
    """
    bins_per_day = 6
    total_bins = days * bins_per_day
    if index < 15:
        start = 0
        active = {
            b for b in range(total_bins) if rng.random() < 0.92
        }
    elif 25 <= index <= 30:
        start = int(rng.uniform(0, 3) * bins_per_day)
        # Shared on-off pattern: 12 bins on, 18 off, aligned to the epoch
        # (same phase for the whole group — the synchronization signal).
        active = {
            b for b in range(start, total_bins) if (b // 12) % 2 == 0
        }
    else:
        start = int(rng.uniform(0, days - 2) * bins_per_day)
        lifetime = int(rng.uniform(1.0, 6.0) * bins_per_day)
        active = {
            b
            for b in range(start, min(start + lifetime, total_bins))
            if rng.random() < 0.7
        }
    return start / bins_per_day, active


def build_live_deployment(
    days: int = 18, seed: int = 11, n_clients: int = 50,
    sessions_per_hour: float = 14.0,
) -> LiveDeployment:
    """Generate the 18-day labeled-flow stream.

    Three traffic components:

    * catalog traffic (weighted visits to the synthetic web — keeps
      serverIP / 2LD birth processes realistic and saturating);
    * a long-tail FQDN birth process (a constant share of sessions hits
      a never-seen FQDN, so unique FQDNs grow ~linearly, Fig. 6);
    * appspot.com: legit apps plus :data:`LIVE_TRACKER_COUNT` BitTorrent
      trackers following the Fig. 11 activity classes.
    """
    rng = random.Random(seed)
    internet = build_internet("EU", seed=seed)
    horizon = days * 86400.0

    catalog_fqdns: list[tuple[str, int]] = []   # (fqdn, one stable server)
    for entry in internet.service_entries():
        if entry.organization.domain == "appspot.com":
            continue  # appspot has its own generators below
        for fqdn in entry.fqdns[:4]:
            answers, _ = internet.resolve(fqdn, 0.0)
            if answers:
                weight = max(
                    1, int(entry.service.popularity_in("EU") * 4)
                )
                catalog_fqdns.extend([(fqdn, answers[0])] * min(weight, 8))
    # Long-tail state: names/hosting reuse existing infrastructure almost
    # always, so only the FQDN curve keeps climbing.
    tail_slds = [f"tail-site{i}.com" for i in range(60)]
    tail_servers = [internet._cdn_servers("leaseweb", 1)[0] for _ in range(40)]
    tail_counter = 0

    flows: list[FlowRecord] = []
    client_ips = [_client_ip(2, i) for i in range(n_clients)]

    def add_flow(t, client, server, fqdn, port=80, proto=Protocol.HTTP,
                 up=400, down=9000):
        flows.append(
            FlowRecord(
                fid=FiveTuple(client, server, rng.randrange(1024, 65535),
                              port, TransportProto.TCP),
                start=t,
                end=t + rng.expovariate(1 / 20.0),
                protocol=proto,
                bytes_up=max(64, int(rng.lognormvariate(_safe_ln(up), 0.8))),
                bytes_down=max(
                    128, int(rng.lognormvariate(_safe_ln(down), 0.9))
                ),
                fqdn=fqdn,
                true_fqdn=fqdn,
            )
        )

    # -- background catalog + long-tail traffic, hour by hour -------------
    for hour in range(days * 24):
        base = n_clients * sessions_per_hour / 60.0
        level = activity_at((hour % 24) * 3600.0, timezone_offset_hours=1.0)
        count = max(1, int(base * 60 * level / 8))
        for _ in range(count):
            t = hour * 3600.0 + rng.uniform(0, 3600.0)
            client = rng.choice(client_ips)
            roll = rng.random()
            if roll < 0.70 and catalog_fqdns:
                fqdn, server = rng.choice(catalog_fqdns)
                add_flow(t, client, server, fqdn)
            elif roll < 0.92:
                # New, never-seen FQDN (the Fig. 6 growth engine).
                tail_counter += 1
                if rng.random() < 0.03:
                    sld = f"fresh-domain{tail_counter}.net"
                    tail_slds.append(sld)
                else:
                    sld = rng.choice(tail_slds)
                if rng.random() < 0.02:
                    server = internet._cdn_servers("leaseweb", 1)[0]
                    tail_servers.append(server)
                else:
                    server = rng.choice(tail_servers)
                add_flow(t, client, server, f"res{tail_counter}.{sld}")
            else:
                # Revisit of a previously seen long-tail name.
                if tail_counter:
                    revisit = rng.randint(1, tail_counter)
                    sld = tail_slds[revisit % len(tail_slds)]
                    server = tail_servers[revisit % len(tail_servers)]
                    add_flow(t, client, server, f"res{revisit}.{sld}")

    # -- appspot: general apps -------------------------------------------
    appspot_entry = next(
        (
            e
            for e in internet.entries
            if e.organization.domain == "appspot.com"
            and e.service.protocol is Protocol.HTTP
        ),
        None,
    )
    app_fqdns = appspot_entry.fqdns if appspot_entry else []
    app_servers = (
        appspot_entry.pools[0].servers if appspot_entry else [0x4A7D0001]
    )
    for fqdn in app_fqdns:
        visits = rng.randint(1, 8)
        for _ in range(visits):
            t = rng.uniform(0, horizon)
            add_flow(t, rng.choice(client_ips), rng.choice(app_servers),
                     fqdn, up=400, down=6500)

    # -- appspot: the 45 trackers (Fig. 11 classes) ------------------------
    tracker_names = list(APPSPOT_TRACKERS)
    extra = LIVE_TRACKER_COUNT - len(tracker_names)
    tracker_names += [f"bt-zombie{i}" for i in range(max(extra, 0))]
    tracker_fqdns = []
    bins_per_day = 6
    for index, name in enumerate(tracker_names[:LIVE_TRACKER_COUNT]):
        fqdn = f"{name}.appspot.com"
        tracker_fqdns.append(fqdn)
        _first_day, active_bins = _tracker_schedule(index, days, rng)
        for bin_index in sorted(active_bins):
            announces = rng.randint(2, 6)
            for _ in range(announces):
                t = bin_index * (86400.0 / bins_per_day) + rng.uniform(
                    0, 86400.0 / bins_per_day
                )
                if t >= horizon:
                    continue
                add_flow(
                    t, rng.choice(client_ips), rng.choice(app_servers),
                    fqdn, proto=Protocol.P2P, up=1200, down=2200,
                )

    flows.sort(key=lambda flow: flow.start)
    return LiveDeployment(
        days=days, flows=flows, internet=internet,
        tracker_fqdns=tracker_fqdns,
    )


def _safe_ln(x: float) -> float:
    import math

    return math.log(max(x, 1e-9))
