"""Client behaviour: browsing, caching, prefetching, apps, mobility.

Each simulated customer owns an OS-level stub resolver cache, a set of
favourite services, and an application mix.  The behaviours the paper
measures all live here:

* **cache-before-flow** — a flow is preceded by a DNS response only when
  the client's cache missed; caches are pre-warmed at trace start, which
  produces the early tagging misses the paper excludes with its 5-minute
  warm-up;
* **long cache residency** — OS caches ignore sub-minute CDN TTLs and
  keep entries up to ~1 hour (Sec. 6 / Fig. 13);
* **prefetching** — browsers resolve names they never connect to
  (~half of all resolutions are "useless", Tab. 9);
* **first-flow delay** — lognormal with a heavy prefetch tail (Fig. 12);
* **3G mobility** — clients enter coverage mid-trace with warm caches,
  and some tunnel everything to a proxy without DNS (the US-3G hit-ratio
  dent in Tab. 2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.dns.cache import StubResolverCache
from repro.net.flow import (
    DnsObservation,
    FiveTuple,
    FlowRecord,
    Protocol,
    TransportProto,
)
from repro.simulation.internet import Internet, ServiceEntry
from repro.simulation.p2p import PeerSwarm
from repro.simulation.tls import certificate_name

Event = "DnsObservation | FlowRecord"


@dataclass
class ClientProfile:
    """Behavioural knobs, set per trace profile.

    Attributes:
        prefetch_probability: chance a session also resolves names it
            never uses (drives the Tab. 9 useless fraction).
        embed_probability: chance a browsing session pulls CDN assets.
        delay_median: median first-flow delay seconds (tech dependent:
            FTTH < ADSL < 3G, Fig. 12).
        delay_sigma: lognormal shape of the delay.
        tail_probability: chance of a long prefetch-then-use delay
            (the >10 s tail in Fig. 12).
        cache_lifetime: client cache residency cap in seconds (~1 h).
        is_p2p: BitTorrent user (peer flows without DNS).
        is_tunneled: routes web traffic through a DNS-less proxy (3G).
        enter_time: when the client appears (mobility; caches arrive warm).
        session_rate_per_hour: mean sessions per hour at activity 1.0.
        timezone_offset: local-time offset for the diurnal curve.
        p2p_peer_range: peer flows per P2P round (scarcer on mobile).
        tracker_announce_probability: chance a P2P round also announces
            to a tracker over HTTP — the only DNS-labeled P2P traffic,
            which sets the small P2P hit ratio of Tab. 2.
    """

    prefetch_probability: float = 0.45
    embed_probability: float = 0.65
    delay_median: float = 0.15
    delay_sigma: float = 1.1
    tail_probability: float = 0.05
    cache_lifetime: float = 3600.0
    is_p2p: bool = False
    is_tunneled: bool = False
    enter_time: float = 0.0
    session_rate_per_hour: float = 12.0
    timezone_offset: float = 1.0
    p2p_peer_range: tuple[int, int] = (3, 7)
    tracker_announce_probability: float = 0.06


class Client:
    """One monitored customer."""

    def __init__(
        self,
        ip: int,
        profile: ClientProfile,
        internet: Internet,
        rng: random.Random,
        swarm: Optional[PeerSwarm] = None,
        favourite_count: int = 14,
    ):
        self.ip = ip
        self.profile = profile
        self.internet = internet
        self.rng = rng
        self.swarm = swarm
        self.cache = StubResolverCache(
            capacity=256, max_lifetime=profile.cache_lifetime
        )
        entries = internet.service_entries()
        weights = internet.popularity_weights(entries)
        count = min(favourite_count, len(entries))
        self.favourites = _weighted_sample(rng, entries, weights, count)
        self.assets = internet.service_entries(asset_only=True)
        self._fqdn_choice: dict[int, list[str]] = {}
        # The tunnel proxy is a single address outside any known org.
        self._proxy_ip = 0x0B000001 + (ip & 0xFF)  # 11.0.0.x

    # -- service / FQDN selection -----------------------------------------

    def _pick_entry(self) -> ServiceEntry:
        if self.favourites and self.rng.random() < 0.8:
            return self.rng.choice(self.favourites)
        entries = self.internet.service_entries()
        weights = self.internet.popularity_weights(entries)
        return _weighted_choice(self.rng, entries, weights)

    def _pick_fqdn(self, entry: ServiceEntry, favourite_only: bool = False) -> str:
        """Clients stick to a couple of concrete names per service.

        The first chosen name is the habitual one (picked ~70% of the
        time); ``favourite_only`` forces it, e.g. for cache prewarming.
        """
        key = id(entry)
        chosen = self._fqdn_choice.get(key)
        if chosen is None:
            count = min(len(entry.fqdns), self.rng.randint(1, 3))
            chosen = self.rng.sample(entry.fqdns, count)
            self._fqdn_choice[key] = chosen
        if favourite_only or len(chosen) == 1 or self.rng.random() < 0.7:
            return chosen[0]
        return self.rng.choice(chosen[1:])

    # -- cache management ---------------------------------------------------

    def prewarm(self, entries_count: int, now: float) -> None:
        """Fill the cache as if resolutions happened before the trace.

        No observations are emitted — the monitor never saw these
        queries, which is exactly why early flows go untagged.
        """
        warm = list(self.favourites[:entries_count])
        if self.assets:
            warm.extend(
                self.rng.sample(
                    self.assets, min(len(self.assets), self.rng.randint(2, 5))
                )
            )
        for entry in warm:
            fqdn = self._pick_fqdn(entry, favourite_only=True)
            answers, _ttl = self.internet.resolve(fqdn, now)
            if not answers:
                continue
            residual = self.rng.uniform(
                1200.0, self.profile.cache_lifetime * 1.2
            )
            self.cache.insert(fqdn, tuple(answers), residual, now)

    def _resolve(
        self, fqdn: str, now: float, out: list
    ) -> Optional[tuple[int, ...]]:
        """Resolve through the cache; emit an observation on miss."""
        cached = self.cache.lookup(fqdn, now)
        if cached is not None:
            return cached.addresses
        answers, ttl = self.internet.resolve(fqdn, now)
        if not answers:
            return None
        out.append(
            DnsObservation(
                timestamp=now,
                client_ip=self.ip,
                fqdn=fqdn,
                answers=list(answers),
                ttl=ttl,
            )
        )
        # OS caches ignore tiny CDN TTLs; entries live up to ~1 h.
        lifetime = max(float(ttl), self.rng.uniform(
            self.profile.cache_lifetime * 0.3, self.profile.cache_lifetime
        ))
        self.cache.insert(fqdn, tuple(answers), lifetime, now)
        return tuple(answers)

    # -- flow construction ----------------------------------------------------

    def _first_flow_delay(self) -> float:
        if self.rng.random() < self.profile.tail_probability:
            return self.rng.uniform(10.0, 600.0)
        return self.rng.lognormvariate(
            _ln(self.profile.delay_median), self.profile.delay_sigma
        )

    def _make_flow(
        self,
        entry: ServiceEntry,
        fqdn: str,
        server: int,
        start: float,
    ) -> FlowRecord:
        service = entry.service
        up = max(64, int(self.rng.lognormvariate(_ln(service.bytes_up), 0.8)))
        down = max(
            128, int(self.rng.lognormvariate(_ln(service.bytes_down), 0.9))
        )
        duration = min(600.0, 0.2 + (up + down) / 250_000.0
                       + self.rng.expovariate(1 / 5.0))
        cert = None
        if service.protocol is Protocol.TLS:
            cert = certificate_name(entry.organization, fqdn, self.rng)
        return FlowRecord(
            fid=FiveTuple(
                self.ip,
                server,
                self.rng.randrange(1024, 65535),
                service.port,
                TransportProto.TCP,
            ),
            start=start,
            end=start + duration,
            protocol=service.protocol,
            bytes_up=up,
            bytes_down=down,
            cert_name=cert,
            true_fqdn=fqdn,
        )

    def _fetch(
        self, entry: ServiceEntry, now: float, out: list
    ) -> Optional[FlowRecord]:
        """Resolve (if needed) then open a flow after the first-flow delay."""
        fqdn = self._pick_fqdn(entry)
        answers = self._resolve(fqdn, now, out)
        if answers is None:
            return None
        # Clients mostly take the first answer; sometimes another.
        if len(answers) > 1 and self.rng.random() > 0.7:
            server = self.rng.choice(answers[1:])
        else:
            server = answers[0]
        flow = self._make_flow(
            entry, fqdn, server, now + self._first_flow_delay()
        )
        out.append(flow)
        return flow

    # -- sessions -------------------------------------------------------------

    def run_session(self, now: float, out: list) -> None:
        """One user action: browse / app use / P2P round."""
        if self.profile.is_p2p and self.rng.random() < 0.75:
            self._p2p_session(now, out)
            return
        if self.profile.is_tunneled:
            self._tunneled_session(now, out)
            return
        entry = self._pick_entry()
        self._fetch(entry, now, out)
        service = entry.service
        if service.protocol is Protocol.HTTP and self.assets:
            if self.rng.random() < self.profile.embed_probability:
                for _ in range(self.rng.randint(1, 3)):
                    asset = self.rng.choice(self.assets)
                    self._fetch(asset, now + self.rng.uniform(0.05, 2.0), out)
        if self.rng.random() < self.profile.prefetch_probability:
            self._prefetch(now, out)

    def _prefetch(self, now: float, out: list) -> None:
        """Resolve names found in the page but never accessed (Tab. 9).

        Prefetched names come from the whole web (links on the page),
        not the client's favourites — which is why roughly half of them
        are never followed by a connection.
        """
        entries = self.internet.service_entries()
        weights = self.internet.popularity_weights(entries)
        for _ in range(self.rng.randint(1, 3)):
            entry = _weighted_choice(self.rng, entries, weights)
            fqdn = self._pick_fqdn(entry)
            if self.cache.lookup(fqdn, now) is not None:
                continue
            answers, ttl = self.internet.resolve(fqdn, now)
            if not answers:
                continue
            out.append(
                DnsObservation(
                    timestamp=now + self.rng.uniform(0.0, 0.5),
                    client_ip=self.ip,
                    fqdn=fqdn,
                    answers=list(answers),
                    ttl=ttl,
                )
            )
            # Deliberately NOT cached: prefetch results often bypass the
            # OS cache, and caching them would suppress later real
            # queries, hiding the useless-response signal.

    def _p2p_session(self, now: float, out: list) -> None:
        assert self.swarm is not None
        low, high = self.profile.p2p_peer_range
        for i in range(self.rng.randint(low, high)):
            out.append(
                self.swarm.peer_flow(
                    self.ip, now + i * self.rng.uniform(0.5, 3.0), self.rng
                )
            )
        # Occasional tracker announce — DNS-labeled P2P traffic, the
        # reason Tab. 2 shows ~1% P2P hits rather than zero.
        if self.rng.random() < self.profile.tracker_announce_probability:
            trackers = [
                e
                for e in self.internet.service_entries()
                if e.service.protocol is Protocol.P2P
            ]
            if trackers:
                self._fetch(self.rng.choice(trackers), now, out)

    def _tunneled_session(self, now: float, out: list) -> None:
        """All web traffic to one proxy address, no DNS ever."""
        out.append(
            FlowRecord(
                fid=FiveTuple(
                    self.ip,
                    self._proxy_ip,
                    self.rng.randrange(1024, 65535),
                    self.rng.choice([80, 443]),
                    TransportProto.TCP,
                ),
                start=now,
                end=now + self.rng.expovariate(1 / 30.0),
                protocol=Protocol.HTTP if self.rng.random() < 0.85 else Protocol.TLS,
                bytes_up=int(self.rng.lognormvariate(_ln(2_000), 1.0)),
                bytes_down=int(self.rng.lognormvariate(_ln(20_000), 1.0)),
            )
        )


def _ln(x: float) -> float:
    import math

    return math.log(max(x, 1e-9))


def _weighted_choice(rng: random.Random, items, weights):
    total = sum(weights)
    point = rng.random() * total
    cumulative = 0.0
    for item, weight in zip(items, weights):
        cumulative += weight
        if point <= cumulative:
            return item
    return items[-1]


def _weighted_sample(rng: random.Random, items, weights, count):
    """Sample without replacement, probability proportional to weight."""
    chosen = []
    pool = list(zip(items, weights))
    for _ in range(min(count, len(pool))):
        total = sum(w for _, w in pool)
        if total <= 0:
            break
        point = rng.random() * total
        cumulative = 0.0
        for index, (item, weight) in enumerate(pool):
            cumulative += weight
            if point <= cumulative:
                chosen.append(item)
                pool.pop(index)
                break
    return chosen
