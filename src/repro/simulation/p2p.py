"""BitTorrent-style peer traffic — the flows DNS cannot label.

Peer-to-peer data flows go straight to peer addresses learned from
trackers, never through DNS, so DN-Hunter cannot tag them (Tab. 2 shows
~0-1% hit ratio; the few hits are tracker announces over HTTP).  The
swarm model hands out peer addresses from address space that belongs to
no monitored organization.
"""

from __future__ import annotations

import random

from repro.net.flow import FiveTuple, FlowRecord, Protocol, TransportProto
from repro.net.ip import IPv4Network

# Residential-looking address space for remote peers; deliberately not
# registered in the IP→organization database.
PEER_BLOCKS = [
    IPv4Network.parse("151.48.0.0/16"),
    IPv4Network.parse("79.16.0.0/16"),
    IPv4Network.parse("24.128.0.0/16"),
    IPv4Network.parse("190.18.0.0/16"),
]


class PeerSwarm:
    """A pool of remote BitTorrent peers.

    Args:
        rng: the trace's deterministic generator.
        size: how many distinct peers exist; clients sample from these
            (popular swarms revisit the same peers).
    """

    def __init__(self, rng: random.Random, size: int = 2000):
        if size <= 0:
            raise ValueError("swarm size must be positive")
        self.rng = rng
        self._peers = [self._random_peer() for _ in range(size)]

    def _random_peer(self) -> int:
        block = self.rng.choice(PEER_BLOCKS)
        return block.address(self.rng.randrange(block.size))

    def pick_peer(self) -> int:
        """A peer address for one data connection."""
        return self.rng.choice(self._peers)

    def peer_flow(
        self, client_ip: int, start: float, rng: random.Random
    ) -> FlowRecord:
        """One peer-to-peer data flow (no DNS precedes it)."""
        duration = rng.expovariate(1 / 120.0)
        up = int(rng.lognormvariate(10.0, 1.5))       # uploads dominate
        down = int(rng.lognormvariate(10.5, 1.5))
        return FlowRecord(
            fid=FiveTuple(
                client_ip,
                self.pick_peer(),
                rng.randrange(1024, 65535),
                rng.choice([6881, 6882, 6889, 51413, rng.randrange(1024, 65535)]),
                TransportProto.TCP,
            ),
            start=start,
            end=start + duration,
            protocol=Protocol.P2P,
            bytes_up=up,
            bytes_down=down,
        )
