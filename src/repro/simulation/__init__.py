"""A synthetic "tangled web" internet and ISP workload generator.

The paper's evaluation runs on packet traces from five ISP vantage
points.  Those traces are proprietary, so this package builds the
closest synthetic equivalent: a model internet in which

* content owners (Google, Facebook, Zynga, LinkedIn, ...) publish FQDNs
  whose content is hosted by CDNs and clouds (Akamai, Amazon EC2,
  EdgeCast, ...) with per-geography server pools — the "tangle";
* DNS zones answer queries with CDN-style rotating answer lists, TTL
  policy, and diurnal pool scaling;
* clients browse with OS-level DNS caches, prefetch aggressively
  (useless resolutions), open flows after realistic first-flow delays,
  run mail/chat/P2P applications, and on 3G arrive mid-trace with warm
  caches;
* five trace profiles reproduce the qualitative structure of Tab. 1,
  plus an 18-day "live deployment" stream for Fig. 6/10/11 and Tab. 8.

Every mechanism the paper measures is generated behaviourally, so the
sniffer and analytics exercise the same code paths as on real traffic.
"""

from repro.simulation.entities import (
    Cdn,
    Deployment,
    Organization,
    Service,
)
from repro.simulation.internet import Internet, build_internet
from repro.simulation.trace import (
    Trace,
    TraceProfile,
    TRACE_PROFILES,
    build_live_deployment,
    build_trace,
)

__all__ = [
    "Cdn",
    "Deployment",
    "Organization",
    "Service",
    "Internet",
    "build_internet",
    "Trace",
    "TraceProfile",
    "TRACE_PROFILES",
    "build_trace",
    "build_live_deployment",
]
