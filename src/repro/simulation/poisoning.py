"""DNS cache-poisoning injection (Sec. 4.1's anomaly-detection scenario).

"Consider the case of DNS cache poisoning where a response for certain
FQDN suddenly changes and is different from what was seen by DN-Hunter
in the past.  We can easily flag this scenario as an anomaly."

:func:`inject_poisoning` rewrites a fraction of a trace's DNS responses
for one target FQDN to point at attacker-controlled addresses, giving
the :class:`~repro.analytics.anomaly.MappingAnomalyDetector` a ground
truth to detect.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.net.flow import DnsObservation
from repro.net.ip import IPv4Network

# Attacker infrastructure: a block no legitimate operator announces.
ATTACKER_BLOCK = IPv4Network.parse("203.0.113.0/24")  # TEST-NET-3


@dataclass
class PoisoningCampaign:
    """Record of the injected attack, for evaluating the detector."""

    target_fqdn: str
    start: float
    end: float
    attacker_addresses: list[int] = field(default_factory=list)
    poisoned_observations: int = 0

    def covers(self, timestamp: float) -> bool:
        return self.start <= timestamp <= self.end


def inject_poisoning(
    observations: list[DnsObservation],
    target_fqdn: str,
    start: float,
    end: float,
    seed: int = 99,
    attacker_servers: int = 3,
) -> PoisoningCampaign:
    """Rewrite responses for ``target_fqdn`` inside [start, end].

    Mutates the observation list in place (answers only; timestamps and
    clients stay, as real poisoned responses would) and returns the
    campaign record.
    """
    if end < start:
        raise ValueError("campaign end before start")
    rng = random.Random(seed)
    attacker = [
        ATTACKER_BLOCK.address(rng.randrange(ATTACKER_BLOCK.size))
        for _ in range(attacker_servers)
    ]
    campaign = PoisoningCampaign(
        target_fqdn=target_fqdn.lower(),
        start=start,
        end=end,
        attacker_addresses=attacker,
    )
    for observation in observations:
        if observation.fqdn.lower() != campaign.target_fqdn:
            continue
        if not campaign.covers(observation.timestamp):
            continue
        observation.answers = [rng.choice(attacker)]
        campaign.poisoned_observations += 1
    return campaign
