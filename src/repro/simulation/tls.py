"""TLS certificate behaviour (the Tab. 4 driver).

Each organization has a certificate policy (exact name, wildcard,
organization-generic, or the hosting CDN's own certificate), and a
fraction of TLS sessions are resumed without any certificate exchange —
the paper's four outcome classes emerge from these two mechanisms.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.dns.name import second_level_domain
from repro.simulation.entities import CertPolicy, Organization

# Fraction of TLS flows that resume a session and show no certificate
# ("Certificate exchange might happen only the first time ... all other
# flows following that will share the trust", Sec. 5.2.1).
DEFAULT_RESUME_PROBABILITY = 0.23


def certificate_name(
    organization: Organization,
    fqdn: str,
    rng: random.Random,
    resume_probability: float = DEFAULT_RESUME_PROBABILITY,
) -> Optional[str]:
    """The server name a passive monitor would read from this TLS flow.

    Returns None for resumed sessions (no certificate on the wire).
    """
    if rng.random() < resume_probability:
        return None
    sld = second_level_domain(fqdn)
    policy = organization.cert_policy
    if policy is CertPolicy.EXACT:
        return fqdn.lower()
    if policy is CertPolicy.WILDCARD:
        return f"*.{sld}"
    if policy is CertPolicy.ORG_GENERIC:
        return f"www.{sld}"
    if policy is CertPolicy.CDN_NAME:
        return organization.cert_cdn_name or "edge.cdn.example.net"
    raise ValueError(f"unhandled certificate policy {policy!r}")
