"""The concrete tangled-web catalog.

Organizations, CDNs and services are modelled on the ones the paper's
evaluation names: Zynga on Amazon EC2 + Akamai (Fig. 8), LinkedIn across
Akamai/CDNetworks/EdgeCast (Fig. 7), Facebook static content on Akamai's
fbcdn.net, Twitter leaning on Akamai only in Europe, Dailymotion on
Dedibox (Fig. 9), Amazon-hosted ad networks (Tab. 5), mail and messaging
services on their well-known ports (Tab. 6/7), and BitTorrent trackers
squatting on Google appspot (Fig. 10/11, Tab. 8).

Server counts are scaled ~1:10 from the paper so the traces stay
laptop-sized; flow-share *ratios* follow the figures.
"""

from __future__ import annotations

from repro.net.flow import Protocol
from repro.simulation.entities import (
    Cdn,
    CertPolicy,
    Deployment,
    Organization,
    PtrStyle,
    Service,
)

EU = "EU"
US = "US"
GEOGRAPHIES = (EU, US)

# Organizations whose services are page assets: browsing sessions pull
# embedded fetches from these alongside the primary page.
ASSET_DOMAINS = frozenset(
    {"fbcdn.net", "cloudfront.net", "ytimg.com", "twimg.com",
     "sharethis.com", "invitemedia.com", "rubiconproject.com"}
)


def build_cdns() -> list[Cdn]:
    """The infrastructure operators with per-geography address blocks."""
    return [
        Cdn(
            name="akamai",
            cidrs_by_geo={EU: ["2.16.0.0/20"], US: ["2.32.0.0/20"]},
            ptr_style=PtrStyle.CDN_INFRA,
            ptr_template="a{ip}.deploy.akamaitechnologies.com",
            ptr_coverage=0.75,
            default_ttl=20,
        ),
        Cdn(
            name="amazon",
            cidrs_by_geo={EU: ["46.51.0.0/20"], US: ["54.224.0.0/20"]},
            ptr_style=PtrStyle.CDN_INFRA,
            ptr_template="ec2-{ip}.compute-1.amazonaws.com",
            ptr_coverage=0.85,
            default_ttl=60,
        ),
        Cdn(
            name="google",
            cidrs_by_geo={EU: ["173.194.0.0/20"], US: ["74.125.0.0/20"]},
            ptr_style=PtrStyle.CDN_INFRA,
            ptr_template="cache-{ip}.1e100.net",
            ptr_coverage=0.9,
            default_ttl=300,
        ),
        Cdn(
            name="level 3",
            cidrs_by_geo={EU: ["8.252.0.0/21"], US: ["8.254.0.0/21"]},
            ptr_style=PtrStyle.CDN_INFRA,
            ptr_template="cds{ip}.footprint.net",
            ptr_coverage=0.4,
            default_ttl=60,
        ),
        Cdn(
            name="leaseweb",
            cidrs_by_geo={EU: ["85.17.0.0/21"], US: ["85.25.0.0/21"]},
            ptr_style=PtrStyle.CDN_INFRA,
            ptr_template="{ip}.hosted-by.leaseweb.com",
            ptr_coverage=0.8,
            default_ttl=300,
        ),
        Cdn(
            name="cotendo",
            cidrs_by_geo={EU: ["12.129.0.0/22"], US: ["12.130.0.0/22"]},
            ptr_style=PtrStyle.NONE,
            ptr_coverage=0.0,
            default_ttl=30,
        ),
        Cdn(
            name="edgecast",
            cidrs_by_geo={EU: ["93.184.216.0/22"], US: ["68.232.32.0/22"]},
            ptr_style=PtrStyle.CDN_INFRA,
            ptr_template="{ip}.edgecastcdn.net",
            ptr_coverage=0.6,
            default_ttl=60,
        ),
        Cdn(
            name="microsoft",
            cidrs_by_geo={EU: ["94.245.64.0/21"], US: ["65.52.0.0/21"]},
            ptr_style=PtrStyle.CDN_INFRA,
            ptr_template="{ip}.msedge.net",
            ptr_coverage=0.5,
            default_ttl=120,
        ),
        Cdn(
            name="cdnetworks",
            cidrs_by_geo={EU: ["95.211.0.0/22"], US: ["120.29.144.0/22"]},
            ptr_style=PtrStyle.CDN_INFRA,
            ptr_template="{ip}.cdngc.net",
            ptr_coverage=0.5,
            default_ttl=30,
        ),
        Cdn(
            name="dedibox",
            cidrs_by_geo={EU: ["88.190.0.0/21"], US: ["88.191.0.0/21"]},
            ptr_style=PtrStyle.CDN_INFRA,
            ptr_template="{ip}.poneytelecom.eu",
            ptr_coverage=0.7,
            default_ttl=120,
        ),
        Cdn(
            name="meta",
            cidrs_by_geo={EU: ["174.138.0.0/22"], US: ["174.137.0.0/22"]},
            ptr_style=PtrStyle.NONE,
            ptr_coverage=0.0,
            default_ttl=60,
        ),
        Cdn(
            name="ntt",
            cidrs_by_geo={EU: ["129.251.0.0/22"], US: ["129.250.0.0/22"]},
            ptr_style=PtrStyle.CDN_INFRA,
            ptr_template="{ip}.gin.ntt.net",
            ptr_coverage=0.6,
            default_ttl=300,
        ),
    ]


def _blog_names(count: int = 150) -> list[str]:
    stems = [
        "cucina", "viaggi", "moda", "tech", "photo", "music", "cars",
        "sport", "news", "craft", "garden", "money", "movie", "game",
        "style",
    ]
    return [f"{stems[i % len(stems)]}{i // len(stems)}" for i in range(count)]


def _appspot_apps(count: int = 400) -> list[str]:
    stems = [
        "notes", "chess", "budget", "recipe", "quiz", "poll", "wiki",
        "paste", "chart", "todo", "meet", "shorten", "translate", "feed",
        "album", "forum",
    ]
    return [f"{stems[i % len(stems)]}-app{i // len(stems)}" for i in range(count)]


APPSPOT_TRACKERS = [
    "open-tracker", "rlskingbt", "exodus-tracker", "genesis-bt",
    "bt-announce", "swarm-tracker", "peertracker", "freetracker",
    "megatracker", "publict0rrent",
] + [f"tracker-zone{i}" for i in range(10)]


def build_organizations() -> list[Organization]:
    """Every content owner in the synthetic web."""
    orgs: list[Organization] = []

    # ------------------------------------------------------------------
    # Google properties (WILDCARD certs — the paper's *.google.com case).
    orgs.append(
        Organization(
            domain="google.com",
            cert_policy=CertPolicy.WILDCARD,
            dns_ttl=300,
            services=[
                Service("www", 80, Protocol.HTTP,
                        [Deployment("google", 16)], popularity=9.0,
                        answer_list_size=8),
                Service("mail", 443, Protocol.TLS,
                        [Deployment("google", 12)], popularity=4.0,
                        answer_list_size=8),
                Service("docs", 443, Protocol.TLS,
                        [Deployment("google", 8)], popularity=0.8),
                Service("accounts", 443, Protocol.TLS,
                        [Deployment("google", 6)], popularity=1.0),
                Service("scholar", 80, Protocol.HTTP,
                        [Deployment("google", 4)], popularity=0.5),
                # Mail exchange names (Tab. 6 port 25 tokens).
                Service("aspmx.l", 25, Protocol.MAIL,
                        [Deployment("google", 4)], popularity=0.8),
                Service("gmail-smtp-in.l", 25, Protocol.MAIL,
                        [Deployment("google", 4)], popularity=0.7),
                # Messaging (Tab. 7: gtalk on 5222, Android Market 5228).
                Service("chat", 5222, Protocol.CHAT,
                        [Deployment("google", 4)], popularity=1.2,
                        popularity_by_geo={US: 2.5}),
                Service("mtalk", 5228, Protocol.CHAT,
                        [Deployment("google", 4)], popularity=0.6,
                        popularity_by_geo={US: 3.0}),
            ],
        )
    )
    orgs.append(
        Organization(
            domain="youtube.com",
            cert_policy=CertPolicy.WILDCARD,
            dns_ttl=120,
            services=[
                Service("www", 80, Protocol.HTTP,
                        [Deployment("google", 10)], popularity=7.0,
                        bytes_down=60_000, embedded=("ytimg.com",),
                        answer_list_size=3),
                Service("v{n}.lscache{n}", 80, Protocol.HTTP,
                        [Deployment("google", 40, diurnal_scaling=True)],
                        popularity=6.0, n_range=(1, 8),
                        bytes_down=400_000, answer_list_size=4),
            ],
        )
    )
    orgs.append(
        Organization(
            domain="ytimg.com",
            cert_policy=CertPolicy.ORG_GENERIC,
            services=[
                Service("s", 80, Protocol.HTTP, [Deployment("google", 6)],
                        popularity=2.0, bytes_down=8_000),
                Service("i{n}", 80, Protocol.HTTP, [Deployment("google", 8)],
                        popularity=2.0, n_range=(1, 4), bytes_down=5_000),
            ],
        )
    )
    orgs.append(
        Organization(
            domain="blogspot.com",
            cert_policy=CertPolicy.ORG_GENERIC,
            dns_ttl=600,
            services=[
                Service("{name}", 80, Protocol.HTTP,
                        [Deployment("google", 12)], popularity=3.5,
                        name_pool=_blog_names(90), bytes_down=25_000,
                        answer_list_size=2),
            ],
        )
    )
    # Appspot: legit apps + the BitTorrent trackers of Sec. 5.6.
    orgs.append(
        Organization(
            domain="appspot.com",
            cert_policy=CertPolicy.WILDCARD,
            dns_ttl=300,
            services=[
                Service("{name}", 80, Protocol.HTTP,
                        [Deployment("google", 8)], popularity=1.2,
                        name_pool=_appspot_apps(), bytes_up=400,
                        bytes_down=6_500),
                Service("{name}", 80, Protocol.P2P,
                        [Deployment("google", 8)], popularity=0.15,
                        popularity_by_geo={EU: 0.25},
                        name_pool=APPSPOT_TRACKERS, bytes_up=1_200,
                        bytes_down=2_200),
            ],
        )
    )

    # ------------------------------------------------------------------
    # Facebook: mostly SELF, static content on Akamai's fbcdn.net.
    orgs.append(
        Organization(
            domain="facebook.com",
            cert_policy=CertPolicy.WILDCARD,
            self_cidrs_by_geo={EU: ["66.220.144.0/22"],
                               US: ["69.171.224.0/22"]},
            dns_ttl=300,
            services=[
                Service("www", 80, Protocol.HTTP,
                        [Deployment("SELF", 10, weight=0.92),
                         Deployment("akamai", 4, weight=0.08)],
                        popularity=10.0, embedded=("fbcdn.net",),
                        answer_list_size=4),
                Service("login", 443, Protocol.TLS,
                        [Deployment("SELF", 4)], popularity=2.5),
                Service("apps", 80, Protocol.HTTP,
                        [Deployment("SELF", 6, weight=0.9),
                         Deployment("akamai", 2, weight=0.1)],
                        popularity=3.0),
            ],
        )
    )
    orgs.append(
        Organization(
            domain="fbcdn.net",
            cert_policy=CertPolicy.CDN_NAME,
            cert_cdn_name="a248.e.akamai.net",
            dns_ttl=20,
            services=[
                Service("photos-{name}", 80, Protocol.HTTP,
                        [Deployment("akamai", 60, diurnal_scaling=True)],
                        popularity=8.0,
                        name_pool=[chr(c) for c in range(ord("a"), ord("z") + 1)],
                        bytes_down=30_000, answer_list_size=4),
                Service("static", 80, Protocol.HTTP,
                        [Deployment("akamai", 20, diurnal_scaling=True)],
                        popularity=4.0, bytes_down=10_000,
                        answer_list_size=3),
                Service("profile", 80, Protocol.HTTP,
                        [Deployment("akamai", 20, diurnal_scaling=True)],
                        popularity=3.0, bytes_down=6_000,
                        answer_list_size=3),
            ],
        )
    )

    # ------------------------------------------------------------------
    # Twitter: SELF in the US, leans on Akamai in Europe (Fig. 9).
    orgs.append(
        Organization(
            domain="twitter.com",
            cert_policy=CertPolicy.EXACT,
            self_cidrs_by_geo={EU: ["199.59.148.0/22"],
                               US: ["199.16.156.0/22"]},
            dns_ttl=30,
            services=[
                Service("www", 80, Protocol.HTTP,
                        [Deployment("SELF", 6, weight=0.6),
                         Deployment("akamai", 8, weight=0.4,
                                    geographies=(EU,)),
                         Deployment("SELF", 2, weight=0.4,
                                    geographies=(US,))],
                        popularity=5.0, embedded=("twimg.com",)),
                Service("api", 443, Protocol.TLS,
                        [Deployment("SELF", 4, weight=0.7),
                         Deployment("akamai", 4, weight=0.3,
                                    geographies=(EU,)),
                         Deployment("SELF", 2, weight=0.3,
                                    geographies=(US,))],
                        popularity=3.0),
            ],
        )
    )
    orgs.append(
        Organization(
            domain="twimg.com",
            cert_policy=CertPolicy.CDN_NAME,
            cert_cdn_name="cloudfront.net",
            services=[
                Service("a{n}", 80, Protocol.HTTP,
                        [Deployment("amazon", 6)], popularity=2.0,
                        popularity_by_geo={EU: 3.0}, n_range=(0, 3),
                        bytes_down=8_000),
            ],
        )
    )

    # ------------------------------------------------------------------
    # Dailymotion: Dedibox everywhere, extra US mirrors (Fig. 9 bottom).
    orgs.append(
        Organization(
            domain="dailymotion.com",
            cert_policy=CertPolicy.EXACT,
            self_cidrs_by_geo={EU: ["195.8.212.0/22"], US: ["195.8.216.0/22"]},
            dns_ttl=60,
            services=[
                Service("www", 80, Protocol.HTTP,
                        [Deployment("dedibox", 10, weight=0.8),
                         Deployment("edgecast", 2, weight=0.2,
                                    geographies=(EU,)),
                         Deployment("SELF", 3, weight=0.1,
                                    geographies=(US,)),
                         Deployment("meta", 3, weight=0.06,
                                    geographies=(US,)),
                         Deployment("ntt", 2, weight=0.04,
                                    geographies=(US,))],
                        popularity=3.0, bytes_down=50_000),
                Service("proxy-{n}", 80, Protocol.STREAMING,
                        [Deployment("dedibox", 12, weight=0.9),
                         Deployment("meta", 3, weight=0.1,
                                    geographies=(US,))],
                        popularity=2.0, n_range=(1, 20),
                        bytes_down=500_000),
            ],
        )
    )

    # ------------------------------------------------------------------
    # Zynga (Fig. 8): games on Amazon EC2, static on Akamai, corp on SELF.
    amazon_games = [
        "cityville", "frontierville", "petville", "fishville.facebook",
        "treasure", "cafe", "fish", "frontier", "support", "static",
        "toolbar", "rewards", "sslrewards", "zbar", "accounts",
        "iphone.stats", "glb.zyngawithfriends",
    ]
    akamai_static = [
        "assets", "avatars", "zgn", "zpay", "zbar.cdn", "{n}",
        "fb_client_{n}", "fb_{n}", "dev{n}.cclough", "myspace.esp",
        "facebook{n}", "facebook.cdn", "mobile",
    ]
    zynga_self = [
        "www", "mwms", "nav{n}", "zpay{n}", "forum", "secure{n}",
        "track", "streetracing.myspace{n}", "mafiawars", "vampires",
        "poker",
    ]
    zynga_services: list[Service] = []
    for sub in amazon_games:
        zynga_services.append(
            Service(sub, 443, Protocol.TLS,
                    [Deployment("amazon", 12)], popularity=0.86 / len(amazon_games) * 10,
                    n_range=(1, 4), bytes_down=15_000, answer_list_size=3)
        )
    for sub in akamai_static:
        zynga_services.append(
            Service(sub, 80, Protocol.HTTP,
                    [Deployment("akamai", 5)], popularity=0.07 / len(akamai_static) * 10,
                    n_range=(1, 4), bytes_down=9_000)
        )
    for sub in zynga_self:
        zynga_services.append(
            Service(sub, 80, Protocol.HTTP,
                    [Deployment("SELF", 5)], popularity=0.07 / len(zynga_self) * 10,
                    n_range=(1, 4), bytes_down=7_000)
        )
    orgs.append(
        Organization(
            domain="zynga.com",
            cert_policy=CertPolicy.CDN_NAME,
            cert_cdn_name="a248.e.akamai.net",
            self_cidrs_by_geo={EU: ["64.210.0.0/22"], US: ["64.211.0.0/22"]},
            dns_ttl=60,
            services=zynga_services,
        )
    )

    # ------------------------------------------------------------------
    # LinkedIn (Fig. 7): four hosting arrangements with the paper's shares.
    orgs.append(
        Organization(
            domain="linkedin.com",
            cert_policy=CertPolicy.EXACT,
            self_cidrs_by_geo={EU: ["108.174.0.0/22"], US: ["108.175.0.0/22"]},
            dns_ttl=300,
            services=[
                Service("media{n}", 80, Protocol.HTTP,
                        [Deployment("akamai", 2)], popularity=0.17 * 10,
                        n_range=(1, 6), bytes_down=12_000),
                Service("media", 80, Protocol.HTTP,
                        [Deployment("cdnetworks", 8)], popularity=0.015 * 10),
                Service("static{n}", 80, Protocol.HTTP,
                        [Deployment("cdnetworks", 7)], popularity=0.015 * 10,
                        n_range=(1, 5)),
                Service("media{n}platform", 80, Protocol.HTTP,
                        [Deployment("edgecast", 1)], popularity=0.59 * 10,
                        n_range=(1, 4), bytes_down=15_000),
                Service("www", 80, Protocol.HTTP,
                        [Deployment("SELF", 3)], popularity=0.16 * 10),
                Service("www{n}", 443, Protocol.TLS,
                        [Deployment("SELF", 3)], popularity=0.06 * 10,
                        n_range=(6, 8)),
            ],
        )
    )

    # ------------------------------------------------------------------
    # Dropbox on Amazon (the paper's QoS example; encrypted).
    orgs.append(
        Organization(
            domain="dropbox.com",
            # Served straight off the hosting cloud's certificate — the
            # paper's "a248.akamai.net serving Zynga" situation.
            cert_policy=CertPolicy.CDN_NAME,
            cert_cdn_name="s3.amazonaws.com",
            dns_ttl=60,
            services=[
                Service("www", 443, Protocol.TLS, [Deployment("amazon", 6)],
                        popularity=1.5),
                Service("client", 443, Protocol.TLS,
                        [Deployment("amazon", 10)], popularity=2.0,
                        bytes_up=50_000, bytes_down=50_000),
            ],
        )
    )

    # ------------------------------------------------------------------
    # The Amazon-hosted long tail of Tab. 5 (geo-dependent popularity).
    def amazon_org(domain, subdomain, pop_eu, pop_us, protocol=Protocol.HTTP,
                   servers=4, name_pool=(), n_range=(1, 8), cert=CertPolicy.EXACT):
        return Organization(
            domain=domain,
            cert_policy=cert,
            dns_ttl=60,
            services=[
                Service(subdomain, 443 if protocol is Protocol.TLS else 80,
                        protocol, [Deployment("amazon", servers)],
                        popularity=pop_eu,
                        popularity_by_geo={EU: pop_eu, US: pop_us},
                        name_pool=name_pool, n_range=n_range,
                        bytes_down=6_000, answer_list_size=2),
            ],
        )

    cloudfront_ids = [f"d{i}hx{i%7}q" for i in range(60)]
    orgs.extend(
        [
            amazon_org("cloudfront.net", "{name}", 4.0, 2.0,
                       servers=12, name_pool=cloudfront_ids),
            amazon_org("playfish.com", "cdn.game{n}", 3.2, 0.2, servers=6,
                       n_range=(1, 20)),
            amazon_org("sharethis.com", "w{n}", 1.0, 1.0),
            amazon_org("invitemedia.com", "ads{n}", 0.4, 2.0),
            amazon_org("rubiconproject.com", "optimized-by{n}", 0.4, 1.4),
            amazon_org("amazonaws.com", "s3-{n}", 0.8, 0.6, servers=8,
                       n_range=(1, 30)),
            amazon_org("amazon.com", "www", 0.4, 1.4, servers=6),
            amazon_org("andomedia.com", "ando{n}", 0.0, 1.0),
            amazon_org("admarvel.com", "api{n}", 0.0, 0.7),
            amazon_org("mobclix.com", "data{n}", 0.0, 0.9),
            amazon_org("imdb.com", "www", 0.25, 0.1),
        ]
    )

    # ------------------------------------------------------------------
    # Mail providers (Tab. 6: ports 25/110/143/554/587/995).
    orgs.append(
        Organization(
            domain="altn.it",
            cert_policy=CertPolicy.EXACT,
            self_cidrs_by_geo={EU: ["62.149.128.0/22"], US: ["62.149.132.0/22"]},
            dns_ttl=600,
            services=[
                Service("smtp{n}.mail", 25, Protocol.MAIL,
                        [Deployment("SELF", 3)], popularity=1.6,
                        popularity_by_geo={US: 0.2}, n_range=(1, 4),
                        bytes_up=8_000, bytes_down=600),
                Service("mx{n}", 25, Protocol.MAIL, [Deployment("SELF", 2)],
                        popularity=0.7, popularity_by_geo={US: 0.1},
                        n_range=(1, 3), bytes_up=6_000, bytes_down=500),
                Service("altn.mailin", 25, Protocol.MAIL,
                        [Deployment("SELF", 2)], popularity=0.5,
                        popularity_by_geo={US: 0.1}),
                Service("pop.mail", 110, Protocol.MAIL,
                        [Deployment("SELF", 3)], popularity=1.8,
                        popularity_by_geo={US: 0.2}, bytes_up=400,
                        bytes_down=20_000),
                Service("pop{n}.mail", 110, Protocol.MAIL,
                        [Deployment("SELF", 3)], popularity=0.9,
                        popularity_by_geo={US: 0.1}, n_range=(1, 5)),
                Service("imap.mail", 143, Protocol.MAIL,
                        [Deployment("SELF", 2)], popularity=0.8,
                        popularity_by_geo={US: 0.1}),
                Service("smtp.submit", 587, Protocol.MAIL,
                        [Deployment("SELF", 2)], popularity=0.5,
                        popularity_by_geo={US: 0.05}),
            ],
        )
    )
    orgs.append(
        Organization(
            domain="fastmail.com",
            cert_policy=CertPolicy.EXACT,
            self_cidrs_by_geo={EU: ["66.111.4.0/24"], US: ["66.111.5.0/24"]},
            services=[
                Service("mailin{n}", 25, Protocol.MAIL,
                        [Deployment("SELF", 2)], popularity=0.6,
                        n_range=(1, 3), bytes_up=5_000, bytes_down=400),
                Service("pop.mailbus", 110, Protocol.MAIL,
                        [Deployment("SELF", 2)], popularity=0.7,
                        bytes_down=15_000),
                Service("mail{n}", 25, Protocol.MAIL,
                        [Deployment("SELF", 2)], popularity=0.9,
                        n_range=(1, 4)),
            ],
        )
    )
    orgs.append(
        Organization(
            domain="live.com",
            cert_policy=CertPolicy.ORG_GENERIC,
            dns_ttl=300,
            services=[
                Service("pop{n}.glbdns.hot", 995, Protocol.TLS,
                        [Deployment("microsoft", 4)], popularity=1.2,
                        popularity_by_geo={US: 0.4}, n_range=(1, 4),
                        bytes_down=18_000),
                Service("mail.glbdns.hot", 995, Protocol.TLS,
                        [Deployment("microsoft", 3)], popularity=0.7,
                        popularity_by_geo={US: 0.3}),
                # MSN messenger (Tab. 6 port 1863).
                Service("messenger.relay.edge", 1863, Protocol.CHAT,
                        [Deployment("microsoft", 4)], popularity=1.3,
                        bytes_up=2_000, bytes_down=2_000),
                Service("voice.messenger", 1863, Protocol.CHAT,
                        [Deployment("microsoft", 2)], popularity=0.4),
            ],
        )
    )
    orgs.append(
        Organization(
            domain="msn.com",
            cert_policy=CertPolicy.ORG_GENERIC,
            services=[
                Service("messenger.emea", 1863, Protocol.CHAT,
                        [Deployment("microsoft", 2)], popularity=0.5,
                        popularity_by_geo={US: 0.1}),
            ],
        )
    )
    orgs.append(
        Organization(
            domain="aruba.it",
            cert_policy=CertPolicy.EXACT,
            self_cidrs_by_geo={EU: ["212.48.0.0/22"], US: ["212.48.4.0/22"]},
            services=[
                Service("pop.pec", 995, Protocol.TLS,
                        [Deployment("SELF", 2)], popularity=0.6,
                        popularity_by_geo={US: 0.02}, bytes_down=9_000),
                Service("pec.mail", 995, Protocol.TLS,
                        [Deployment("SELF", 2)], popularity=0.3,
                        popularity_by_geo={US: 0.02}),
            ],
        )
    )
    # Apple: IMAP + push notifications + RTSP trailers (Tab. 6/7).
    orgs.append(
        Organization(
            domain="apple.com",
            cert_policy=CertPolicy.EXACT,
            self_cidrs_by_geo={EU: ["17.0.0.0/21"], US: ["17.8.0.0/21"]},
            dns_ttl=600,
            services=[
                Service("apple.imap.mail", 143, Protocol.MAIL,
                        [Deployment("SELF", 2)], popularity=0.4,
                        bytes_down=12_000),
                Service("courier.push", 5223, Protocol.TLS,
                        [Deployment("SELF", 4)], popularity=0.5,
                        popularity_by_geo={US: 2.2}, bytes_up=500,
                        bytes_down=500),
                Service("streaming.qtv", 554, Protocol.STREAMING,
                        [Deployment("SELF", 2)], popularity=0.15,
                        bytes_down=200_000),
                Service("itunes", 80, Protocol.HTTP,
                        [Deployment("akamai", 6)], popularity=1.2,
                        bytes_down=40_000),
            ],
        )
    )

    # ------------------------------------------------------------------
    # Messaging / niche services of Tab. 7 (US-3G heavy).
    orgs.append(
        Organization(
            domain="yahoo.com",
            cert_policy=CertPolicy.ORG_GENERIC,
            self_cidrs_by_geo={EU: ["87.248.112.0/21"], US: ["98.136.0.0/21"]},
            services=[
                Service("msg.webcs", 5050, Protocol.CHAT,
                        [Deployment("SELF", 3)], popularity=0.4,
                        popularity_by_geo={US: 1.6}),
                Service("sip.voipa", 5050, Protocol.CHAT,
                        [Deployment("SELF", 2)], popularity=0.2,
                        popularity_by_geo={US: 0.6}),
                Service("www", 80, Protocol.HTTP, [Deployment("SELF", 4)],
                        popularity=2.0),
            ],
        )
    )
    orgs.append(
        Organization(
            domain="aol.com",
            cert_policy=CertPolicy.ORG_GENERIC,
            self_cidrs_by_geo={EU: ["205.189.0.0/22"], US: ["205.188.0.0/22"]},
            services=[
                Service("americaonline", 5190, Protocol.CHAT,
                        [Deployment("SELF", 2)], popularity=0.15,
                        popularity_by_geo={US: 0.7}),
            ],
        )
    )
    orgs.append(
        Organization(
            domain="opera-mini.net",
            cert_policy=CertPolicy.EXACT,
            self_cidrs_by_geo={EU: ["195.189.142.0/23"], US: ["141.0.8.0/22"]},
            services=[
                Service("opera.mini{n}", 1080, Protocol.HTTP,
                        [Deployment("SELF", 4)], popularity=0.1,
                        popularity_by_geo={US: 2.0}, n_range=(1, 6),
                        bytes_down=9_000),
            ],
        )
    )
    orgs.append(
        Organization(
            domain="lindenlab.com",
            cert_policy=CertPolicy.EXACT,
            self_cidrs_by_geo={EU: ["216.83.0.0/21"], US: ["216.82.0.0/21"]},
            services=[
                Service("sim{n}.agni", 12043, Protocol.OTHER,
                        [Deployment("SELF", 6)], popularity=0.05,
                        popularity_by_geo={US: 0.8}, n_range=(1, 30),
                        bytes_up=30_000, bytes_down=80_000),
                Service("sim{n}.agni", 12046, Protocol.OTHER,
                        [Deployment("SELF", 6)], popularity=0.04,
                        popularity_by_geo={US: 0.5}, n_range=(1, 30)),
            ],
        )
    )

    # ------------------------------------------------------------------
    # BitTorrent tracker domains (Tab. 7 ports 1337/2710/6969/18182).
    orgs.append(
        Organization(
            domain="1337x.org",
            cert_policy=CertPolicy.EXACT,
            self_cidrs_by_geo={EU: ["91.121.0.0/22"], US: ["91.122.0.0/22"]},
            dns_ttl=1800,
            services=[
                Service("exodus", 1337, Protocol.P2P,
                        [Deployment("SELF", 2)], popularity=0.04,
                        popularity_by_geo={US: 0.45}, bytes_up=900,
                        bytes_down=1_500),
                Service("genesis", 1337, Protocol.P2P,
                        [Deployment("SELF", 2)], popularity=0.02,
                        popularity_by_geo={US: 0.22}),
            ],
        )
    )
    orgs.append(
        Organization(
            domain="openbittorrent.com",
            cert_policy=CertPolicy.EXACT,
            self_cidrs_by_geo={EU: ["188.165.0.0/22"], US: ["188.166.0.0/22"]},
            dns_ttl=1800,
            services=[
                Service("tracker", 2710, Protocol.P2P,
                        [Deployment("SELF", 2)], popularity=0.05,
                        popularity_by_geo={US: 0.30}, bytes_up=800,
                        bytes_down=1_400),
                Service("www", 2710, Protocol.HTTP,
                        [Deployment("SELF", 1)], popularity=0.01,
                        popularity_by_geo={US: 0.05}),
            ],
        )
    )
    orgs.append(
        Organization(
            domain="publicbt.com",
            cert_policy=CertPolicy.EXACT,
            self_cidrs_by_geo={EU: ["188.164.0.0/22"], US: ["188.167.0.0/22"]},
            dns_ttl=1800,
            services=[
                Service("tracker", 6969, Protocol.P2P,
                        [Deployment("SELF", 2)], popularity=0.08,
                        popularity_by_geo={US: 0.40}, bytes_up=800,
                        bytes_down=1_400),
                Service("tracker{n}", 6969, Protocol.P2P,
                        [Deployment("SELF", 2)], popularity=0.03,
                        popularity_by_geo={US: 0.16}, n_range=(1, 4)),
                Service("torrent", 6969, Protocol.P2P,
                        [Deployment("SELF", 1)], popularity=0.02,
                        popularity_by_geo={US: 0.10}),
                Service("exodus.bt", 6969, Protocol.P2P,
                        [Deployment("SELF", 1)], popularity=0.02,
                        popularity_by_geo={US: 0.08}),
            ],
        )
    )
    orgs.append(
        Organization(
            domain="snakeoil-tracker.net",
            cert_policy=CertPolicy.EXACT,
            self_cidrs_by_geo={EU: ["178.32.0.0/22"], US: ["178.33.0.0/22"]},
            dns_ttl=1800,
            services=[
                Service("useful.broker", 18182, Protocol.P2P,
                        [Deployment("SELF", 2)], popularity=0.03,
                        popularity_by_geo={US: 0.30}, bytes_up=900,
                        bytes_down=1_500),
            ],
        )
    )

    # ------------------------------------------------------------------
    # Generic long-tail web (keeps the FQDN universe diverse).
    orgs.append(
        Organization(
            domain="wikipedia.org",
            cert_policy=CertPolicy.EXACT,
            self_cidrs_by_geo={EU: ["91.198.174.0/24"], US: ["208.80.152.0/22"]},
            services=[
                Service("{name}", 80, Protocol.HTTP,
                        [Deployment("SELF", 4)], popularity=3.0,
                        name_pool=["en", "it", "fr", "de", "es", "commons"],
                        bytes_down=20_000),
            ],
        )
    )
    orgs.append(
        Organization(
            domain="bbc.co.uk",
            cert_policy=CertPolicy.EXACT,
            services=[
                Service("www", 80, Protocol.HTTP,
                        [Deployment("level 3", 4, weight=0.5),
                         Deployment("akamai", 4, weight=0.5)],
                        popularity=1.6, popularity_by_geo={US: 0.4},
                        bytes_down=25_000),
                Service("news", 80, Protocol.HTTP,
                        [Deployment("akamai", 4)], popularity=1.0,
                        popularity_by_geo={US: 0.3}),
            ],
        )
    )
    orgs.append(
        Organization(
            domain="leasehost.net",
            cert_policy=CertPolicy.EXACT,
            services=[
                Service("{name}", 80, Protocol.HTTP,
                        [Deployment("leaseweb", 10)], popularity=1.2,
                        name_pool=[f"site{i}" for i in range(40)],
                        bytes_down=10_000),
            ],
        )
    )
    orgs.append(
        Organization(
            domain="cotendo-shop.com",
            cert_policy=CertPolicy.EXACT,
            services=[
                Service("shop{n}", 80, Protocol.HTTP,
                        [Deployment("cotendo", 4)], popularity=0.5,
                        n_range=(1, 10), bytes_down=12_000),
            ],
        )
    )
    orgs.append(
        Organization(
            domain="windowsupdate.com",
            cert_policy=CertPolicy.ORG_GENERIC,
            services=[
                Service("download.update{n}", 80, Protocol.HTTP,
                        [Deployment("microsoft", 6)], popularity=1.4,
                        n_range=(1, 6), bytes_down=150_000),
            ],
        )
    )

    return orgs


def build_catalog() -> tuple[list[Cdn], list[Organization]]:
    """The full synthetic-web catalog: (CDNs, organizations)."""
    return build_cdns(), build_organizations()
