"""Assemble the synthetic internet from the catalog.

``build_internet(geography)`` creates, for one vantage-point geography:

* an address plan — every CDN gets a shared per-geography edge pool that
  its customers' deployments draw from (so one Akamai address serves
  several organizations: the fan-in of Fig. 3), every SELF-hosting
  organization gets its own block;
* forward DNS state — each concrete FQDN resolves to a rotating window
  over its deployment's server pool, with TTL policy and diurnal pool
  scaling (Fig. 4 behaviour);
* reverse DNS — PTR records per operator naming style and coverage
  (what makes reverse lookups mostly useless, Tab. 3);
* the IP→organization database and whois registry the analytics use.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Optional

from repro.dns.server import RecursiveResolver, Zone
from repro.net.flow import Protocol as _Protocol
from repro.net.ip import IPv4Network, IPv4Pool, ip_to_str
from repro.orgdb.ipdb import IpOrganizationDb
from repro.orgdb.whois import OrgKind, OrgRecord, WhoisRegistry
from repro.simulation.catalog import ASSET_DOMAINS, build_catalog
from repro.simulation.diurnal import pool_scale
from repro.simulation.entities import (
    Cdn,
    Deployment,
    Organization,
    PtrStyle,
    Service,
)

MAX_EXPANSIONS_PER_SERVICE = 400
_HTTP = _Protocol.HTTP
DEFAULT_TAIL_SITES = 1600


def expand_pattern(
    pattern: str, name_pool, n_range: tuple[int, int]
) -> list[str]:
    """All concrete subdomains for a service pattern.

    ``{name}`` expands over ``name_pool``; each ``{n}`` occurrence
    expands independently over ``n_range``.
    """
    expansions = [pattern]
    if "{name}" in pattern:
        expansions = [
            e.replace("{name}", name, 1)
            for e in expansions
            for name in name_pool
        ]
    while any("{n}" in e for e in expansions):
        expansions = [
            e.replace("{n}", str(n), 1) if "{n}" in e else e
            for e in expansions
            for n in range(n_range[0], n_range[1] + 1)
        ][:MAX_EXPANSIONS_PER_SERVICE]
    return expansions[:MAX_EXPANSIONS_PER_SERVICE]


@dataclass
class DeploymentPool:
    """One deployment's concrete servers in this geography."""

    deployment: Deployment
    operator: str        # registry name ("akamai", or the org short name)
    servers: list[int] = field(default_factory=list)


@dataclass
class ServiceEntry:
    """A service bound to its organization and concrete hosting."""

    organization: Organization
    service: Service
    pools: list[DeploymentPool] = field(default_factory=list)
    fqdns: list[str] = field(default_factory=list)

    @property
    def total_weight(self) -> float:
        return sum(p.deployment.weight for p in self.pools) or 1.0


class Internet:
    """The built model for one geography.

    Use :func:`build_internet`; the constructor wires empty state only.
    """

    def __init__(self, geography: str, seed: int = 1):
        self.geography = geography
        self.seed = seed
        self.rng = random.Random(seed ^ zlib.crc32(geography.encode()))
        self.ipdb = IpOrganizationDb()
        self.whois = WhoisRegistry()
        self.dns = RecursiveResolver()
        self.reverse = self.dns.reverse
        self.entries: list[ServiceEntry] = []
        self._fqdn_map: dict[str, ServiceEntry] = {}
        self._cdn_pools: dict[str, list[int]] = {}
        self._cdn_allocators: dict[str, IPv4Pool] = {}
        self._org_allocators: dict[str, IPv4Pool] = {}
        self._address_owner: dict[int, str] = {}
        # address -> PTR target (or None = explicitly no record); takes
        # precedence over the operator's default style.
        self._ptr_overrides: dict[int, Optional[str]] = {}
        self.cdns: dict[str, Cdn] = {}
        self.organizations: list[Organization] = []

    # -- address plan -----------------------------------------------------

    def _register_cdn(self, cdn: Cdn) -> None:
        self.cdns[cdn.name] = cdn
        cidrs = cdn.cidrs_by_geo.get(self.geography)
        if not cidrs:
            return
        networks = [IPv4Network.parse(c) for c in cidrs]
        self._cdn_allocators[cdn.name] = IPv4Pool(networks=list(networks))
        self._cdn_pools[cdn.name] = []
        self.ipdb.add_networks(networks, cdn.name)
        kind = OrgKind.CLOUD if cdn.name == "amazon" else OrgKind.CDN
        self.whois.register(OrgRecord(name=cdn.name, kind=kind))

    def _org_short(self, organization: Organization) -> str:
        return organization.domain.split(".")[0]

    def _register_org_space(self, organization: Organization) -> None:
        cidrs = organization.self_cidrs_by_geo.get(self.geography)
        if not cidrs:
            return
        short = self._org_short(organization)
        networks = [IPv4Network.parse(c) for c in cidrs]
        self._org_allocators[organization.domain] = IPv4Pool(
            networks=list(networks)
        )
        self.ipdb.add_networks(networks, short)
        if self.whois.lookup(short) is None:
            self.whois.register(
                OrgRecord(name=short, kind=OrgKind.CONTENT_OWNER)
            )

    def _cdn_servers(self, cdn_name: str, count: int) -> list[int]:
        """Draw ``count`` servers from the CDN's shared edge pool.

        The pool grows just beyond the largest request, so different
        customers share edges — the realistic fan-in.
        """
        pool = self._cdn_pools[cdn_name]
        allocator = self._cdn_allocators[cdn_name]
        # Grow with cumulative demand: each customer adds edges, but the
        # pool stays smaller than the sum of requests so edges are shared
        # (fan-in) without every customer landing on the same handful.
        want = max(count, int((len(pool) + count) * 0.75))
        while len(pool) < want and allocator.allocated < allocator.capacity:
            address = allocator.allocate()
            pool.append(address)
            self._address_owner[address] = cdn_name
        return self.rng.sample(pool, min(count, len(pool)))

    def _self_servers(self, organization: Organization, count: int) -> list[int]:
        allocator = self._org_allocators.get(organization.domain)
        if allocator is None:
            raise ValueError(
                f"{organization.domain} has a SELF deployment but no "
                f"address block in {self.geography}"
            )
        servers = []
        short = self._org_short(organization)
        for _ in range(count):
            address = allocator.allocate()
            servers.append(address)
            self._address_owner[address] = short
        return servers

    # -- build ------------------------------------------------------------

    def _build_service(
        self, organization: Organization, service: Service
    ) -> Optional[ServiceEntry]:
        pools = []
        for deployment in service.deployments:
            if not deployment.active_in(self.geography):
                continue
            count = max(1, deployment.servers)
            if deployment.cdn == "SELF":
                servers = self._self_servers(organization, count)
                operator = self._org_short(organization)
            else:
                if deployment.cdn not in self._cdn_allocators:
                    continue
                servers = self._cdn_servers(deployment.cdn, count)
                operator = deployment.cdn
            pools.append(
                DeploymentPool(
                    deployment=deployment, operator=operator, servers=servers
                )
            )
        if not pools:
            return None
        entry = ServiceEntry(
            organization=organization, service=service, pools=pools
        )
        for subdomain in expand_pattern(
            service.subdomain, service.name_pool, service.n_range
        ):
            fqdn = f"{subdomain}.{organization.domain}".lower()
            entry.fqdns.append(fqdn)
            self._fqdn_map[fqdn] = entry
        self.entries.append(entry)
        return entry

    def _assign_ptr_records(self) -> None:
        """Give every allocated address its reverse name (Tab. 3 driver)."""
        # First FQDN seen per address, for EXACT-style PTR targets.
        first_fqdn: dict[int, str] = {}
        for entry in self.entries:
            canonical = entry.fqdns[0]
            for pool in entry.pools:
                for address in pool.servers:
                    first_fqdn.setdefault(address, canonical)
        org_counters: dict[str, int] = {}
        for address, owner in self._address_owner.items():
            if address in self._ptr_overrides:
                target = self._ptr_overrides[address]
                if target is not None:
                    self.reverse.set_pointer(address, target)
                continue
            cdn = self.cdns.get(owner)
            if cdn is not None:
                if (
                    cdn.ptr_style is PtrStyle.CDN_INFRA
                    and self.rng.random() < cdn.ptr_coverage
                ):
                    dashed = ip_to_str(address).replace(".", "-")
                    self.reverse.set_pointer(
                        address, cdn.ptr_template.format(ip=dashed)
                    )
                continue
            # Self-hosted organization address: mixture of exact / infra /
            # none, which is what produces the Tab. 3 split.
            domain = next(
                (
                    org.domain
                    for org in self.organizations
                    if self._org_short(org) == owner
                ),
                None,
            )
            if domain is None:
                continue
            roll = self.rng.random()
            if roll < 0.30 and address in first_fqdn:
                self.reverse.set_pointer(address, first_fqdn[address])
            elif roll < 0.85:
                index = org_counters.get(owner, 0) + 1
                org_counters[owner] = index
                self.reverse.set_pointer(address, f"srv{index}.{domain}")
            # else: no PTR record.

    def _build_zones(self) -> None:
        """Authoritative zones whose answers come from :meth:`resolve`."""
        for organization in self.organizations:
            if not any(
                entry.organization is organization for entry in self.entries
            ):
                continue

            def hook(fqdn: str, now: float, _org=organization):
                entry = self._fqdn_map.get(fqdn)
                if entry is None or entry.organization is not _org:
                    return None
                answers, _ttl = self.resolve(fqdn, now)
                return answers

            zone = Zone(
                origin=organization.domain,
                answer_hook=hook,
                default_ttl=organization.dns_ttl,
            )
            self.dns.add_zone(zone)

    # -- runtime queries ----------------------------------------------------

    def knows(self, fqdn: str) -> bool:
        """True if the FQDN exists in this internet."""
        return fqdn.lower() in self._fqdn_map

    def entry_for(self, fqdn: str) -> Optional[ServiceEntry]:
        return self._fqdn_map.get(fqdn.lower())

    def resolve(self, fqdn: str, now: float) -> tuple[list[int], int]:
        """Answer an A query: (address list, TTL).

        Deployment choice is a weight-proportional hash of (FQDN, time
        bucket); the answer list is a rotating window over the active
        part of the pool, where "active" scales with time of day for
        diurnal deployments.
        """
        entry = self._fqdn_map.get(fqdn.lower())
        if entry is None:
            return [], 0
        ttl = entry.organization.dns_ttl
        bucket = int(now // max(ttl, 30))
        # Deterministic across processes (hash() is salted by Python).
        key = zlib.crc32(f"{fqdn}|{bucket}".encode())
        pool = self._pick_pool(entry, key)
        servers = pool.servers
        if not servers:
            return [], ttl
        if pool.deployment.diurnal_scaling:
            tz = 1.0 if self.geography == "EU" else -5.0
            scale = pool_scale(now % 86400.0, timezone_offset_hours=tz)
            active_count = max(2, int(len(servers) * scale))
        else:
            active_count = len(servers)
        active = servers[:active_count]
        size = min(entry.service.answer_list_size, len(active))
        if pool.deployment.diurnal_scaling or size > 1:
            # CDN-style load balancing: the window rotates across TTL
            # buckets, so one name is served by many addresses over time.
            start = (key >> 8) % len(active)
        else:
            # Small sites stick to their address (Fig. 3: most FQDNs map
            # to exactly one serverIP).
            start = (zlib.crc32(fqdn.lower().encode()) >> 8) % len(active)
        answers = [active[(start + i) % len(active)] for i in range(size)]
        return answers, ttl

    def _pick_pool(self, entry: ServiceEntry, key: int) -> DeploymentPool:
        total = entry.total_weight
        point = (key % 10_000) / 10_000.0 * total
        cumulative = 0.0
        for pool in entry.pools:
            cumulative += pool.deployment.weight
            if point <= cumulative:
                return pool
        return entry.pools[-1]

    # -- long-tail web ------------------------------------------------------

    TAIL_OPERATORS = (
        ("leaseweb", 0.35), ("amazon", 0.25), ("level 3", 0.15),
        ("microsoft", 0.10), ("cotendo", 0.05), ("google", 0.10),
    )
    TAIL_WORDS = (
        "pizzeria", "hotel", "meteo", "ricambi", "foto", "annunci",
        "calcio", "giardino", "casa", "viaggio", "shop", "radio",
        "scuola", "mercato", "cinema", "borsa", "lavoro", "salute",
    )
    TAIL_TLDS = ("com", "it", "net", "org", "de", "fr")

    def add_long_tail(self, count: int, popularity: float = 0.018) -> None:
        """Create ``count`` one-FQDN sites, each on a mostly-dedicated IP.

        Real traces are dominated by small sites: one name, one address,
        visited a handful of times.  This is what makes 82% of FQDNs map
        to a single serverIP and 73% of serverIPs serve a single FQDN in
        Fig. 3; without the tail, the catalog's CDN-backed head would
        dominate the distributions.
        """
        subdomains = ("www", "blog", "shop", "cdn", "m", "img")
        operators = [op for op, _ in self.TAIL_OPERATORS]
        weights = [w for _, w in self.TAIL_OPERATORS]
        for index in range(count):
            word = self.TAIL_WORDS[index % len(self.TAIL_WORDS)]
            tld = self.TAIL_TLDS[index % len(self.TAIL_TLDS)]
            domain = f"{word}{index}.{tld}"
            operator = self.rng.choices(operators, weights=weights, k=1)[0]
            allocator = self._cdn_allocators.get(operator)
            if allocator is None:
                continue
            shared = self._cdn_pools[operator]
            dedicated = False
            if self.rng.random() < 0.85 and (
                allocator.allocated < allocator.capacity
            ):
                address = allocator.allocate()
                self._address_owner[address] = operator
                dedicated = True
            elif shared:
                address = self.rng.choice(shared)
            else:
                continue
            organization = Organization(domain=domain, dns_ttl=3600)
            deployment = Deployment(cdn=operator, servers=1)
            service = Service(
                subdomain=self.rng.choice(subdomains),
                port=80,
                protocol=_HTTP,
                deployments=[deployment],
                popularity=popularity,
                bytes_down=8_000,
                answer_list_size=1,
            )
            organization.services.append(service)
            entry = ServiceEntry(
                organization=organization,
                service=service,
                pools=[
                    DeploymentPool(
                        deployment=deployment,
                        operator=operator,
                        servers=[address],
                    )
                ],
            )
            fqdn = f"{service.subdomain}.{domain}"
            entry.fqdns.append(fqdn)
            self._fqdn_map[fqdn] = entry
            self.entries.append(entry)
            if dedicated:
                # Small-site reverse DNS is customer-configured: a mix
                # of exact names, generic host names under the same
                # domain, the hoster's default, or nothing — the mix
                # behind Tab. 3's outcome split.
                roll = self.rng.random()
                if roll < 0.12:
                    self._ptr_overrides[address] = fqdn
                elif roll < 0.55:
                    self._ptr_overrides[address] = (
                        f"srv{index % 7 + 1}.{domain}"
                    )
                elif roll < 0.70:
                    self._ptr_overrides[address] = None  # no PTR

    def service_entries(self, asset_only: bool = False) -> list[ServiceEntry]:
        """Entries with nonzero popularity here, optionally assets only.

        Cached after first call — the entry set is immutable once built.
        """
        cached = getattr(self, "_entry_cache", {}).get(asset_only)
        if cached is not None:
            return cached
        out = []
        for entry in self.entries:
            if entry.service.popularity_in(self.geography) <= 0:
                continue
            is_asset = entry.organization.domain in ASSET_DOMAINS
            if asset_only and not is_asset:
                continue
            out.append(entry)
        if not hasattr(self, "_entry_cache"):
            self._entry_cache = {}
        self._entry_cache[asset_only] = out
        return out

    def popularity_weights(self, entries: list[ServiceEntry]) -> list[float]:
        """Sampling weights for the given entries in this geography."""
        return [
            entry.service.popularity_in(self.geography) for entry in entries
        ]


def build_internet(
    geography: str = "EU",
    seed: int = 1,
    tail_sites: int = DEFAULT_TAIL_SITES,
) -> Internet:
    """Build the full model internet for one geography.

    Args:
        tail_sites: number of long-tail one-FQDN sites added on top of
            the catalog (0 disables the tail — used by focused tests).
    """
    internet = Internet(geography=geography, seed=seed)
    cdns, organizations = build_catalog()
    internet.organizations = organizations
    for cdn in cdns:
        internet._register_cdn(cdn)
    for organization in organizations:
        internet._register_org_space(organization)
    for organization in organizations:
        for service in organization.services:
            internet._build_service(organization, service)
    if tail_sites:
        internet.add_long_tail(tail_sites)
    internet._assign_ptr_records()
    internet._build_zones()
    return internet
