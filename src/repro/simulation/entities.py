"""Entities of the synthetic internet: CDNs, organizations, services.

The data model captures exactly the decoupling the paper studies: a
:class:`Service` (a FQDN pattern owned by an :class:`Organization`) is
delivered by one or more :class:`Deployment` instances, each naming the
:class:`Cdn` (or the organization itself) that operates the servers in a
given geography.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.net.flow import Protocol


class PtrStyle(enum.Enum):
    """How an operator names its servers in reverse DNS (Tab. 3 driver)."""

    CDN_INFRA = "cdn-infra"      # aNN-NN.deploy.akamaitechnologies.com
    ORG_INFRA = "org-infra"      # srvN.linkedin.com (same 2LD)
    EXACT_FQDN = "exact"         # PTR equals the service FQDN
    NONE = "none"                # no PTR record


class CertPolicy(enum.Enum):
    """What server name the org's TLS certificates carry (Tab. 4 driver)."""

    EXACT = "exact"              # certificate CN equals the FQDN
    WILDCARD = "wildcard"        # *.example.com
    CDN_NAME = "cdn-name"        # a248.akamai.net style — the host's cert
    ORG_GENERIC = "org-generic"  # www.example.com for every service


@dataclass
class Cdn:
    """A CDN or cloud operator with per-geography address blocks.

    Args:
        name: registry name ("akamai", "amazon", ...).
        cidrs_by_geo: geography → list of CIDR strings the operator
            announces there (spatial diversity: different serverIPs per
            region, as in Fig. 9).
        ptr_style: how its addresses reverse-resolve.
        ptr_template: PTR name template with ``{ip}`` placeholder
            (dashed quad) used for CDN_INFRA style.
        ptr_coverage: fraction of addresses that have a PTR at all.
        default_ttl: TTL its zones hand out (CDNs use short TTLs).
    """

    name: str
    cidrs_by_geo: dict[str, list[str]]
    ptr_style: PtrStyle = PtrStyle.CDN_INFRA
    ptr_template: str = "host-{ip}.example.net"
    ptr_coverage: float = 0.7
    default_ttl: int = 60

    def geographies(self) -> list[str]:
        return list(self.cidrs_by_geo)


@dataclass
class Deployment:
    """One hosting arrangement for a service.

    Args:
        cdn: operator name; the literal string ``"SELF"`` means the
            organization hosts it on its own address space.
        servers: base pool size per geography (scaled by the internet's
            global scale factor).
        weight: share of the service's flows this deployment carries
            (Fig. 7: EdgeCast carried 59% of linkedin.com with 1 server).
        geographies: where this deployment exists; None = everywhere.
        diurnal_scaling: whether the *active* pool grows at peak hours
            (fbcdn/youtube behaviour in Fig. 4).
    """

    cdn: str
    servers: int
    weight: float = 1.0
    geographies: Optional[tuple[str, ...]] = None
    diurnal_scaling: bool = False

    def active_in(self, geography: str) -> bool:
        return self.geographies is None or geography in self.geographies


@dataclass
class Service:
    """A named service: FQDN pattern, port, protocol, hosting, size.

    Args:
        subdomain: pattern under the owner's domain.  ``{n}`` expands to
            a small integer (``media{n}`` → media1, media4...), ``{name}``
            to an element of ``name_pool``.  Empty string means the bare
            organization domain.
        port: destination port of the service's flows.
        protocol: layer-7 class (drives Tab. 2 accounting and TLS
            certificate behaviour).
        deployments: who hosts it, with flow-share weights.
        popularity: relative weight when clients choose what to access.
        popularity_by_geo: optional per-geography override (Tab. 5:
            playfish popular in EU, admarvel in US).
        name_pool: values for the ``{name}`` placeholder.
        n_range: values for the ``{n}`` placeholder.
        bytes_up / bytes_down: mean payload sizes (lognormal around them).
        embedded: 2LD-qualified FQDN patterns fetched alongside this
            service (page assets on CDNs — the tangle seen from a page).
    """

    subdomain: str
    port: int
    protocol: Protocol
    deployments: list[Deployment]
    popularity: float = 1.0
    popularity_by_geo: dict[str, float] = field(default_factory=dict)
    name_pool: Sequence[str] = ()
    n_range: tuple[int, int] = (1, 8)
    bytes_up: int = 400
    bytes_down: int = 12_000
    embedded: Sequence[str] = ()
    # Most names resolve to a single address (Fig. 3: 82% of FQDNs map
    # to one serverIP); CDN-backed services override this upward.
    answer_list_size: int = 1

    def popularity_in(self, geography: str) -> float:
        return self.popularity_by_geo.get(geography, self.popularity)


@dataclass
class Organization:
    """A content owner: a second-level domain plus its services.

    Args:
        domain: the 2LD, e.g. ``zynga.com``.
        services: everything published under it.
        cert_policy: TLS certificate behaviour (Tab. 4).
        cert_cdn_name: the certificate name used under ``CDN_NAME``
            policy (e.g. ``a248.akamai.net``).
        self_cidrs_by_geo: address blocks for SELF deployments.
        self_ptr_style: reverse-DNS style of its own servers.
        dns_ttl: TTL for its authoritative answers.
    """

    domain: str
    services: list[Service] = field(default_factory=list)
    cert_policy: CertPolicy = CertPolicy.EXACT
    cert_cdn_name: str = ""
    self_cidrs_by_geo: dict[str, list[str]] = field(default_factory=dict)
    self_ptr_style: PtrStyle = PtrStyle.ORG_INFRA
    dns_ttl: int = 300

    def total_popularity(self, geography: str) -> float:
        return sum(s.popularity_in(geography) for s in self.services)
