"""Process-local metrics registry with Prometheus text exposition.

The service exports its operational state at ``/metrics`` in the
`Prometheus text format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ —
counters, gauges and histograms, optionally labeled — without taking a
client-library dependency (the container rule: stdlib only).  Only the
subset the service needs is implemented:

* every metric family has a fixed label-name tuple declared up front;
* samples are keyed by label-value tuple and guarded by one lock per
  family (update cost: one dict operation under a lock);
* counters and gauges may instead be *callback-backed* (``fn=``) —
  the value is read at scrape time, which is how store-side state
  (segment counts, WAL epoch, pruning totals) is exported without
  threading hooks through the storage layer;
* histograms use cumulative ``_bucket{le=...}`` samples plus ``_sum``
  and ``_count``, with latency-flavored default buckets.

The registry renders the whole family set deterministically (insertion
order, sorted label sets) so the observability docs can pin exact
output shapes.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Seconds. Spans sub-millisecond in-process lookups to multi-second
#: whole-store scans (the BENCH_* trajectory's observed range).
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _label_string(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


class _Metric:
    """Shared family plumbing: label resolution + locked sample dict."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 labelnames: Sequence[str] = ()):
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._samples: dict[tuple, float] = {}

    def _key(self, labels: dict) -> tuple:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: got labels {sorted(labels)}, "
                f"declared {sorted(self.labelnames)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def samples(self) -> list[tuple[str, str, float]]:
        """``(suffix, label_string, value)`` rows for rendering."""
        with self._lock:
            items = sorted(self._samples.items())
        return [
            ("", _label_string(self.labelnames, key), value)
            for key, value in items
        ]

    def render(self) -> str:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]
        rows = self.samples()
        if not rows and not self.labelnames:
            rows = [("", "", 0.0)]
        for suffix, labels, value in rows:
            lines.append(
                f"{self.name}{suffix}{labels} {_format_value(value)}"
            )
        return "\n".join(lines) + "\n"


class Counter(_Metric):
    """Monotonically increasing total; ``fn`` makes it scrape-backed."""

    kind = "counter"

    def __init__(self, name: str, help_text: str,
                 labelnames: Sequence[str] = (),
                 fn: Optional[Callable[[], float]] = None):
        super().__init__(name, help_text, labelnames)
        if fn is not None and self.labelnames:
            raise ValueError("callback-backed metrics cannot be labeled")
        self._fn = fn

    def inc(self, amount: float = 1, **labels) -> None:
        if self._fn is not None:
            raise ValueError(f"{self.name} is callback-backed")
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        if self._fn is not None:
            return float(self._fn())
        with self._lock:
            return self._samples.get(self._key(labels), 0.0)

    def samples(self):
        if self._fn is not None:
            return [("", "", float(self._fn()))]
        return super().samples()


class Gauge(_Metric):
    """A value that goes both ways; ``fn`` makes it scrape-backed."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str,
                 labelnames: Sequence[str] = (),
                 fn: Optional[Callable[[], float]] = None):
        super().__init__(name, help_text, labelnames)
        if fn is not None and self.labelnames:
            raise ValueError("callback-backed metrics cannot be labeled")
        self._fn = fn

    def set(self, value: float, **labels) -> None:
        if self._fn is not None:
            raise ValueError(f"{self.name} is callback-backed")
        key = self._key(labels)
        with self._lock:
            self._samples[key] = float(value)

    def inc(self, amount: float = 1, **labels) -> None:
        if self._fn is not None:
            raise ValueError(f"{self.name} is callback-backed")
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        if self._fn is not None:
            return float(self._fn())
        with self._lock:
            return self._samples.get(self._key(labels), 0.0)

    def samples(self):
        if self._fn is not None:
            return [("", "", float(self._fn()))]
        return super().samples()


class Histogram(_Metric):
    """Cumulative-bucket histogram (``_bucket``/``_sum``/``_count``)."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 labelnames: Sequence[str] = (),
                 buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS):
        super().__init__(name, help_text, labelnames)
        bounds = sorted(float(bound) for bound in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket")
        self.buckets = tuple(bounds)
        # per label-key: [bucket counts..., +Inf count, sum]
        self._samples: dict[tuple, list[float]] = {}

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            row = self._samples.get(key)
            if row is None:
                row = [0.0] * (len(self.buckets) + 1) + [0.0]
                self._samples[key] = row
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    row[index] += 1
                    break
            else:
                row[len(self.buckets)] += 1
            row[-1] += value

    def count(self, **labels) -> int:
        with self._lock:
            row = self._samples.get(self._key(labels))
            return int(sum(row[:-1])) if row else 0

    def samples(self):
        with self._lock:
            items = sorted(
                (key, list(row)) for key, row in self._samples.items()
            )
        out: list[tuple[str, str, float]] = []
        names = self.labelnames
        for key, row in items:
            cumulative = 0.0
            for index, bound in enumerate(self.buckets):
                cumulative += row[index]
                out.append((
                    "_bucket",
                    _label_string(
                        names + ("le",), key + (_format_value(bound),)
                    ),
                    cumulative,
                ))
            cumulative += row[len(self.buckets)]
            out.append((
                "_bucket",
                _label_string(names + ("le",), key + ("+Inf",)),
                cumulative,
            ))
            out.append(("_sum", _label_string(names, key), row[-1]))
            out.append(("_count", _label_string(names, key), cumulative))
        return out

    def render(self) -> str:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for suffix, labels, value in self.samples():
            lines.append(
                f"{self.name}{suffix}{labels} {_format_value(value)}"
            )
        return "\n".join(lines) + "\n"


class MetricsRegistry:
    """Ordered family set with one-call text exposition."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _register(self, metric: _Metric) -> _Metric:
        with self._lock:
            if metric.name in self._metrics:
                raise ValueError(f"duplicate metric {metric.name}")
            self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help_text: str,
                labelnames: Sequence[str] = (),
                fn: Optional[Callable[[], float]] = None) -> Counter:
        return self._register(Counter(name, help_text, labelnames, fn))

    def gauge(self, name: str, help_text: str,
              labelnames: Sequence[str] = (),
              fn: Optional[Callable[[], float]] = None) -> Gauge:
        return self._register(Gauge(name, help_text, labelnames, fn))

    def histogram(self, name: str, help_text: str,
                  labelnames: Sequence[str] = (),
                  buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
                  ) -> Histogram:
        return self._register(
            Histogram(name, help_text, labelnames, buckets)
        )

    def get(self, name: str) -> _Metric:
        with self._lock:
            return self._metrics[name]

    def render(self) -> str:
        """The full ``/metrics`` payload (text format 0.0.4)."""
        with self._lock:
            metrics = list(self._metrics.values())
        return "".join(metric.render() for metric in metrics)
