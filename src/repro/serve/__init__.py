"""``repro-serve`` — the always-on query service over a live FlowStore.

One process that ingests continuously (WAL on, tagged batches through
the sniffer pipeline) while answering the full analytics query surface
over HTTP/JSON, the Sec. 7 "live monitoring" shape.  Pure stdlib:
:mod:`http.server` threading for the listener, the FlowStore's own
snapshot isolation for consistent answers under live ingest, a
single-flight layer coalescing identical in-flight queries, and a
Prometheus-text ``/metrics`` registry.

* :mod:`repro.serve.metrics` — counters / gauges / histograms;
* :mod:`repro.serve.singleflight` — duplicate-query coalescing;
* :mod:`repro.serve.server` — the HTTP app (routes, handlers, JSON);
* :mod:`repro.serve.cli` — the ``repro-serve`` entry point.
"""

from repro.serve.metrics import MetricsRegistry
from repro.serve.singleflight import SingleFlight

__all__ = ["MetricsRegistry", "SingleFlight"]
