"""Bounded admission control for the serve daemon.

``ThreadingHTTPServer`` starts a thread per connection, so without a
gate an overload does not queue — it *accumulates*: every excess
request pins a thread, a socket, and (for queries) a snapshot until
the box runs out of something.  :class:`AdmissionController` bounds
that: each **route class** (``query`` covers every GET surface,
``ingest`` the single-writer POST path) gets a configurable number of
in-flight slots plus a bounded wait queue.  A request past both limits
is *shed immediately* with 503 + ``Retry-After`` — shedding is cheap
and honest, piling up is neither.  ``/health`` and ``/metrics`` never
pass through the gate (the serve layer exempts them), so the daemon
stays observable precisely when the gate is busiest.

The gate is a plain condition variable, not a semaphore: it must
distinguish "waiting in the bounded queue" from "running" (both are
exposed as gauges), and a queued waiter must give up at its own
deadline rather than whenever the semaphore happens to signal.
"""

from __future__ import annotations

import threading
import time

__all__ = ["AdmissionController", "RouteClassLimits", "default_limits"]


class RouteClassLimits:
    """Admission limits for one route class.

    ``max_inflight`` requests execute concurrently; up to ``max_queue``
    more wait (each at most ``max_wait_s`` seconds, further bounded by
    the request's own deadline); everything past that is shed.
    """

    __slots__ = ("max_inflight", "max_queue", "max_wait_s")

    def __init__(self, max_inflight: int, max_queue: int,
                 max_wait_s: float = 0.5):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.max_inflight = int(max_inflight)
        self.max_queue = int(max_queue)
        self.max_wait_s = float(max_wait_s)


def default_limits() -> dict[str, RouteClassLimits]:
    """Fresh default limits (a factory — the values are mutable)."""
    return {
        "query": RouteClassLimits(8, 16, 0.5),
        "ingest": RouteClassLimits(2, 8, 0.5),
    }


class _Gate:
    """One route class's slots + bounded wait queue."""

    def __init__(self, limits: RouteClassLimits, clock):
        self.limits = limits
        self._clock = clock
        self._cond = threading.Condition()
        self.inflight = 0
        self.queued = 0

    def try_acquire(self, wait_s: float) -> bool:
        """Take a slot, waiting up to ``wait_s`` in the bounded queue;
        False means shed."""
        with self._cond:
            if self.inflight < self.limits.max_inflight:
                self.inflight += 1
                return True
            if self.queued >= self.limits.max_queue or wait_s <= 0:
                return False
            expires = self._clock() + wait_s
            self.queued += 1
            try:
                while self.inflight >= self.limits.max_inflight:
                    remaining = expires - self._clock()
                    if remaining <= 0:
                        return False
                    self._cond.wait(remaining)
                self.inflight += 1
                return True
            finally:
                self.queued -= 1

    def release(self) -> None:
        with self._cond:
            self.inflight -= 1
            self._cond.notify()


class AdmissionController:
    """Per-route-class gates behind one facade (thread-safe)."""

    def __init__(self, limits: dict[str, RouteClassLimits] | None = None,
                 clock=time.monotonic):
        self.limits = dict(limits) if limits is not None else (
            default_limits()
        )
        self._gates = {
            name: _Gate(class_limits, clock)
            for name, class_limits in self.limits.items()
        }

    def try_acquire(self, route_class: str,
                    budget_s: float | None = None) -> bool:
        """Admit one request of ``route_class`` (False = shed).

        The queue wait is the class's ``max_wait_s``, further clamped
        by ``budget_s`` (the request's remaining deadline) — a request
        never spends budget queueing that it no longer has.
        """
        gate = self._gates[route_class]
        wait = gate.limits.max_wait_s
        if budget_s is not None:
            wait = min(wait, max(0.0, budget_s))
        return gate.try_acquire(wait)

    def release(self, route_class: str) -> None:
        self._gates[route_class].release()

    def inflight(self, route_class: str) -> int:
        return self._gates[route_class].inflight

    def queued(self, route_class: str) -> int:
        return self._gates[route_class].queued

    def snapshot(self) -> dict:
        """Per-class occupancy for ``/health``."""
        return {
            name: {
                "inflight": gate.inflight,
                "queued": gate.queued,
                "max_inflight": gate.limits.max_inflight,
                "max_queue": gate.limits.max_queue,
                "max_wait_s": gate.limits.max_wait_s,
            }
            for name, gate in sorted(self._gates.items())
        }
