"""Read-only degradation: the ingest circuit breaker.

An always-on vantage-point monitor hits disk-capacity walls (ENOSPC,
EDQUOT) and flaky volumes as a matter of course.  The store's own
``_retry_io`` already absorbs *transient* blips with a bounded
retry/backoff; what it cannot decide is policy — what the *service*
should do once a WAL append has exhausted its retries.  Answering 500
and letting clients hammer the dying volume is the worst option: every
attempt burns the full retry/backoff budget while holding the writer
lock, and the failed appends churn the disk exactly when it needs
slack.

:class:`DegradationGovernor` is that policy — a circuit breaker over
the ingest path:

* **ready** — every ingest is admitted.  An ENOSPC/EDQUOT escaping the
  store's retries trips the breaker immediately (a full volume does
  not fix itself between requests); any other ``OSError`` from the
  WAL/ingest path trips it after ``failure_threshold`` *consecutive*
  failures.
* **read_only** — ``/ingest`` answers 503 with a machine-readable
  reason and ``Retry-After``; queries are untouched.  After the
  current backoff elapses, exactly one ingest is admitted as a
  **probe** (half-open): success flips back to ready and resets the
  backoff, failure doubles it (bounded by ``backoff_max_s``) and stays
  read-only.  Recovery is therefore automatic once the operator (or a
  log rotation) clears the condition — no restart required.

Every transition and probe outcome is surfaced through the optional
``on_transition(to_state, reason)`` / ``on_probe(outcome)`` hooks —
the serve layer wires them to the ``serve_degraded_transitions_total``
and ``serve_degraded_probes_total`` counters — and :meth:`snapshot`
feeds the ``/health`` payload's ``service`` block.
"""

from __future__ import annotations

import errno as errno_mod
import threading
import time

from repro.analytics.storage import CAPACITY_ERRNOS

__all__ = ["DegradationGovernor", "READY", "READ_ONLY"]

READY = "ready"
READ_ONLY = "read_only"


class DegradationGovernor:
    """Ready/read-only state machine for the ingest path (thread-safe).

    The caller brackets every admitted store write with
    :meth:`record_success` / :meth:`record_failure`; :meth:`admit`
    decides whether the write may reach the store at all.
    """

    def __init__(self, failure_threshold: int = 3,
                 backoff_s: float = 1.0, backoff_max_s: float = 60.0,
                 clock=time.monotonic):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self._lock = threading.Lock()
        self._clock = clock
        self.failure_threshold = int(failure_threshold)
        self.initial_backoff_s = float(backoff_s)
        self.backoff_max_s = float(backoff_max_s)
        self.state = READY
        self.reason: str | None = None
        self.detail: str | None = None
        self._consecutive_failures = 0
        self._backoff_s = self.initial_backoff_s
        self._opened_at: float | None = None
        self._probe_at: float | None = None
        self._probing = False
        self.transitions = {READY: 0, READ_ONLY: 0}
        self.probes = {"ok": 0, "failed": 0}
        #: Optional observers (the serve layer points these at metric
        #: counters).  Called outside any store lock but inside the
        #: governor's own, so keep them non-reentrant and cheap.
        self.on_transition = None
        self.on_probe = None

    # -- admission ---------------------------------------------------------

    def admit(self) -> tuple[bool, dict | None]:
        """May one ingest reach the store right now?

        Returns ``(True, None)`` when admitted (in read-only state that
        admission *is* the half-open probe), else ``(False, info)``
        with the machine-readable 503 payload fields.
        """
        with self._lock:
            if self.state == READY:
                return True, None
            now = self._clock()
            if not self._probing and now >= self._probe_at:
                self._probing = True
                return True, None
            retry_after = max(0.0, self._probe_at - now)
            if self._probing and retry_after <= 0:
                # A probe is already in flight; try again shortly.
                retry_after = min(1.0, self._backoff_s)
            return False, {
                "state": self.state,
                "reason": self.reason,
                "detail": self.detail,
                "retry_after_s": round(retry_after, 3),
            }

    # -- outcome reporting -------------------------------------------------

    def record_success(self) -> None:
        """An admitted store write completed."""
        with self._lock:
            self._consecutive_failures = 0
            if self.state == READY:
                return
            if self._probing:
                self._probing = False
                self.probes["ok"] += 1
                if self.on_probe is not None:
                    self.on_probe("ok")
            self._transition(READY, reason=None, detail=None)

    def record_failure(self, exc: OSError) -> None:
        """An admitted store write raised ``exc`` (retries exhausted)."""
        name = errno_mod.errorcode.get(exc.errno, str(exc.errno))
        capacity = exc.errno in CAPACITY_ERRNOS
        with self._lock:
            now = self._clock()
            if self.state == READ_ONLY:
                if self._probing:
                    self._probing = False
                    self.probes["failed"] += 1
                    if self.on_probe is not None:
                        self.on_probe("failed")
                # Failed probe (or straggler): back off harder.
                self._backoff_s = min(
                    self._backoff_s * 2.0, self.backoff_max_s
                )
                self._probe_at = now + self._backoff_s
                self.reason = name
                self.detail = str(exc)
                return
            self._consecutive_failures += 1
            if capacity or (
                self._consecutive_failures >= self.failure_threshold
            ):
                self._backoff_s = self.initial_backoff_s
                self._probe_at = now + self._backoff_s
                self._opened_at = now
                self._transition(READ_ONLY, name, str(exc))

    def _transition(self, to_state: str, reason, detail) -> None:
        # Caller holds the lock.
        self.state = to_state
        self.reason = reason
        self.detail = detail
        self.transitions[to_state] += 1
        if to_state == READY:
            self._consecutive_failures = 0
            self._backoff_s = self.initial_backoff_s
            self._opened_at = None
            self._probe_at = None
            self._probing = False
        if self.on_transition is not None:
            self.on_transition(to_state, reason)

    # -- inspection --------------------------------------------------------

    def snapshot(self) -> dict:
        """The ``/health`` payload's ``service`` block."""
        with self._lock:
            now = self._clock()
            return {
                "state": self.state,
                "reason": self.reason,
                "detail": self.detail,
                "consecutive_failures": self._consecutive_failures,
                "read_only_for_s": (
                    round(now - self._opened_at, 3)
                    if self._opened_at is not None else None
                ),
                "next_probe_in_s": (
                    round(max(0.0, self._probe_at - now), 3)
                    if self._probe_at is not None else None
                ),
                "transitions": dict(self.transitions),
                "probes": dict(self.probes),
            }
