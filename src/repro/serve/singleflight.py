"""Single-flight coalescing of identical in-flight calls.

When many HTTP clients ask the same expensive question at once (the
dashboard-refresh stampede), only one of them should pay for the
whole-store scan.  :class:`SingleFlight` keys in-flight work by an
arbitrary hashable — the serve layer uses the canonicalized request
``(path, sorted query params)`` — and makes every duplicate arrival
*wait for the leader's result* instead of recomputing it.

Semantics:

* the first caller for a key becomes the **leader** and runs ``fn()``;
* callers arriving while the leader is in flight become **followers**:
  they block on the leader's completion and receive the same result
  object (or the same raised exception);
* the key is forgotten the moment the leader finishes, *before* the
  followers wake — a caller arriving after that starts a fresh flight,
  so results are never served stale, only shared while identical work
  was genuinely concurrent.

``do`` reports whether the caller coalesced, which feeds the
``serve_coalesced_total`` metric and lets the e2e test prove the
barrier behavior (N concurrent identical queries, 1 execution).
"""

from __future__ import annotations

import threading
from typing import Callable, Hashable, TypeVar

__all__ = ["SingleFlight"]

T = TypeVar("T")

_UNSET = object()


class _Flight:
    __slots__ = ("done", "value", "error")

    def __init__(self):
        self.done = threading.Event()
        self.value = _UNSET
        self.error: BaseException | None = None


class SingleFlight:
    """Per-key leader/follower coalescing (thread-safe)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._flights: dict[Hashable, _Flight] = {}

    def in_flight(self) -> int:
        """Number of distinct keys currently executing."""
        with self._lock:
            return len(self._flights)

    def do(self, key: Hashable,
           fn: Callable[[], T]) -> tuple[T, bool]:
        """Run ``fn`` (or wait for the identical in-flight run).

        Returns ``(result, coalesced)``: ``coalesced`` is True when
        this caller received a leader's result instead of executing.
        An exception raised by the leader propagates to every waiter.
        """
        with self._lock:
            flight = self._flights.get(key)
            leader = flight is None
            if leader:
                flight = _Flight()
                self._flights[key] = flight
        if not leader:
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            return flight.value, True
        try:
            flight.value = fn()
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            # Retire the key before waking followers: a caller that
            # arrives now computes fresh rather than reading a result
            # that predates its arrival.
            with self._lock:
                self._flights.pop(key, None)
            flight.done.set()
        return flight.value, False
