"""Single-flight coalescing of identical in-flight calls.

When many HTTP clients ask the same expensive question at once (the
dashboard-refresh stampede), only one of them should pay for the
whole-store scan.  :class:`SingleFlight` keys in-flight work by an
arbitrary hashable — the serve layer uses the canonicalized request
``(path, sorted query params)`` — and makes every duplicate arrival
*wait for the leader's result* instead of recomputing it.

Semantics:

* the first caller for a key becomes the **leader** and runs ``fn()``;
* callers arriving while the leader is in flight become **followers**:
  they block on the leader's completion and receive the same result
  object (or the same raised exception);
* the key is forgotten the moment the leader finishes, *before* the
  followers wake — a caller arriving after that starts a fresh flight,
  so results are never served stale, only shared while identical work
  was genuinely concurrent.

Overload hardening (PR 8):

* ``timeout`` bounds a follower's wait.  Without it a follower whose
  leader thread dies without reaching its cleanup (daemon-thread
  teardown, a signal between becoming leader and entering ``try``)
  would block forever; with it the wait ends in
  :class:`SingleFlightTimeout`, which the serve layer maps to 504.
* ``retry_on_leader_error`` makes a follower **re-dispatch** instead
  of inheriting the leader's exception: a leader that crashed (or ran
  out of *its* deadline budget) no longer fails every coalesced caller
  — each follower starts or joins a fresh flight with its own budget,
  until its own timeout runs out.

``do`` reports whether the caller coalesced, which feeds the
``serve_coalesced_total`` metric and lets the e2e test prove the
barrier behavior (N concurrent identical queries, 1 execution).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Hashable, TypeVar

__all__ = ["SingleFlight", "SingleFlightTimeout"]

T = TypeVar("T")

_UNSET = object()


class SingleFlightTimeout(TimeoutError):
    """A follower's bounded wait for its leader expired."""


class _Flight:
    __slots__ = ("done", "value", "error")

    def __init__(self):
        self.done = threading.Event()
        self.value = _UNSET
        self.error: BaseException | None = None


class SingleFlight:
    """Per-key leader/follower coalescing (thread-safe)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._flights: dict[Hashable, _Flight] = {}

    def in_flight(self) -> int:
        """Number of distinct keys currently executing."""
        with self._lock:
            return len(self._flights)

    def do(self, key: Hashable, fn: Callable[[], T],
           timeout: float | None = None,
           retry_on_leader_error: bool = False) -> tuple[T, bool]:
        """Run ``fn`` (or wait for the identical in-flight run).

        Returns ``(result, coalesced)``: ``coalesced`` is True when
        this caller received a leader's result instead of executing.
        An exception raised by the leader propagates to every waiter —
        unless ``retry_on_leader_error``, in which case a follower that
        observes a failed leader re-dispatches (fresh flight) rather
        than inheriting the failure.  ``timeout`` bounds the *total*
        time spent waiting on leaders (across re-dispatches); when it
        runs out the caller gets :class:`SingleFlightTimeout`, never a
        hang.
        """
        expires = (
            None if timeout is None else time.monotonic() + timeout
        )
        while True:
            with self._lock:
                flight = self._flights.get(key)
                leader = flight is None
                if leader:
                    flight = _Flight()
                    self._flights[key] = flight
            if leader:
                try:
                    flight.value = fn()
                except BaseException as exc:
                    flight.error = exc
                    raise
                finally:
                    # Retire the key before waking followers: a caller
                    # that arrives now computes fresh rather than
                    # reading a result that predates its arrival.
                    with self._lock:
                        self._flights.pop(key, None)
                    flight.done.set()
                return flight.value, False
            wait = (
                None if expires is None
                else expires - time.monotonic()
            )
            if wait is not None and wait <= 0:
                raise SingleFlightTimeout(
                    f"timed out waiting on in-flight {key!r}"
                )
            if not flight.done.wait(wait):
                raise SingleFlightTimeout(
                    f"timed out waiting on in-flight {key!r}"
                )
            if flight.error is None:
                return flight.value, True
            if not retry_on_leader_error:
                raise flight.error
            # Leader failed: loop and re-dispatch with our own budget.
