"""Cooperative per-request deadlines for the serve layer.

A :class:`Deadline` is the cancellation token the daemon threads
through a query's whole execution path: admission queueing, the
single-flight wait, and — via ``StoreSnapshot.cancel_token`` — the
store's :meth:`_run_sources` per-segment kernel loop, including the
kernels dispatched onto the ``parallel=N`` thread pool.

The token is *cooperative*: nothing is interrupted mid-kernel.  The
store calls :meth:`check` at every kernel boundary (cheap — one
monotonic clock read), so an expired query stops before the next
segment is materialized instead of running an unbounded scan.  The
token also keeps partial-work counters (kernels scheduled vs
completed), which the 504 response surfaces so a caller can tell "shed
at the first segment" from "died one segment short".
"""

from __future__ import annotations

import threading
import time

__all__ = ["Deadline", "DeadlineExceeded", "DEADLINE_HEADER"]

#: Request header carrying the caller's budget in (fractional) seconds.
DEADLINE_HEADER = "X-Request-Deadline"


class DeadlineExceeded(RuntimeError):
    """The cooperative cancellation signal — maps to HTTP 504."""


class Deadline:
    """Expiry instant plus partial-work accounting (thread-safe).

    Implements the cancellation-token protocol the store duck-types:
    ``check()`` raises :class:`DeadlineExceeded` once expired,
    ``note_scheduled(n)`` / ``note_done()`` keep the kernel counters
    that make a 504 diagnosable.
    """

    __slots__ = (
        "seconds", "expires_at", "_clock", "_lock",
        "kernels_scheduled", "kernels_done",
    )

    def __init__(self, seconds: float, clock=time.monotonic):
        self.seconds = float(seconds)
        self._clock = clock
        self.expires_at = clock() + self.seconds
        self._lock = threading.Lock()
        self.kernels_scheduled = 0
        self.kernels_done = 0

    def remaining(self) -> float:
        """Seconds of budget left (negative once expired)."""
        return self.expires_at - self._clock()

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self) -> None:
        """Raise :class:`DeadlineExceeded` once the budget is spent.

        Called from pool worker threads as well as the request thread;
        a clock read and a compare, so it is cheap enough for every
        kernel boundary.
        """
        if self.expired():
            raise DeadlineExceeded(
                f"deadline of {self.seconds:g}s exceeded"
            )

    def note_scheduled(self, count: int) -> None:
        with self._lock:
            self.kernels_scheduled += count

    def note_done(self) -> None:
        with self._lock:
            self.kernels_done += 1

    def progress(self) -> dict:
        """The partial-work counters for the 504 payload."""
        with self._lock:
            return {
                "kernels_scheduled": self.kernels_scheduled,
                "kernels_done": self.kernels_done,
            }
